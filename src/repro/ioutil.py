"""Atomic file writes: the tmp + ``os.replace`` idiom, in one place.

Result stores, bench baselines, and CLI JSON outputs are read back by
resumable campaigns, CI gates, and other processes; a torn write (the
process dying mid-``write``) must never leave a half-record behind that
a resume would then trust.  The contract is: write the full payload to a
same-directory temporary file, then ``os.replace`` it over the target —
atomic on POSIX and Windows alike.

This module is the single implementation; lint rule **RL005**
(:mod:`repro.analysis`) flags direct ``open(path, "w")`` /
``Path.write_text`` result writes that bypass it.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Any, Optional, Union


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Atomically replace ``path`` with ``text`` (tmp + ``os.replace``).

    The temporary file lives in the target's directory (``os.replace``
    must not cross filesystems) and carries the writer's PID, so
    concurrent writers — campaign workers sharing a store directory —
    never collide on the tmp name; last replace wins, and readers only
    ever observe complete documents.
    """
    path = Path(path)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    # newline="" writes ``text`` verbatim: CSV payloads already carry
    # their own \r\n terminators and must not be re-translated.
    tmp.write_text(text, newline="")
    os.replace(tmp, path)


def atomic_write_json(path: Union[str, Path], payload: Any, **dumps_kwargs: Any) -> None:
    """Atomically write ``payload`` as JSON (``json.dumps`` kwargs pass through)."""
    atomic_write_text(path, json.dumps(payload, **dumps_kwargs))


class JsonlAppender:
    """Locked JSONL appends through one persistent handle.

    The single-writer complement to the atomic-replace idiom above:
    logs and traces are append-only streams, so the torn-write hazard is
    an *interleaved or lost line*, not a half-replaced document.  The
    contract here:

    * one handle, opened lazily on first append and held until
      :meth:`close` — not re-opened per line;
    * every line is written and flushed under one lock, so two threads
      can never interleave bytes within a line;
    * each record gains a monotonic ``seq`` field assigned under the
      same lock, so a reader can assert "no lost, no duplicated, no
      reordered-by-writer lines" as ``sorted(seqs) == range(n)``.

    Appends after :meth:`close` reopen the handle (and continue the
    ``seq`` sequence) — a convenience for tests; production users close
    once on shutdown.
    """

    def __init__(self, path: Union[str, Path], *, add_seq: bool = True) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._handle: Optional[Any] = None
        self._seq = 0
        self._add_seq = add_seq

    def append(self, record: dict) -> int:
        """Write one record as a JSON line; returns its ``seq``."""
        with self._lock:
            if self._handle is None:
                self._handle = self.path.open("a", encoding="utf-8")
            seq = self._seq
            self._seq += 1
            if self._add_seq:
                record = {**record, "seq": seq}
            self._handle.write(json.dumps(record, sort_keys=True) + "\n")
            self._handle.flush()
            return seq

    def close(self) -> None:
        """Flush and close the handle (idempotent)."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "JsonlAppender":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
