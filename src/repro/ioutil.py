"""Atomic file writes: the tmp + ``os.replace`` idiom, in one place.

Result stores, bench baselines, and CLI JSON outputs are read back by
resumable campaigns, CI gates, and other processes; a torn write (the
process dying mid-``write``) must never leave a half-record behind that
a resume would then trust.  The contract is: write the full payload to a
same-directory temporary file, then ``os.replace`` it over the target —
atomic on POSIX and Windows alike.

This module is the single implementation; lint rule **RL005**
(:mod:`repro.analysis`) flags direct ``open(path, "w")`` /
``Path.write_text`` result writes that bypass it.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Union


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Atomically replace ``path`` with ``text`` (tmp + ``os.replace``).

    The temporary file lives in the target's directory (``os.replace``
    must not cross filesystems) and carries the writer's PID, so
    concurrent writers — campaign workers sharing a store directory —
    never collide on the tmp name; last replace wins, and readers only
    ever observe complete documents.
    """
    path = Path(path)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    # newline="" writes ``text`` verbatim: CSV payloads already carry
    # their own \r\n terminators and must not be re-translated.
    tmp.write_text(text, newline="")
    os.replace(tmp, path)


def atomic_write_json(path: Union[str, Path], payload: Any, **dumps_kwargs: Any) -> None:
    """Atomically write ``payload`` as JSON (``json.dumps`` kwargs pass through)."""
    atomic_write_text(path, json.dumps(payload, **dumps_kwargs))
