"""The optimization session: one network + traffic + objective context.

A :class:`Session` bundles everything one optimization/evaluation
context needs — the network, the two traffic matrices, the (cached,
delta-aware) :class:`~repro.core.evaluator.DualTopologyEvaluator`, a
pluggable cost model, and deterministic named RNG streams — and exposes:

* :meth:`Session.optimize`: run any registered strategy by name;
* the incremental what-if queries :meth:`Session.what_if`,
  :meth:`Session.under_scenario` (with :meth:`Session.under_failure` as
  a single-adjacency shim), and :meth:`Session.scaled_traffic`, which
  answer "what changes if ...?" against the session's baseline weight
  setting without rebuilding routing state that cannot change;
* :meth:`Session.sweep`: batched evaluation of a whole
  :class:`~repro.scenarios.ScenarioSet` (link/node/SRLG failures,
  traffic shifts — see :mod:`repro.scenarios`), sharing topology
  projections and incremental-SPF derivations across scenarios.

``what_if`` routes one/two-link weight moves through
:mod:`repro.routing.incremental`, so an interactive query costs a
restricted Dijkstra over the few affected destinations instead of a full
re-evaluation — the same speedup the searches enjoy — while remaining
bit-identical to a from-scratch evaluation.

Thread safety
-------------
A session is **not** thread-safe.  Its evaluator's LRU caches mutate an
``OrderedDict`` on every lookup (recency reordering and hit/miss
counters), the sweep engine appends to projection/routing memos and a
shared ``stats`` dict, and the lazily built baseline/engine slots are
plain attributes — none of it is synchronized.  Callers that share one
session across threads (the :mod:`repro.serve` scheduler, notably) must
hold :attr:`Session.lock` around every evaluator/engine touch; with the
lock held, queries are serialized and therefore produce exactly the
bytes a single-threaded caller would see.  Distinct sessions share no
mutable state and need no coordination.

References:
    [FT00] B. Fortz and M. Thorup, "Internet traffic engineering by
        optimizing OSPF weights", IEEE INFOCOM 2000.
    [RFC4915] P. Psenak et al., "Multi-Topology (MT) Routing in OSPF",
        RFC 4915, 2007 — the deployment vehicle for per-class weight
        vectors that DTR assumes.
"""

from __future__ import annotations

import random
import threading
from typing import TYPE_CHECKING, Optional, Sequence, Union

import numpy as np

from repro.api.cost_models import CostModel, CostModelLike, get_cost_model
from repro.api.queries import (
    KIND_FAILURE,
    KIND_SCENARIO,
    KIND_TRAFFIC,
    KIND_WEIGHTS,
    WhatIfResult,
    utilization_deltas,
)
from repro.core.evaluator import (
    LOAD_MODE,
    DualTopologyEvaluator,
    Evaluation,
)
from repro.costs.load_cost import evaluate_load_cost, load_cost_from_loads
from repro.costs.sla import SlaParams, evaluate_sla_cost, sla_cost_from_loads
from repro.network.failures import FailureScenario
from repro.network.graph import Network
from repro.routing.incremental import WeightDelta
from repro.routing.state import Routing
from repro.routing.weights import weights_key
from repro.traffic.matrix import TrafficMatrix

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.api.strategies import OptimizationResult
    from repro.eval.experiment import ExperimentConfig
    from repro.scenarios.algebra import Scenario
    from repro.scenarios.batch import ScenarioOutcome, SweepEngine, SweepResult

DeltaLike = Union[WeightDelta, tuple[int, int], dict[int, int]]
"""A weight change: a :class:`WeightDelta`, a ``(link, new_weight)``
pair, or a ``{link: new_weight}`` mapping."""

ScenarioLike = Union[FailureScenario, tuple[int, int]]
"""A failure: a prebuilt scenario or the ``(u, v)`` adjacency to fail."""


class Session:
    """One optimization/evaluation context over a fixed network + traffic.

    Args:
        net: The network.
        high_traffic: High-priority traffic matrix ``T_H``.
        low_traffic: Low-priority traffic matrix ``T_L``.
        cost_model: A registered cost-model name (``"load"``, ``"sla"``,
            ``"fortz"``, ``"joint"``) or a :class:`CostModel` instance;
            selects the evaluator mode and scores what-if queries.
        sla_params: SLA bound/penalty parameters (SLA-mode models only).
        seed: Base seed of the session's named RNG streams.
        cache_size: Evaluator cache entries per layer.
        incremental: Evaluate weight deltas via incremental SPF.
        verify_incremental: Cross-check every derived layer (tests only).
        batched_sweeps: Whether scenario queries share state through the
            sweep engine (default).  ``False`` rebuilds every scenario
            from scratch — the naive verification fallback the serve
            benchmark and differential tests compare against, analogous
            to ``incremental=False`` for weight deltas.
    """

    def __init__(
        self,
        net: Network,
        high_traffic: TrafficMatrix,
        low_traffic: TrafficMatrix,
        *,
        cost_model: CostModelLike = "load",
        sla_params: Optional[SlaParams] = None,
        seed: int = 1,
        cache_size: int = 128,
        incremental: bool = True,
        verify_incremental: bool = False,
        batched_sweeps: bool = True,
        _evaluator: Optional[DualTopologyEvaluator] = None,
    ) -> None:
        self.cost_model: CostModel = get_cost_model(cost_model)
        self.seed = int(seed)
        if _evaluator is not None:
            if _evaluator.mode != self.cost_model.evaluator_mode:
                raise ValueError(
                    f"evaluator mode {_evaluator.mode!r} does not match cost "
                    f"model {self.cost_model.name!r} "
                    f"({self.cost_model.evaluator_mode!r})"
                )
            self.evaluator = _evaluator
        else:
            self.evaluator = DualTopologyEvaluator(
                net,
                high_traffic,
                low_traffic,
                mode=self.cost_model.evaluator_mode,
                sla_params=sla_params,
                cache_size=cache_size,
                incremental=incremental,
                verify_incremental=verify_incremental,
            )
        self.batched_sweeps = bool(batched_sweeps)
        self._baseline: Optional[tuple[np.ndarray, np.ndarray]] = None
        self._direct_cache: dict[bytes, Evaluation] = {}
        self._sweep_engine_cache: Optional[tuple[bytes, "SweepEngine"]] = None
        self.config: Optional["ExperimentConfig"] = None
        #: Serializes evaluator/engine access when the session is shared
        #: across threads (see the module docstring's thread-safety note).
        self.lock = threading.RLock()

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_config(cls, config: "ExperimentConfig") -> "Session":
        """Build a session from one :class:`ExperimentConfig`.

        The network and (scaled) traffic matrices are derived exactly as
        :func:`repro.eval.experiment.run_comparison` always did: the
        topology from ``(topology, seed)`` and the traffic from the
        deterministic ``(seed, "traffic")`` RNG stream, so a session is a
        pure function of its config.
        """
        from repro.eval.experiment import (
            build_network,
            build_traffic,
            derive_rng,
            make_evaluator,
        )

        net = build_network(config.topology, config.seed)
        high, low, _meta = build_traffic(net, config, derive_rng(config.seed, "traffic"))
        session = cls(
            net,
            high,
            low,
            cost_model=config.mode,
            seed=config.seed,
            _evaluator=make_evaluator(net, high, low, config),
        )
        session.config = config
        return session

    @classmethod
    def from_evaluator(
        cls,
        evaluator: DualTopologyEvaluator,
        seed: int = 1,
        cost_model: Optional[CostModelLike] = None,
    ) -> "Session":
        """Wrap an existing evaluator (the legacy entry points use this).

        The evaluator instance is shared, not copied, so its caches and
        evaluation counters keep working exactly as before.
        """
        return cls(
            evaluator.network,
            evaluator.high_traffic,
            evaluator.low_traffic,
            cost_model=cost_model if cost_model is not None else evaluator.mode,
            seed=seed,
            _evaluator=evaluator,
        )

    # ------------------------------------------------------------------
    # Context accessors
    # ------------------------------------------------------------------
    @property
    def network(self) -> Network:
        """The network being optimized."""
        return self.evaluator.network

    @property
    def high_traffic(self) -> TrafficMatrix:
        """High-priority traffic matrix."""
        return self.evaluator.high_traffic

    @property
    def low_traffic(self) -> TrafficMatrix:
        """Low-priority traffic matrix."""
        return self.evaluator.low_traffic

    @property
    def sla_params(self) -> SlaParams:
        """SLA parameters in force (defaults when not in SLA mode)."""
        return self.evaluator.sla_params

    def derive_rng(self, stream: str) -> random.Random:
        """A deterministic RNG for one named stream of this session."""
        from repro.eval.experiment import derive_rng

        return derive_rng(self.seed, stream)

    # ------------------------------------------------------------------
    # Baseline weight setting
    # ------------------------------------------------------------------
    def set_weights(
        self,
        high_weights: Sequence[int],
        low_weights: Optional[Sequence[int]] = None,
    ) -> None:
        """Pin the baseline weight setting what-if queries compare against.

        Args:
            high_weights: High-priority weights (both classes when
                ``low_weights`` is omitted — the STR deployment).
            low_weights: Low-priority weights, for a dual setting.
        """
        wh = np.asarray(high_weights, dtype=np.int64)
        wl = wh if low_weights is None else np.asarray(low_weights, dtype=np.int64)
        if wh.shape != (self.network.num_links,) or wl.shape != wh.shape:
            raise ValueError(
                f"expected weight vectors of length {self.network.num_links}"
            )
        self._baseline = (wh, wl)

    def adopt(self, result: "OptimizationResult") -> None:
        """Adopt an optimization result as the baseline weight setting."""
        self.set_weights(result.high_weights, result.low_weights)

    @property
    def high_weights(self) -> np.ndarray:
        """Baseline high-priority weights."""
        return self._require_baseline()[0]

    @property
    def low_weights(self) -> np.ndarray:
        """Baseline low-priority weights."""
        return self._require_baseline()[1]

    def _require_baseline(self) -> tuple[np.ndarray, np.ndarray]:
        if self._baseline is None:
            raise ValueError(
                "no baseline weight setting: call session.optimize(...) or "
                "session.set_weights(...) first"
            )
        return self._baseline

    # ------------------------------------------------------------------
    # Optimization and evaluation
    # ------------------------------------------------------------------
    def optimize(
        self, strategy: str = "dtr", params=None, **options
    ) -> "OptimizationResult":
        """Run a registered strategy; adopts the result as the baseline.

        See :func:`repro.api.optimize` for the argument contract.
        """
        from repro.api import optimize as api_optimize

        return api_optimize(self, strategy=strategy, params=params, **options)

    def evaluate(self) -> Evaluation:
        """(Cached) full evaluation of the baseline weight setting."""
        wh, wl = self._require_baseline()
        return self.evaluator.evaluate(wh, wl)

    def prepare(self) -> "Session":
        """Warm every lazily built layer of the baseline, then return self.

        Evaluates the baseline weight setting and constructs the
        scenario sweep engine (baseline routings, per-destination load
        rows), so the first query served from a pooled session pays no
        cold-start cost.  The serve layer's warm-session pool calls this
        on every build; idempotent and cheap once warm.
        """
        with self.lock:
            self.evaluate()
            self._scenario_engine()
        return self

    def objective(self):
        """Cost-model objective of the baseline."""
        return self.cost_model.objective(self.evaluate(), self.network)

    # ------------------------------------------------------------------
    # What-if queries
    # ------------------------------------------------------------------
    def what_if(
        self, delta: DeltaLike, topology: Optional[str] = None
    ) -> WhatIfResult:
        """Cost/utilization deltas of a small weight change, incrementally.

        The variant is evaluated through the incremental-SPF delta path:
        only destinations whose shortest-path structure can change under
        the move are recomputed, so a one/two-link query is several times
        faster than a full re-evaluation yet bit-identical to one.

        Args:
            delta: The change — a :class:`WeightDelta`, a
                ``(link, new_weight)`` pair, or ``{link: new_weight}``.
            topology: ``"high"``, ``"low"``, or ``"both"`` (default:
                ``"both"``, i.e. the move applies to each class's vector).

        Returns:
            A :class:`WhatIfResult` with ``kind="weights"``.
        """
        wh, wl = self._require_baseline()
        topology = topology or "both"
        if topology not in ("high", "low", "both"):
            raise ValueError("topology must be 'high', 'low', or 'both'")
        baseline = self.evaluate()  # also primes the evaluator's parent layers

        hints: dict = {}
        new_wh, new_wl = wh, wl
        dh = dl = None
        if topology in ("high", "both"):
            dh = self._coerce_delta(wh, delta)
            new_wh = dh.apply(wh)
            hints.update(high_base=wh, high_delta=dh)
        if topology in ("low", "both"):
            dl = self._coerce_delta(wl, delta)
            new_wl = dl.apply(wl)
            hints.update(low_base=wl, low_delta=dl)
        variant = self.evaluator.evaluate(new_wh, new_wl, **hints)

        high_d, low_d, total_d = utilization_deltas(
            self.network.capacities(), baseline, variant.high_loads, variant.low_loads
        )

        def moves(delta: WeightDelta) -> str:
            return ", ".join(
                f"link {link}: {old} -> {new}" for link, old, new in delta.changes
            ) or "(no-op)"

        if topology == "both" and dh.changes != dl.changes:
            description = (
                f"both weight change high[{moves(dh)}], low[{moves(dl)}]"
            )
        else:
            description = f"{topology} weight change {moves(dh if dh is not None else dl)}"
        return WhatIfResult(
            kind=KIND_WEIGHTS,
            description=description,
            baseline=baseline,
            variant=variant,
            baseline_objective=self.cost_model.objective(baseline, self.network),
            variant_objective=self.cost_model.objective(variant, self.network),
            high_utilization_delta=high_d,
            low_utilization_delta=low_d,
            utilization_delta=total_d,
        )

    def under_failure(self, scenario: Optional[ScenarioLike]) -> WhatIfResult:
        """Cost/utilization impact of one duplex-adjacency failure.

        A delegating shim over the general :meth:`under_scenario`: the
        failure becomes a :class:`~repro.scenarios.LinkFailure` and rides
        the shared scenario engine, so repeated failure queries reuse the
        intact routing state instead of rebuilding it per call.

        Args:
            scenario: A :class:`FailureScenario`, the ``(u, v)``
                adjacency to fail, or ``None`` for the intact network
                (zero deltas; the sweep's baseline row).

        Returns:
            A :class:`WhatIfResult` with ``kind="failure"``; for a real
            failure, ``variant`` is an evaluation over the *degraded*
            network while the utilization deltas are projected back to
            intact link indexing (failed links show their lost load).
        """
        from repro.scenarios.algebra import LinkFailure

        wh, wl = self._require_baseline()
        if scenario is None:
            baseline = self._direct_evaluation(self.network, wh, wl, cache=True)
            high_d, low_d, total_d = utilization_deltas(
                self.network.capacities(), baseline, baseline.high_loads,
                baseline.low_loads,
            )
            return WhatIfResult(
                kind=KIND_FAILURE,
                description="intact network",
                baseline=baseline,
                variant=baseline,
                baseline_objective=self.cost_model.objective(baseline, self.network),
                variant_objective=self.cost_model.objective(baseline, self.network),
                high_utilization_delta=high_d,
                low_utilization_delta=low_d,
                utilization_delta=total_d,
            )
        if isinstance(scenario, FailureScenario):
            u, v = scenario.failed_pair
        else:
            u, v = scenario
        pair = (min(int(u), int(v)), max(int(u), int(v)))
        return self.under_scenario(
            LinkFailure.single(*pair),
            kind=KIND_FAILURE,
            description=f"failure of adjacency {pair}",
        )

    def under_scenario(
        self,
        scenario: Union["Scenario", str],
        *,
        kind: str = KIND_SCENARIO,
        description: Optional[str] = None,
    ) -> WhatIfResult:
        """Cost/utilization impact of one scenario (failure and/or traffic).

        The scenario is lowered to its normalized
        ``(surviving network, projected weights, transformed traffic)``
        form and evaluated through the session's
        :class:`~repro.scenarios.batch.SweepEngine`, which derives the
        degraded routing from the intact baseline via incremental SPF
        where the change is small and shares state across queries.
        Demand pairs the scenario disconnects are excluded from the
        evaluation and surfaced on the result (``disconnected`` /
        ``lost_demand``) instead of raising.

        Args:
            scenario: A :class:`~repro.scenarios.Scenario` or a spec
                string such as ``"node:3"`` or ``"link:0-4+surge:3x2.0"``
                (see :func:`repro.scenarios.parse_scenario`).
            kind: Result kind (``under_failure`` passes ``"failure"``).
            description: Override for the result description.

        Returns:
            A :class:`WhatIfResult` whose ``variant`` is an evaluation
            over the surviving network; utilization deltas are projected
            back to intact link indexing.
        """
        from repro.scenarios.spec import parse_scenario

        if isinstance(scenario, str):
            scenario = parse_scenario(scenario)
        engine = self._scenario_engine()
        outcome = engine.evaluate(scenario)
        return self._scenario_result(outcome, kind=kind, description=description)

    def sweep(self, scenarios) -> "SweepResult":
        """Batched evaluation of many scenarios against the baseline.

        Scenarios that fail the same elements share one topology
        projection and one derived routing, and unaffected
        per-destination load rows are reused outright, so a sweep is
        several times faster than per-scenario re-evaluation while
        remaining bit-identical to it (see
        :mod:`repro.scenarios.batch`).

        Args:
            scenarios: An iterable of scenarios or a
                :class:`~repro.scenarios.ScenarioSet`.

        Returns:
            A :class:`~repro.scenarios.batch.SweepResult`; score its
            evaluations with ``session.cost_model.objective`` when a
            non-default cost model is in force.
        """
        return self._scenario_engine().sweep(scenarios)

    def sweep_space(self, space, **kwargs):
        """Streamed robustness aggregation over a combinatorial space.

        Enumerates the space lazily through the session's sweep engine
        with dominance pruning, folding every outcome into a streaming
        percentile/CVaR/worst-case aggregate — "all 2-link failures" in
        one call without materializing the scenario list (see
        :func:`repro.scenarios.sweep_scenario_space`).

        Args:
            space: A :class:`~repro.scenarios.ScenarioSpace` or a spec
                string such as ``"space:all-link-2"`` (see
                :func:`repro.scenarios.parse_space`).
            **kwargs: Passed through (``prune``, ``percentiles``,
                ``cvar_alpha``, ...).  Unless overridden, scenarios are
                scored through the session's cost model, matching
                :meth:`under_scenario` / :meth:`sweep` scoring.

        Returns:
            A :class:`~repro.scenarios.SpaceSweepResult`.
        """
        engine = self._scenario_engine()
        if "score" not in kwargs:

            def score(evaluation, network):
                objective = self.cost_model.objective(evaluation, network)
                return float(objective.primary), float(objective.secondary)

            kwargs["score"] = score
        return engine.sweep_space(space, **kwargs)

    def _scenario_engine(self) -> "SweepEngine":
        """The (cached) sweep engine bound to the current baseline."""
        from repro.scenarios.batch import SweepEngine

        wh, wl = self._require_baseline()
        key = weights_key(wh) + b"|" + weights_key(wl)
        cached = self._sweep_engine_cache
        if cached is not None and cached[0] == key:
            return cached[1]
        engine = SweepEngine(
            self.network,
            wh,
            wl,
            self.high_traffic,
            self.low_traffic,
            mode=self.evaluator.mode,
            sla_params=self.sla_params,
            batched=self.batched_sweeps,
        )
        self._sweep_engine_cache = (key, engine)
        return engine

    def _scenario_result(
        self,
        outcome: "ScenarioOutcome",
        kind: str,
        description: Optional[str] = None,
    ) -> WhatIfResult:
        """Fold one sweep outcome into a what-if result with back-projection."""
        engine = self._scenario_engine()
        baseline = engine.baseline
        lowered = outcome.lowered
        variant = outcome.evaluation
        high_d, low_d, total_d = utilization_deltas(
            self.network.capacities(),
            baseline,
            lowered.project_loads_back(variant.high_loads),
            lowered.project_loads_back(variant.low_loads),
        )
        return WhatIfResult(
            kind=kind,
            description=description or lowered.description,
            baseline=baseline,
            variant=variant,
            baseline_objective=self.cost_model.objective(baseline, self.network),
            variant_objective=self.cost_model.objective(variant, lowered.network),
            high_utilization_delta=high_d,
            low_utilization_delta=low_d,
            utilization_delta=total_d,
            scenario_kind=outcome.scenario.kind,
            disconnected=outcome.disconnected,
            lost_demand=outcome.lost_demand,
        )

    def scaled_traffic(self, factor: float) -> WhatIfResult:
        """Cost/utilization impact of scaling both traffic classes.

        Routing depends only on weights, so no SPF runs at all: the
        baseline's per-link class loads are rescaled and only the O(|E|)
        costing pass (plus, in SLA mode, the per-pair delay fold over the
        cached routing) is recomputed.

        Args:
            factor: Non-negative multiplier on both matrices.

        Returns:
            A :class:`WhatIfResult` with ``kind="traffic"``.
        """
        if factor < 0:
            raise ValueError(f"traffic scale factor must be non-negative, got {factor}")
        wh, _wl = self._require_baseline()
        baseline = self.evaluate()
        net = self.network
        high_loads = baseline.high_loads * factor
        low_loads = baseline.low_loads * factor

        if self.evaluator.mode == LOAD_MODE:
            variant: Evaluation = load_cost_from_loads(net, high_loads, low_loads)
        else:
            variant = sla_cost_from_loads(
                net,
                high_loads,
                low_loads,
                self.high_traffic,
                self.evaluator.high_routing(wh).pair_link_fractions,
                params=self.sla_params,
            )

        high_d, low_d, total_d = utilization_deltas(
            net.capacities(), baseline, high_loads, low_loads
        )
        return WhatIfResult(
            kind=KIND_TRAFFIC,
            description=f"traffic scaled by {factor:g}x",
            baseline=baseline,
            variant=variant,
            baseline_objective=self.cost_model.objective(baseline, net),
            variant_objective=self.cost_model.objective(variant, net),
            high_utilization_delta=high_d,
            low_utilization_delta=low_d,
            utilization_delta=total_d,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce_delta(base: np.ndarray, spec: DeltaLike) -> WeightDelta:
        """Normalize a delta spec against one baseline vector."""
        if isinstance(spec, WeightDelta):
            return spec
        if isinstance(spec, dict):
            items = spec.items()
        else:
            try:
                link, new_weight = spec
            except (TypeError, ValueError):
                raise TypeError(
                    "delta must be a WeightDelta, a (link, new_weight) pair, "
                    "or a {link: new_weight} mapping"
                ) from None
            items = [(link, new_weight)]
        new = base.copy()
        for link, new_weight in items:
            link = int(link)
            if not 0 <= link < base.size:
                raise ValueError(
                    f"link index {link} out of range [0, {base.size})"
                )
            new[link] = int(new_weight)
        return WeightDelta.from_weights(base, new)

    def _direct_evaluation(
        self,
        net: Network,
        wh: np.ndarray,
        wl: np.ndarray,
        cache: bool = False,
    ) -> Evaluation:
        """From-scratch evaluation via plain routings (failure queries).

        Both the intact baseline and every degraded variant use this
        path, keeping a failure sweep's ratios free of cross-path
        floating-point noise.
        """
        if cache:
            key = weights_key(wh) + b"|" + weights_key(wl)
            hit = self._direct_cache.get(key)
            if hit is not None:
                return hit
        high_routing = Routing(net, wh)
        low_routing = high_routing if np.array_equal(wh, wl) else Routing(net, wl)
        if self.evaluator.mode == LOAD_MODE:
            evaluation: Evaluation = evaluate_load_cost(
                net, high_routing, low_routing, self.high_traffic, self.low_traffic
            )
        else:
            evaluation = evaluate_sla_cost(
                net,
                high_routing,
                low_routing,
                self.high_traffic,
                self.low_traffic,
                params=self.sla_params,
            )
        if cache:
            self._direct_cache.clear()  # single-slot: a new baseline evicts the old
            self._direct_cache[key] = evaluation
        return evaluation
