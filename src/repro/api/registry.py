"""Plugin registries backing the ``repro.api`` facade.

One small mechanism serves both the strategy and the cost-model plugin
points: a named table of entries with loud, actionable error paths.  An
unknown name always reports the registered alternatives (the CLI
surfaces that message verbatim), and duplicate registration fails
instead of silently shadowing an existing plugin.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator


class RegistryError(ValueError):
    """Base class for registry failures."""


class DuplicateRegistrationError(RegistryError):
    """A name was registered twice without ``replace=True``."""


class UnknownNameError(RegistryError):
    """A lookup named an entry that is not registered.

    The message lists every registered name so callers (and CLI users)
    can see the valid choices without consulting the docs.
    """


class Registry:
    """A named table of plugin entries.

    Args:
        kind: Human-readable entry kind (``"strategy"``, ``"cost model"``)
            used in error messages.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: dict[str, Any] = {}

    def register(self, name: str, entry: Any, replace: bool = False) -> Any:
        """Add an entry under ``name``.

        Args:
            name: Registry key (non-empty).
            entry: The plugin object or factory.
            replace: Allow overwriting an existing entry (tests use this
                to swap in instrumented plugins).

        Returns:
            ``entry``, so this can back a decorator.

        Raises:
            DuplicateRegistrationError: if ``name`` is taken and
                ``replace`` is false.
        """
        if not name:
            raise RegistryError(f"{self.kind} name must be non-empty")
        if name in self._entries and not replace:
            raise DuplicateRegistrationError(
                f"{self.kind} {name!r} is already registered; "
                f"pass replace=True to override it"
            )
        self._entries[name] = entry
        return entry

    def unregister(self, name: str) -> None:
        """Remove an entry (missing names are ignored)."""
        self._entries.pop(name, None)

    def get(self, name: str) -> Any:
        """Look up an entry by name.

        Raises:
            UnknownNameError: naming the registered alternatives.
        """
        try:
            return self._entries[name]
        except KeyError:
            raise UnknownNameError(
                f"unknown {self.kind} {name!r}; registered {self.kind} names: "
                f"{', '.join(self.names()) or '(none)'}"
            ) from None

    def names(self) -> tuple[str, ...]:
        """All registered names, sorted."""
        return tuple(sorted(self._entries))

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def decorator(self, name: str, replace: bool = False) -> Callable[[Any], Any]:
        """A class/function decorator registering its target under ``name``."""

        def register(entry: Any) -> Any:
            return self.register(name, entry, replace=replace)

        return register
