"""Pluggable cost models scoring a routing evaluation.

The paper studies two lexicographic objectives — load-based ``A``
(Eq. 2) and SLA-based ``S`` (Eq. 5) — but the facade treats "how a
weight setting is scored" as a plugin point, so alternative objectives
(the undifferentiated Fortz-Thorup cost [FT00], the joint scalar cost of
Section 3.3.1, or anything a future PR registers) slot in without
touching the session, the strategies, or the what-if queries.

A cost model declares which evaluator layer it scores
(``evaluator_mode``: ``"load"`` or ``"sla"``) and maps an
:class:`~repro.core.evaluator.Evaluation` to a lexicographic
:class:`~repro.core.lexicographic.LexCost` plus a scalar summary.

References:
    [FT00] B. Fortz and M. Thorup, "Internet traffic engineering by
        optimizing OSPF weights", IEEE INFOCOM 2000.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Union, runtime_checkable

from repro.core.evaluator import LOAD_MODE, SLA_MODE, Evaluation
from repro.core.lexicographic import LexCost
from repro.costs.fortz import fortz_cost_vector
from repro.costs.joint import joint_cost
from repro.network.graph import Network
from repro.api.registry import Registry

COST_MODELS = Registry("cost model")
"""The global cost-model registry: name -> factory (class)."""


def register_cost_model(name: str, replace: bool = False):
    """Class decorator registering a :class:`CostModel` factory."""
    return COST_MODELS.decorator(name, replace=replace)


@runtime_checkable
class CostModel(Protocol):
    """What a pluggable objective must provide."""

    name: str
    evaluator_mode: str

    def objective(self, evaluation: Evaluation, net: Network) -> LexCost:
        """The (possibly degenerate) lexicographic cost of an evaluation."""
        ...

    def scalar(self, evaluation: Evaluation, net: Network) -> float:
        """A single-number summary of the same evaluation."""
        ...


@register_cost_model("load")
@dataclass(frozen=True)
class LoadCostModel:
    """The paper's load-based objective ``A = <Phi_H, Phi_L>`` (Eq. 2)."""

    name: str = "load"
    evaluator_mode: str = LOAD_MODE

    def objective(self, evaluation: Evaluation, net: Network) -> LexCost:
        return evaluation.objective

    def scalar(self, evaluation: Evaluation, net: Network) -> float:
        return evaluation.phi_high + evaluation.phi_low


@register_cost_model("sla")
@dataclass(frozen=True)
class SlaCostModel:
    """The paper's SLA-based objective ``S = <Lambda, Phi_L>`` (Eq. 5)."""

    name: str = "sla"
    evaluator_mode: str = SLA_MODE

    def objective(self, evaluation: Evaluation, net: Network) -> LexCost:
        return evaluation.objective

    def scalar(self, evaluation: Evaluation, net: Network) -> float:
        return evaluation.penalty + evaluation.phi_low


@register_cost_model("fortz")
@dataclass(frozen=True)
class FortzCostModel:
    """The undifferentiated OSPF weight-optimization cost of [FT00].

    Both classes are priced together against full link capacity — the
    single-class baseline the paper's service differentiation improves
    on.  Useful for what-if queries that ask "what would a classless
    operator see?".
    """

    name: str = "fortz"
    evaluator_mode: str = LOAD_MODE

    def objective(self, evaluation: Evaluation, net: Network) -> LexCost:
        return LexCost(self.scalar(evaluation, net), 0.0)

    def scalar(self, evaluation: Evaluation, net: Network) -> float:
        combined = evaluation.high_loads + evaluation.low_loads
        return float(fortz_cost_vector(combined, net.capacities()).sum())


@register_cost_model("joint")
@dataclass(frozen=True)
class JointCostModel:
    """The joint scalar cost ``J = alpha * Phi_H + Phi_L`` (Section 3.3.1)."""

    alpha: float = 1.0
    name: str = "joint"
    evaluator_mode: str = LOAD_MODE

    def __post_init__(self) -> None:
        if self.alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {self.alpha}")

    def objective(self, evaluation: Evaluation, net: Network) -> LexCost:
        return LexCost(self.scalar(evaluation, net), 0.0)

    def scalar(self, evaluation: Evaluation, net: Network) -> float:
        return joint_cost(evaluation, self.alpha)


CostModelLike = Union[str, CostModel]


def get_cost_model(spec: CostModelLike, **kwargs) -> CostModel:
    """Resolve a cost model from a registry name or pass one through.

    Args:
        spec: A registered name (``"load"``, ``"sla"``, ``"fortz"``,
            ``"joint"``, or any plugin) or an already-built model.
        **kwargs: Forwarded to the factory when ``spec`` is a name
            (e.g. ``alpha`` for ``"joint"``).

    Raises:
        UnknownNameError: for an unregistered name, listing the
            registered alternatives.
    """
    if isinstance(spec, str):
        return COST_MODELS.get(spec)(**kwargs)
    if kwargs:
        raise ValueError("keyword options require a cost model *name*")
    return spec


def available_cost_models() -> tuple[str, ...]:
    """Sorted names of every registered cost model."""
    return COST_MODELS.names()
