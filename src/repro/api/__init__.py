"""``repro.api`` — the session-oriented facade over the whole library.

One stable surface for every optimization and evaluation workflow:

* :class:`Session` bundles network + traffic + evaluator + cost model +
  deterministic RNG streams;
* :func:`optimize` runs any strategy registered in the
  :data:`~repro.api.strategies.STRATEGIES` registry (``str``, ``dtr``,
  ``joint``, ``anneal`` built in) and returns a common
  :class:`OptimizationResult`;
* ``session.what_if`` / ``session.under_failure`` /
  ``session.scaled_traffic`` answer incremental what-if queries against
  the session baseline;
* :func:`register_strategy` / :func:`register_cost_model` make new
  strategies and objectives additive plugins instead of cross-cutting
  edits;
* :func:`serve_session` lifts a session into the online serving stack
  (:mod:`repro.serve`): warm pool, micro-batch scheduler, plan cache,
  and optionally the stdlib HTTP frontend.

Quickstart::

    from repro.api import Session, optimize
    from repro.eval.experiment import ExperimentConfig

    session = Session.from_config(ExperimentConfig(topology="isp"))
    result = optimize(session, strategy="dtr")
    print(result.objective, result.wall_time_s)
    print(session.what_if((3, 17)).format())      # one-link what-if
    print(session.under_failure((0, 4)).format()) # adjacency failure
    print(session.scaled_traffic(1.2).format())   # 20% traffic growth

See ``docs/api.md`` for the design and the migration guide from the
legacy free functions (``optimize_str`` et al.), which now delegate
here.
"""

from __future__ import annotations

from typing import Optional

from repro.api.cost_models import (
    COST_MODELS,
    CostModel,
    FortzCostModel,
    JointCostModel,
    LoadCostModel,
    SlaCostModel,
    available_cost_models,
    get_cost_model,
    register_cost_model,
)
from repro.api.queries import WhatIfResult
from repro.api.registry import (
    DuplicateRegistrationError,
    Registry,
    RegistryError,
    UnknownNameError,
)
from repro.api.session import Session
from repro.api.strategies import (
    STRATEGIES,
    OptimizationResult,
    Strategy,
    TracePoint,
    available_strategies,
    get_strategy,
    register_strategy,
)
from repro.core.search_params import SearchParams

__all__ = [
    "Session",
    "optimize",
    "serve_session",
    "OptimizationResult",
    "TracePoint",
    "Strategy",
    "STRATEGIES",
    "register_strategy",
    "get_strategy",
    "available_strategies",
    "CostModel",
    "COST_MODELS",
    "register_cost_model",
    "get_cost_model",
    "available_cost_models",
    "LoadCostModel",
    "SlaCostModel",
    "FortzCostModel",
    "JointCostModel",
    "WhatIfResult",
    "Registry",
    "RegistryError",
    "DuplicateRegistrationError",
    "UnknownNameError",
]


def optimize(
    session: Session,
    strategy: str = "dtr",
    params: Optional[SearchParams] = None,
    **options,
) -> OptimizationResult:
    """Run one registered strategy on a session.

    The single entry point behind ``repro-dtr optimize``, the experiment
    harness, and the legacy free functions.  The result's weight setting
    is adopted as the session baseline, so subsequent
    ``session.what_if(...)`` queries probe around the optimum.

    Args:
        session: The optimization context.
        strategy: Registered strategy name (see
            :func:`available_strategies`).
        params: Search budgets shared by all strategies; library
            defaults if omitted.
        **options: Strategy-specific options (e.g. ``rng``,
            ``initial_weights``, ``alpha`` for ``joint``,
            ``annealing_params`` for ``anneal``, ``progress``).

    Returns:
        The strategy's :class:`OptimizationResult`.

    Raises:
        UnknownNameError: for an unregistered strategy name; the message
            lists the registered alternatives.
    """
    result = get_strategy(strategy).run(session, params=params, **options)
    session.adopt(result)
    return result


def serve_session(session: Session, **options):
    """Serve one session's baseline as an online what-if service.

    The session is warmed (:meth:`Session.prepare`), pinned in a
    :class:`~repro.serve.SessionPool`, and fronted by the micro-batch
    scheduler and plan cache; the returned
    :class:`~repro.serve.ServeService` answers ``whatif``/``sweep``
    queries bit-identically to calling ``session.under_scenario`` /
    ``session.sweep`` directly, and plugs straight into
    :class:`~repro.serve.WhatIfServer` for HTTP access.

    Args:
        session: A session with a baseline weight setting
            (``set_weights``/``optimize`` first).
        **options: Forwarded to :class:`~repro.serve.ServeService`
            (``pool``, ``cache``, ``scheduler``, ``window_s``).

    Raises:
        ValueError: if the session has no baseline weight setting.
    """
    from repro.serve import ServeService

    return ServeService.from_session(session, **options)
