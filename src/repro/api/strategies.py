"""The strategy registry: every weight search behind one ``run`` shape.

The paper's contribution is a *family* of weight-search strategies — the
STR baseline [FT00], the DTR heuristic (Algorithms 1-2), the joint-cost
search (Section 3.3.1), and the simulated-annealing baseline.  Each is
registered here as a :class:`Strategy` plugin producing one common
:class:`OptimizationResult`, so callers (experiments, campaigns, the
CLI) pick strategies by name and new ones plug in without touching any
caller.

References:
    [FT00] B. Fortz and M. Thorup, "Internet traffic engineering by
        optimizing OSPF weights", IEEE INFOCOM 2000.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Optional, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.api.registry import Registry
from repro.core.annealing import AnnealingParams, _anneal_str_impl
from repro.core.dtr_search import _optimize_dtr_impl
from repro.core.evaluator import Evaluation
from repro.core.joint_search import _optimize_joint_impl
from repro.core.lexicographic import LexCost
from repro.core.progress import ProgressFn
from repro.core.search_params import SearchParams
from repro.core.str_search import _optimize_str_impl
from repro.routing.state import Routing

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.api.session import Session

STRATEGIES = Registry("strategy")
"""The global strategy registry: name -> :class:`Strategy` instance."""


def register_strategy(name: str, replace: bool = False):
    """Decorator registering a strategy class (instantiated) or instance."""

    def register(obj: Any) -> Any:
        STRATEGIES.register(name, obj() if isinstance(obj, type) else obj, replace=replace)
        return obj

    return register


def get_strategy(name: str) -> "Strategy":
    """Look up a registered strategy.

    Raises:
        UnknownNameError: for an unregistered name, listing the
            registered alternatives.
    """
    return STRATEGIES.get(name)


def available_strategies() -> tuple[str, ...]:
    """Sorted names of every registered strategy."""
    return STRATEGIES.names()


@dataclass(frozen=True)
class TracePoint:
    """One improvement event in a search's cost trace.

    ``primary``/``secondary`` are the strategy's own objective at the
    improvement: the lexicographic components for ``str``/``dtr``/
    ``anneal``, and ``(J, 0.0)`` for ``joint`` (which optimizes a
    scalar).
    """

    phase: str
    iteration: int
    primary: float
    secondary: float


@dataclass
class OptimizationResult:
    """The common outcome every strategy produces.

    Attributes:
        strategy: Registry name of the strategy that produced this.
        high_weights: Best high-priority weight vector (for
            single-topology strategies, identical to ``low_weights``).
        low_weights: Best low-priority weight vector.
        objective: Lexicographic cost of the best setting.
        evaluation: Full evaluation of the best setting.
        cost_trace: Normalized improvement history.
        evaluations: Weight settings evaluated during the search.
        wall_time_s: Wall-clock seconds spent inside the strategy.
        metadata: Strategy-specific extras (budgets, alpha, acceptance
            counts, ...), JSON-friendly where possible.
        raw: The legacy result dataclass (``StrResult``, ``DtrResult``,
            ``JointResult``, or ``AnnealingResult``) for callers that
            still need strategy-specific fields.
    """

    strategy: str
    high_weights: np.ndarray
    low_weights: np.ndarray
    objective: LexCost
    evaluation: Evaluation
    cost_trace: tuple[TracePoint, ...]
    evaluations: int
    wall_time_s: float
    metadata: dict[str, Any] = field(default_factory=dict)
    raw: Any = None

    @property
    def dual(self) -> bool:
        """Whether the high and low topologies use different weights."""
        return not np.array_equal(self.high_weights, self.low_weights)

    @property
    def weights(self) -> np.ndarray:
        """The single weight vector of a single-topology result.

        Raises:
            ValueError: for a dual result — use ``high_weights`` /
                ``low_weights`` there.
        """
        if self.dual:
            raise ValueError(
                f"{self.strategy} produced a dual setting; "
                "use high_weights / low_weights"
            )
        return self.high_weights

    def routing(self, session: "Session") -> tuple[Routing, Routing]:
        """The (cached) high and low routings of the best setting."""
        evaluator = session.evaluator
        return (
            evaluator.high_routing(self.high_weights),
            evaluator.low_routing(self.low_weights),
        )


@runtime_checkable
class Strategy(Protocol):
    """What a pluggable weight-search strategy must provide."""

    name: str

    def run(
        self,
        session: "Session",
        params: Optional[SearchParams] = None,
        **options: Any,
    ) -> OptimizationResult:
        """Search the session's network/traffic and return the best setting."""
        ...


def _timed(session: "Session"):
    """Start an (evaluations, wall-time) measurement around one search."""
    return session.evaluator.evaluations, time.perf_counter()


def _search_rng(session: "Session", rng: Optional[random.Random]) -> random.Random:
    """Default to the session's deterministic ``"search"`` stream."""
    return rng if rng is not None else session.derive_rng("search")


@register_strategy("str")
class StrStrategy:
    """Single-topology local search (the Fortz-Thorup-style baseline)."""

    name = "str"

    def run(
        self,
        session: "Session",
        params: Optional[SearchParams] = None,
        *,
        rng: Optional[random.Random] = None,
        initial_weights: Optional[Sequence[int]] = None,
        relaxation_epsilons: Iterable[float] = (),
        progress: Optional[ProgressFn] = None,
    ) -> OptimizationResult:
        _, t0 = _timed(session)
        raw = _optimize_str_impl(
            session.evaluator,
            params=params,
            rng=_search_rng(session, rng),
            initial_weights=initial_weights,
            relaxation_epsilons=relaxation_epsilons,
            progress=progress,
        )
        return OptimizationResult(
            strategy=self.name,
            high_weights=raw.weights,
            low_weights=raw.weights,
            objective=raw.objective,
            evaluation=raw.evaluation,
            cost_trace=tuple(
                TracePoint("str", it, cost.primary, cost.secondary)
                for it, cost in raw.history
            ),
            evaluations=raw.evaluations,
            wall_time_s=time.perf_counter() - t0,
            metadata={
                "iterations": raw.iterations,
                "relaxation_epsilons": sorted(raw.relaxed),
            },
            raw=raw,
        )


@register_strategy("dtr")
class DtrStrategy:
    """The paper's dual-topology search (Algorithms 1-2)."""

    name = "dtr"

    def run(
        self,
        session: "Session",
        params: Optional[SearchParams] = None,
        *,
        rng: Optional[random.Random] = None,
        initial_high: Optional[Sequence[int]] = None,
        initial_low: Optional[Sequence[int]] = None,
        progress: Optional[ProgressFn] = None,
    ) -> OptimizationResult:
        _, t0 = _timed(session)
        raw = _optimize_dtr_impl(
            session.evaluator,
            params=params,
            rng=_search_rng(session, rng),
            initial_high=initial_high,
            initial_low=initial_low,
            progress=progress,
        )
        return OptimizationResult(
            strategy=self.name,
            high_weights=raw.high_weights,
            low_weights=raw.low_weights,
            objective=raw.objective,
            evaluation=raw.evaluation,
            cost_trace=tuple(
                TracePoint(phase, it, cost.primary, cost.secondary)
                for phase, it, cost in raw.history
            ),
            evaluations=raw.evaluations,
            wall_time_s=time.perf_counter() - t0,
            metadata={"seeded": initial_high is not None},
            raw=raw,
        )


@register_strategy("joint")
class JointStrategy:
    """STR search under the joint scalar cost ``J = alpha*Phi_H + Phi_L``."""

    name = "joint"

    def run(
        self,
        session: "Session",
        params: Optional[SearchParams] = None,
        *,
        alpha: Optional[float] = None,
        rng: Optional[random.Random] = None,
        initial_weights: Optional[Sequence[int]] = None,
        progress: Optional[ProgressFn] = None,
    ) -> OptimizationResult:
        if alpha is None:
            alpha = float(getattr(session.cost_model, "alpha", 1.0))
        start_evals, t0 = _timed(session)
        raw = _optimize_joint_impl(
            session.evaluator,
            alpha,
            params=params,
            rng=_search_rng(session, rng),
            initial_weights=initial_weights,
            progress=progress,
        )
        return OptimizationResult(
            strategy=self.name,
            high_weights=raw.weights,
            low_weights=raw.weights,
            objective=raw.lexicographic,
            evaluation=session.evaluator.evaluate_str(raw.weights),
            cost_trace=tuple(
                TracePoint("joint", it, j, 0.0) for it, j in raw.history
            ),
            evaluations=session.evaluator.evaluations - start_evals,
            wall_time_s=time.perf_counter() - t0,
            metadata={"alpha": raw.alpha, "joint_cost": raw.joint_cost},
            raw=raw,
        )


@register_strategy("anneal")
class AnnealStrategy:
    """Simulated-annealing baseline over the STR solution space."""

    name = "anneal"

    def run(
        self,
        session: "Session",
        params: Optional[SearchParams] = None,
        *,
        annealing_params: Optional[AnnealingParams] = None,
        rng: Optional[random.Random] = None,
        initial_weights: Optional[Sequence[int]] = None,
        progress: Optional[ProgressFn] = None,
    ) -> OptimizationResult:
        start_evals, t0 = _timed(session)
        schedule = annealing_params or AnnealingParams()
        raw = _anneal_str_impl(
            session.evaluator,
            params=schedule,
            search_params=params,
            rng=_search_rng(session, rng),
            initial_weights=initial_weights,
            progress=progress,
        )
        return OptimizationResult(
            strategy=self.name,
            high_weights=raw.weights,
            low_weights=raw.weights,
            objective=raw.objective,
            evaluation=raw.evaluation,
            cost_trace=tuple(
                TracePoint("anneal", it, cost.primary, cost.secondary)
                for it, cost in raw.history
            ),
            evaluations=session.evaluator.evaluations - start_evals,
            wall_time_s=time.perf_counter() - t0,
            metadata={
                "accepted": raw.accepted,
                "rejected": raw.rejected,
                "iterations": schedule.iterations,
                "initial_temperature": schedule.initial_temperature,
                "cooling": schedule.cooling,
            },
            raw=raw,
        )
