"""What-if query results: per-class cost and utilization deltas.

Every :class:`~repro.api.session.Session` query — a weight move, a link
failure, a traffic rescale — answers with one :class:`WhatIfResult`
comparing a *variant* evaluation against the session's baseline, scored
by the session's cost model.  Deltas are reported in the intact
network's link space even for failure queries (failed links show their
lost load as a negative delta).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.evaluator import Evaluation
from repro.core.lexicographic import LexCost

KIND_WEIGHTS = "weights"
KIND_FAILURE = "failure"
KIND_TRAFFIC = "traffic"
KIND_SCENARIO = "scenario"


@dataclass(frozen=True)
class WhatIfResult:
    """Outcome of one what-if query against a session baseline.

    Attributes:
        kind: ``"weights"``, ``"failure"``, or ``"traffic"``.
        description: Human-readable query summary (CLI output).
        baseline: Evaluation of the session's baseline weight setting.
        variant: Evaluation under the queried change (for failure
            queries, over the degraded network's link space).
        baseline_objective: Cost-model objective of the baseline.
        variant_objective: Cost-model objective of the variant.
        high_utilization_delta: Per-link change of high-priority
            utilization ``H_l / C_l``, intact link indexing.
        low_utilization_delta: Per-link change of low-priority
            utilization ``L_l / C_l``, intact link indexing.
        utilization_delta: Per-link change of total utilization.
        scenario_kind: The scenario class for scenario/failure queries
            (``"link"``, ``"node"``, ``"srlg"``, ...), else ``None``.
        disconnected: Whether the scenario cut off positive demand (the
            variant was evaluated over the routable remainder).
        lost_demand: Demand volume (Mb/s) on the disconnected pairs.
    """

    kind: str
    description: str
    baseline: Evaluation
    variant: Evaluation
    baseline_objective: LexCost
    variant_objective: LexCost
    high_utilization_delta: np.ndarray
    low_utilization_delta: np.ndarray
    utilization_delta: np.ndarray
    scenario_kind: Optional[str] = None
    disconnected: bool = False
    lost_demand: float = 0.0

    @property
    def primary_delta(self) -> float:
        """Change of the objective's primary component."""
        return self.variant_objective.primary - self.baseline_objective.primary

    @property
    def secondary_delta(self) -> float:
        """Change of the objective's secondary component."""
        return self.variant_objective.secondary - self.baseline_objective.secondary

    @property
    def max_utilization_delta(self) -> float:
        """Change of the worst total link utilization."""
        return self.variant.max_utilization - self.baseline.max_utilization

    @property
    def improves(self) -> bool:
        """Whether the variant beats the baseline lexicographically."""
        return self.variant_objective < self.baseline_objective

    def format(self) -> str:
        """A compact multi-line summary (used by ``repro-dtr whatif``)."""
        worst = int(np.argmax(np.abs(self.utilization_delta)))
        disconnect = (
            [
                f"  disconnected: {self.lost_demand:.2f} Mb/s of demand "
                "is unroutable and was excluded"
            ]
            if self.disconnected
            else []
        )
        return "\n".join(
            [
                f"what-if [{self.kind}] {self.description}",
                *disconnect,
                f"  objective: {self.baseline_objective} -> {self.variant_objective}"
                f"  (primary {self.primary_delta:+.4f}, "
                f"secondary {self.secondary_delta:+.4f})",
                f"  max utilization: {self.baseline.max_utilization:.4f} -> "
                f"{self.variant.max_utilization:.4f} "
                f"({self.max_utilization_delta:+.4f})",
                f"  largest per-link shift: link {worst} "
                f"({self.utilization_delta[worst]:+.4f} total, "
                f"{self.high_utilization_delta[worst]:+.4f} high, "
                f"{self.low_utilization_delta[worst]:+.4f} low)",
                f"  verdict: {'improves' if self.improves else 'does not improve'}"
                " the baseline",
            ]
        )


def utilization_deltas(
    capacities: np.ndarray,
    baseline: Evaluation,
    variant_high_loads: np.ndarray,
    variant_low_loads: np.ndarray,
    baseline_high_loads: Optional[np.ndarray] = None,
    baseline_low_loads: Optional[np.ndarray] = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-class and total utilization deltas in the intact link space.

    Args:
        capacities: Intact-network link capacities.
        baseline: Baseline evaluation (intact link space).
        variant_high_loads: Variant high-priority loads, intact indexing
            (failure callers project degraded loads back first).
        variant_low_loads: Variant low-priority loads, intact indexing.
        baseline_high_loads: Override for the baseline loads (defaults
            to ``baseline.high_loads``).
        baseline_low_loads: Override for the baseline low loads.

    Returns:
        ``(high_delta, low_delta, total_delta)`` arrays.
    """
    base_high = (
        baseline_high_loads if baseline_high_loads is not None else baseline.high_loads
    )
    base_low = (
        baseline_low_loads if baseline_low_loads is not None else baseline.low_loads
    )
    high_delta = (variant_high_loads - base_high) / capacities
    low_delta = (variant_low_loads - base_low) / capacities
    return high_delta, low_delta, high_delta + low_delta
