"""Power-law topology generator (Barabási–Albert preferential attachment).

The paper uses "the preferential attachment model [21] to emulate the
power-law degree distribution observed in the Internet topology"
(Section 5.1.1).  Its power-law instance has 30 nodes and 162 directed
links, matching Barabási–Albert with attachment parameter ``m = 3`` over
``m`` initially isolated seed nodes: ``(30 - 3) * 3 = 81`` duplex edges.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.determinism import default_rng
from repro.network.graph import Network
from repro.network.link import DEFAULT_CAPACITY_MBPS
from repro.network.topology_random import DEFAULT_DELAY_RANGE_MS


def powerlaw_topology(
    num_nodes: int = 30,
    attachment: int = 3,
    rng: Optional[random.Random] = None,
    capacity_mbps: float = DEFAULT_CAPACITY_MBPS,
    delay_range_ms: tuple[float, float] = DEFAULT_DELAY_RANGE_MS,
    name: str = "powerlaw",
) -> Network:
    """Generate a preferential-attachment topology.

    Each arriving node connects to ``attachment`` distinct existing nodes
    chosen with probability proportional to their current degree (uniformly
    while all seeds still have degree zero).  Every attachment is a duplex
    adjacency, so the result has ``(num_nodes - attachment) * attachment``
    duplex edges — 81 for the paper's 30-node, 162-link instance.

    Args:
        num_nodes: Total node count (paper: 30).
        attachment: Links added per arriving node, ``m`` in [21] (paper: 3).
        rng: Source of randomness; a fresh unseeded one is created if omitted.
        capacity_mbps: Capacity assigned to every link (paper: 500 Mb/s).
        delay_range_ms: Uniform range for per-adjacency propagation delay.
        name: Name recorded on the returned network.

    Returns:
        A strongly connected :class:`Network` with heavy-tailed degrees.
    """
    if attachment < 1:
        raise ValueError(f"attachment must be >= 1, got {attachment}")
    if num_nodes <= attachment:
        raise ValueError(
            f"num_nodes ({num_nodes}) must exceed attachment ({attachment})"
        )
    rng = rng or default_rng("network/topology_powerlaw")
    lo, hi = delay_range_ms
    if lo < 0 or hi < lo:
        raise ValueError(f"invalid delay range {delay_range_ms}")

    net = Network(num_nodes, name=name)
    repeated: list[int] = []
    targets = list(range(attachment))
    for new_node in range(attachment, num_nodes):
        for t in targets:
            delay = rng.uniform(lo, hi)
            net.add_duplex_link(new_node, t, capacity_mbps=capacity_mbps, prop_delay_ms=delay)
        repeated.extend(targets)
        repeated.extend([new_node] * attachment)
        targets = _sample_distinct(repeated, attachment, rng)
    return net


def _sample_distinct(pool: list[int], count: int, rng: random.Random) -> list[int]:
    """Sample ``count`` distinct values from ``pool`` (degree-weighted)."""
    chosen: set[int] = set()
    while len(chosen) < count:
        chosen.add(pool[rng.randrange(len(pool))])
    return list(chosen)
