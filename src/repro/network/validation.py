"""Structural validation for networks used in experiments."""

from __future__ import annotations

from repro.network.graph import Network


class NetworkValidationError(ValueError):
    """Raised when a network fails a structural sanity check."""


def validate_network(
    net: Network,
    require_strongly_connected: bool = True,
    require_duplex: bool = True,
) -> None:
    """Check a network is usable by the routing and cost engines.

    Args:
        net: Network to validate.
        require_strongly_connected: Every demand must be routable, which in
            destination-based SPF routing needs strong connectivity.
        require_duplex: The paper's topologies are all duplex; forwarding
            and reverse-direction sink traffic assume it.

    Raises:
        NetworkValidationError: describing the first violated property.
    """
    if net.num_links == 0:
        raise NetworkValidationError("network has no links")
    if require_strongly_connected and not net.is_strongly_connected():
        raise NetworkValidationError("network is not strongly connected")
    if require_duplex:
        for link in net.links:
            if not net.has_link(link.dst, link.src):
                raise NetworkValidationError(
                    f"link {link.src}->{link.dst} has no reverse direction"
                )
    for node in net.nodes():
        if net.degree(node) == 0:
            raise NetworkValidationError(f"node {node} has no outgoing links")
