"""Topology statistics used to characterize experiment instances."""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass

import numpy as np

from repro.network.graph import Network


@dataclass(frozen=True)
class TopologyStats:
    """Structural summary of a network.

    Attributes:
        num_nodes: Node count.
        num_links: Directed link count.
        min_degree: Smallest out-degree.
        max_degree: Largest out-degree.
        mean_degree: Mean out-degree.
        diameter_hops: Longest shortest hop path between any pair.
        mean_path_hops: Mean shortest hop distance over all ordered pairs.
        degree_histogram: ``{degree: node count}``.
    """

    num_nodes: int
    num_links: int
    min_degree: int
    max_degree: int
    mean_degree: float
    diameter_hops: int
    mean_path_hops: float
    degree_histogram: dict[int, int]


def hop_distances_from(net: Network, source: int) -> list[int]:
    """BFS hop distance from ``source`` to every node (-1 if unreachable)."""
    dist = [-1] * net.num_nodes
    dist[source] = 0
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for nxt in net.neighbors(node):
            if dist[nxt] < 0:
                dist[nxt] = dist[node] + 1
                queue.append(nxt)
    return dist


def topology_stats(net: Network) -> TopologyStats:
    """Compute a :class:`TopologyStats` summary.

    Raises:
        ValueError: if the network is not strongly connected (diameter and
            mean path length would be undefined).
    """
    if not net.is_strongly_connected():
        raise ValueError("topology statistics require a strongly connected network")
    degrees = [net.degree(v) for v in net.nodes()]
    all_dists = []
    diameter = 0
    for source in net.nodes():
        dist = hop_distances_from(net, source)
        for target, d in enumerate(dist):
            if target != source:
                all_dists.append(d)
                diameter = max(diameter, d)
    return TopologyStats(
        num_nodes=net.num_nodes,
        num_links=net.num_links,
        min_degree=min(degrees),
        max_degree=max(degrees),
        mean_degree=float(np.mean(degrees)),
        diameter_hops=diameter,
        mean_path_hops=float(np.mean(all_dists)),
        degree_histogram=dict(sorted(Counter(degrees).items())),
    )


def degree_assortativity(net: Network) -> float:
    """Pearson correlation of endpoint degrees over directed links.

    Negative values are typical of preferential-attachment (hub-and-spoke)
    topologies; near zero of degree-balanced random graphs.
    """
    src_deg = [net.degree(link.src) for link in net.links]
    dst_deg = [net.degree(link.dst) for link in net.links]
    if len(set(src_deg)) == 1 or len(set(dst_deg)) == 1:
        return 0.0
    return float(np.corrcoef(src_deg, dst_deg)[0, 1])
