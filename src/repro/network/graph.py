"""Directed network graph used by routing, traffic, and cost modules."""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.network.link import DEFAULT_CAPACITY_MBPS, Link


class Network:
    """A directed multigraph-free network ``G = (V, E)``.

    Nodes are integers ``0 .. num_nodes - 1``.  Links are directed and at
    most one link may exist per ordered node pair.  Duplex (bidirectional)
    connections are represented by two directed links, which is how the
    paper counts links (e.g. the ISP topology has 16 nodes and 70 directed
    links = 35 duplex adjacencies).

    The class exposes numpy views (capacities, delays, endpoint arrays) that
    the routing and cost engines consume; these views are cached and the
    cache is invalidated whenever a link is added.
    """

    def __init__(self, num_nodes: int, name: str = "network") -> None:
        if num_nodes < 2:
            raise ValueError(f"a network needs at least 2 nodes, got {num_nodes}")
        self._num_nodes = int(num_nodes)
        self.name = name
        self._links: list[Link] = []
        self._out: list[list[int]] = [[] for _ in range(num_nodes)]
        self._in: list[list[int]] = [[] for _ in range(num_nodes)]
        self._by_endpoints: dict[tuple[int, int], int] = {}
        self._cache: dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_link(
        self,
        src: int,
        dst: int,
        capacity_mbps: float = DEFAULT_CAPACITY_MBPS,
        prop_delay_ms: float = 1.0,
    ) -> Link:
        """Add a directed link and return it.

        Raises:
            ValueError: if either endpoint is out of range or a link between
                ``src`` and ``dst`` already exists.
        """
        self._check_node(src)
        self._check_node(dst)
        if (src, dst) in self._by_endpoints:
            raise ValueError(f"link {src}->{dst} already exists")
        link = Link(
            index=len(self._links),
            src=src,
            dst=dst,
            capacity_mbps=capacity_mbps,
            prop_delay_ms=prop_delay_ms,
        )
        self._links.append(link)
        self._out[src].append(link.index)
        self._in[dst].append(link.index)
        self._by_endpoints[(src, dst)] = link.index
        self._cache.clear()
        return link

    def add_duplex_link(
        self,
        u: int,
        v: int,
        capacity_mbps: float = DEFAULT_CAPACITY_MBPS,
        prop_delay_ms: float = 1.0,
    ) -> tuple[Link, Link]:
        """Add both directions between ``u`` and ``v`` with identical attributes."""
        forward = self.add_link(u, v, capacity_mbps, prop_delay_ms)
        backward = self.add_link(v, u, capacity_mbps, prop_delay_ms)
        return forward, backward

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes ``|V|``."""
        return self._num_nodes

    @property
    def num_links(self) -> int:
        """Number of directed links ``|E|``."""
        return len(self._links)

    @property
    def links(self) -> tuple[Link, ...]:
        """All links, ordered by index."""
        return tuple(self._links)

    def nodes(self) -> range:
        """Iterate node identifiers ``0 .. num_nodes - 1``."""
        return range(self._num_nodes)

    def link(self, index: int) -> Link:
        """Return the link with the given index."""
        return self._links[index]

    def out_links(self, node: int) -> list[Link]:
        """Links whose source is ``node``."""
        self._check_node(node)
        return [self._links[i] for i in self._out[node]]

    def in_links(self, node: int) -> list[Link]:
        """Links whose destination is ``node``."""
        self._check_node(node)
        return [self._links[i] for i in self._in[node]]

    def out_link_indices(self, node: int) -> list[int]:
        """Indices of links whose source is ``node`` (no copy of Link objects)."""
        return self._out[node]

    def in_link_indices(self, node: int) -> list[int]:
        """Indices of links whose destination is ``node``."""
        return self._in[node]

    def link_between(self, src: int, dst: int) -> Optional[Link]:
        """The directed link ``src -> dst`` or ``None`` if absent."""
        idx = self._by_endpoints.get((src, dst))
        return None if idx is None else self._links[idx]

    def has_link(self, src: int, dst: int) -> bool:
        """Whether the directed link ``src -> dst`` exists."""
        return (src, dst) in self._by_endpoints

    def degree(self, node: int) -> int:
        """Out-degree of ``node``; equals in-degree for duplex-built topologies."""
        self._check_node(node)
        return len(self._out[node])

    def undirected_degree(self, node: int) -> int:
        """Number of distinct neighbors of ``node`` in either direction."""
        self._check_node(node)
        neighbors = {self._links[i].dst for i in self._out[node]}
        neighbors.update(self._links[i].src for i in self._in[node])
        return len(neighbors)

    def neighbors(self, node: int) -> list[int]:
        """Out-neighbors of ``node``, in link-insertion order."""
        self._check_node(node)
        return [self._links[i].dst for i in self._out[node]]

    def duplex_pairs(self) -> list[tuple[int, int]]:
        """Unordered node pairs ``(u, v)`` with ``u < v`` connected in both directions."""
        pairs = []
        for (src, dst) in self._by_endpoints:
            if src < dst and (dst, src) in self._by_endpoints:
                pairs.append((src, dst))
        return sorted(pairs)

    # ------------------------------------------------------------------
    # Numpy views (cached)
    # ------------------------------------------------------------------
    def capacities(self) -> np.ndarray:
        """Per-link capacity vector (Mb/s), indexed by link index."""
        return self._cached("capacities", lambda: np.array([l.capacity_mbps for l in self._links], dtype=float))

    def prop_delays(self) -> np.ndarray:
        """Per-link propagation delay vector (ms), indexed by link index."""
        return self._cached("prop_delays", lambda: np.array([l.prop_delay_ms for l in self._links], dtype=float))

    def link_sources(self) -> np.ndarray:
        """Per-link source-node vector, indexed by link index."""
        return self._cached("srcs", lambda: np.array([l.src for l in self._links], dtype=np.int64))

    def link_destinations(self) -> np.ndarray:
        """Per-link destination-node vector, indexed by link index."""
        return self._cached("dsts", lambda: np.array([l.dst for l in self._links], dtype=np.int64))

    def reverse_csr_structure(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """CSR structure of the reversed graph, for repeated Dijkstra calls.

        Returns ``(indptr, indices, perm)`` such that
        ``csr_matrix((weights[perm], indices, indptr))`` is the transpose
        of the weighted adjacency matrix.  The structure depends only on
        the topology, so callers swap in new weight data without paying
        sparse-matrix construction on every shortest-path computation.
        """
        if "rev_indptr" not in self._cache:
            srcs = self.link_sources()
            dsts = self.link_destinations()
            perm = np.lexsort((srcs, dsts))
            counts = np.bincount(dsts, minlength=self._num_nodes)
            self._cache["rev_perm"] = perm
            self._cache["rev_indices"] = srcs[perm]
            self._cache["rev_indptr"] = np.concatenate(
                ([0], np.cumsum(counts))
            ).astype(np.int64)
        return (
            self._cache["rev_indptr"],
            self._cache["rev_indices"],
            self._cache["rev_perm"],
        )

    def forward_csr_structure(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-source grouping of link indices, for SoA DAG assembly.

        Returns ``(indptr, perm)``: ``perm`` lists link indices grouped
        by source node (ascending link index within each source — the
        stable sort preserves insertion order) and
        ``perm[indptr[u]:indptr[u+1]]`` are node ``u``'s out-links.
        Like :meth:`reverse_csr_structure`, the structure depends only on
        the topology and is cached.
        """
        if "fwd_indptr" not in self._cache:
            srcs = self.link_sources()
            counts = np.bincount(srcs, minlength=self._num_nodes)
            self._cache["fwd_perm"] = np.argsort(srcs, kind="stable")
            self._cache["fwd_indptr"] = np.concatenate(
                ([0], np.cumsum(counts))
            ).astype(np.int64)
        return self._cache["fwd_indptr"], self._cache["fwd_perm"]

    def weight_matrix(self, weights: Iterable[float]) -> np.ndarray:
        """Dense ``num_nodes x num_nodes`` matrix of link weights.

        Missing links hold ``inf``.  Used to feed scipy's Dijkstra.
        """
        w = np.asarray(list(weights) if not isinstance(weights, np.ndarray) else weights, dtype=float)
        if w.shape != (self.num_links,):
            raise ValueError(f"expected {self.num_links} weights, got shape {w.shape}")
        if np.any(w <= 0):
            raise ValueError("link weights must be positive")
        mat = np.full((self._num_nodes, self._num_nodes), np.inf)
        mat[self.link_sources(), self.link_destinations()] = w
        return mat

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    def is_strongly_connected(self) -> bool:
        """Whether every node can reach every other node along directed links."""
        if self.num_links == 0:
            return False
        return self._reaches_all(self._out) and self._reaches_all(self._in)

    def copy(self) -> "Network":
        """Deep copy of the network."""
        dup = Network(self._num_nodes, name=self.name)
        for link in self._links:
            dup.add_link(link.src, link.dst, link.capacity_mbps, link.prop_delay_ms)
        return dup

    def __repr__(self) -> str:
        return f"Network(name={self.name!r}, nodes={self._num_nodes}, links={self.num_links})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Network):
            return NotImplemented
        return (
            self._num_nodes == other._num_nodes
            and [l.endpoints for l in self._links] == [l.endpoints for l in other._links]
            and np.allclose(self.capacities(), other.capacities())
            and np.allclose(self.prop_delays(), other.prop_delays())
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_node(self, node: int) -> None:
        if not 0 <= node < self._num_nodes:
            raise ValueError(f"node {node} outside range [0, {self._num_nodes})")

    def _reaches_all(self, adjacency: list[list[int]]) -> bool:
        seen = [False] * self._num_nodes
        stack = [0]
        seen[0] = True
        count = 1
        attr = "dst" if adjacency is self._out else "src"
        while stack:
            node = stack.pop()
            for link_idx in adjacency[node]:
                nxt = getattr(self._links[link_idx], attr)
                if not seen[nxt]:
                    seen[nxt] = True
                    count += 1
                    stack.append(nxt)
        return count == self._num_nodes

    def _cached(self, key: str, build) -> np.ndarray:
        if key not in self._cache:
            self._cache[key] = build()
        return self._cache[key]
