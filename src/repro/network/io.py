"""JSON persistence for :class:`~repro.network.graph.Network`."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Union

from repro.ioutil import atomic_write_json
from repro.network.graph import Network

FORMAT_VERSION = 1


def network_to_dict(net: Network) -> dict[str, Any]:
    """Serialize a network to a JSON-compatible dictionary."""
    return {
        "format_version": FORMAT_VERSION,
        "name": net.name,
        "num_nodes": net.num_nodes,
        "links": [
            {
                "src": link.src,
                "dst": link.dst,
                "capacity_mbps": link.capacity_mbps,
                "prop_delay_ms": link.prop_delay_ms,
            }
            for link in net.links
        ],
    }


def network_from_dict(data: dict[str, Any]) -> Network:
    """Rebuild a network from :func:`network_to_dict` output.

    Raises:
        ValueError: on unknown format version or malformed payloads.
    """
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported network format version: {version!r}")
    net = Network(int(data["num_nodes"]), name=str(data.get("name", "network")))
    for entry in data["links"]:
        net.add_link(
            int(entry["src"]),
            int(entry["dst"]),
            capacity_mbps=float(entry["capacity_mbps"]),
            prop_delay_ms=float(entry["prop_delay_ms"]),
        )
    return net


def save_network(net: Network, path: Union[str, Path]) -> None:
    """Write a network to ``path`` as JSON."""
    atomic_write_json(path, network_to_dict(net), indent=2)


def load_network(path: Union[str, Path]) -> Network:
    """Read a network previously written by :func:`save_network`."""
    return network_from_dict(json.loads(Path(path).read_text()))
