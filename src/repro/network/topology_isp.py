"""North-American ISP backbone topology (16 nodes, 70 directed links).

The paper evaluates an "ISP topology: emulating a North American backbone
network consisting of 16 nodes and 70 links", with per-link propagation
delays "between 8 ms and 15 ms ... based on the geographical locations of
the corresponding nodes" (Section 5.1.1).  The authors did not publish the
instance, so this module hand-builds an equivalent backbone: 16 real
points of presence, 35 duplex adjacencies (70 directed links), and delays
derived from great-circle distance linearly mapped into the paper's
[8 ms, 15 ms] range.
"""

from __future__ import annotations

import math

from repro.network.graph import Network
from repro.network.link import DEFAULT_CAPACITY_MBPS

ISP_CITIES: tuple[tuple[str, float, float], ...] = (
    ("Seattle", 47.61, -122.33),
    ("Sunnyvale", 37.37, -122.04),
    ("LosAngeles", 34.05, -118.24),
    ("SaltLakeCity", 40.76, -111.89),
    ("Denver", 39.74, -104.99),
    ("Dallas", 32.78, -96.80),
    ("Houston", 29.76, -95.37),
    ("KansasCity", 39.10, -94.58),
    ("Minneapolis", 44.98, -93.27),
    ("Chicago", 41.88, -87.63),
    ("Indianapolis", 39.77, -86.16),
    ("Atlanta", 33.75, -84.39),
    ("Miami", 25.76, -80.19),
    ("WashingtonDC", 38.91, -77.04),
    ("NewYork", 40.71, -74.01),
    ("Boston", 42.36, -71.06),
)
"""Point-of-presence name and (latitude, longitude) for each ISP node."""

ISP_ADJACENCIES: tuple[tuple[int, int], ...] = (
    (0, 1), (0, 3), (0, 4), (0, 8), (0, 9),
    (1, 2), (1, 3), (1, 4), (1, 5),
    (2, 3), (2, 5), (2, 6),
    (3, 4),
    (4, 5), (4, 7), (4, 9),
    (5, 6), (5, 7), (5, 11),
    (6, 11), (6, 12),
    (7, 8), (7, 9), (7, 10),
    (8, 9),
    (9, 10), (9, 14),
    (10, 11), (10, 13),
    (11, 12), (11, 13),
    (12, 13),
    (13, 14), (13, 15),
    (14, 15),
)
"""The 35 duplex adjacencies (70 directed links) of the backbone."""

ISP_DELAY_RANGE_MS = (8.0, 15.0)
"""Propagation-delay range the paper assigns to ISP links."""

_EARTH_RADIUS_KM = 6371.0


def great_circle_km(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Haversine great-circle distance between two (lat, lon) points in km."""
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlam = math.radians(lon2 - lon1)
    a = math.sin(dphi / 2) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlam / 2) ** 2
    return 2 * _EARTH_RADIUS_KM * math.asin(math.sqrt(a))


def isp_link_delays_ms() -> dict[tuple[int, int], float]:
    """Per-adjacency propagation delay, distances mapped linearly into [8, 15] ms."""
    distances = {}
    for u, v in ISP_ADJACENCIES:
        _, lat1, lon1 = ISP_CITIES[u]
        _, lat2, lon2 = ISP_CITIES[v]
        distances[(u, v)] = great_circle_km(lat1, lon1, lat2, lon2)
    dmin = min(distances.values())
    dmax = max(distances.values())
    lo, hi = ISP_DELAY_RANGE_MS
    span = dmax - dmin
    return {
        edge: lo + (hi - lo) * ((dist - dmin) / span if span > 0 else 0.0)
        for edge, dist in distances.items()
    }


def isp_topology(capacity_mbps: float = DEFAULT_CAPACITY_MBPS, name: str = "isp") -> Network:
    """Build the 16-node, 70-directed-link North-American ISP backbone.

    Args:
        capacity_mbps: Capacity for every link (paper: 500 Mb/s).
        name: Name recorded on the returned network.

    Returns:
        A strongly connected :class:`Network` with geographically derived
        propagation delays in [8 ms, 15 ms].
    """
    net = Network(len(ISP_CITIES), name=name)
    delays = isp_link_delays_ms()
    for (u, v) in ISP_ADJACENCIES:
        net.add_duplex_link(u, v, capacity_mbps=capacity_mbps, prop_delay_ms=delays[(u, v)])
    return net


def isp_city_name(node: int) -> str:
    """Human-readable city name for an ISP node id."""
    return ISP_CITIES[node][0]
