"""Network model substrate: directed graphs, links, and topology generators.

The paper models the network as a directed graph ``G = (V, E)`` where every
link has a capacity ``C_ij`` (Mb/s) and, for the SLA-based cost function, a
propagation delay ``p_l`` (ms).  This package provides the graph container
(:class:`~repro.network.graph.Network`), the three topology families used in
the evaluation (random, power-law, ISP backbone), JSON persistence, and
structural validation helpers.
"""

from repro.network.graph import Network
from repro.network.link import Link
from repro.network.topology_isp import isp_topology
from repro.network.topology_powerlaw import powerlaw_topology
from repro.network.topology_random import random_topology
from repro.network.io import network_from_dict, network_to_dict, load_network, save_network
from repro.network.validation import validate_network
from repro.network.failures import (
    FailureScenario,
    count_critical_adjacencies,
    remove_adjacency,
    single_failure_scenarios,
)
from repro.network.stats import TopologyStats, degree_assortativity, topology_stats

__all__ = [
    "FailureScenario",
    "remove_adjacency",
    "single_failure_scenarios",
    "count_critical_adjacencies",
    "TopologyStats",
    "topology_stats",
    "degree_assortativity",
    "Network",
    "Link",
    "random_topology",
    "powerlaw_topology",
    "isp_topology",
    "network_to_dict",
    "network_from_dict",
    "save_network",
    "load_network",
    "validate_network",
]
