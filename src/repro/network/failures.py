"""Link-failure modeling.

The related work the paper builds on (Nucci et al. [5], the MTR-resilience
line [7-9]) evaluates weight settings under link failures: when a link (in
IP practice, a whole duplex adjacency) fails, OSPF re-floods and every
router re-runs SPF over the surviving links with *unchanged* weights.
This module produces those degraded networks and weight vectors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.network.graph import Network


@dataclass(frozen=True)
class FailureScenario:
    """A degraded network after one duplex adjacency failed.

    Attributes:
        failed_pair: The ``(u, v)`` adjacency that failed (``u < v``).
        network: The surviving network (both directions removed).
        surviving_links: Original link indices that survive, in the order
            they appear in the degraded network.
    """

    failed_pair: tuple[int, int]
    network: Network
    surviving_links: tuple[int, ...]

    def project_weights(self, weights: Sequence[int]) -> np.ndarray:
        """Restrict a full weight vector to the surviving links."""
        weights = np.asarray(weights)
        return weights[list(self.surviving_links)]

    def project_loads_back(self, loads: np.ndarray, num_links: int) -> np.ndarray:
        """Expand degraded-network loads to full link indexing (failed links = 0).

        Args:
            loads: Per-link loads over the degraded network.
            num_links: Link count of the original intact network.
        """
        if len(loads) != len(self.surviving_links):
            raise ValueError(
                f"expected {len(self.surviving_links)} loads, got {len(loads)}"
            )
        full = np.zeros(num_links)
        full[list(self.surviving_links)] = loads
        return full


def remove_adjacency(net: Network, u: int, v: int) -> FailureScenario:
    """Build the network that survives the failure of adjacency ``(u, v)``.

    Raises:
        ValueError: if the adjacency does not exist in both directions.
    """
    if not (net.has_link(u, v) and net.has_link(v, u)):
        raise ValueError(f"no duplex adjacency between {u} and {v}")
    degraded = Network(net.num_nodes, name=f"{net.name}-fail-{u}-{v}")
    surviving = []
    for link in net.links:
        if (link.src, link.dst) in ((u, v), (v, u)):
            continue
        degraded.add_link(link.src, link.dst, link.capacity_mbps, link.prop_delay_ms)
        surviving.append(link.index)
    return FailureScenario(
        failed_pair=(min(u, v), max(u, v)),
        network=degraded,
        surviving_links=tuple(surviving),
    )


def single_failure_scenarios(
    net: Network, require_connected: bool = True
) -> Iterator[FailureScenario]:
    """Yield one :class:`FailureScenario` per duplex adjacency.

    Args:
        net: The intact network.
        require_connected: Skip failures that disconnect the network
            (traffic to/from the cut-off part cannot be routed at all, so
            cost comparisons are not meaningful there).
    """
    for u, v in net.duplex_pairs():
        scenario = remove_adjacency(net, u, v)
        if require_connected and not scenario.network.is_strongly_connected():
            continue
        yield scenario


def count_critical_adjacencies(net: Network) -> int:
    """Number of duplex adjacencies whose failure disconnects the network."""
    critical = 0
    for u, v in net.duplex_pairs():
        if not remove_adjacency(net, u, v).network.is_strongly_connected():
            critical += 1
    return critical
