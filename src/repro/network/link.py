"""Directed link with capacity and propagation delay."""

from __future__ import annotations

from dataclasses import dataclass

DEFAULT_CAPACITY_MBPS = 500.0
"""All link capacities in the paper's evaluation are 500 Mb/s (Section 5.1.1)."""


@dataclass(frozen=True)
class Link:
    """A unidirectional network link.

    Attributes:
        index: Position of this link in the owning network's link list.
            Link-indexed vectors (weights, loads, costs) use this index.
        src: Source node identifier (0-based).
        dst: Destination node identifier (0-based).
        capacity_mbps: Link capacity in Mb/s; must be positive.
        prop_delay_ms: One-way propagation delay in milliseconds; must be
            non-negative.
    """

    index: int
    src: int
    dst: int
    capacity_mbps: float = DEFAULT_CAPACITY_MBPS
    prop_delay_ms: float = 1.0

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"link index must be non-negative, got {self.index}")
        if self.src == self.dst:
            raise ValueError(f"self-loop at node {self.src} is not allowed")
        if self.src < 0 or self.dst < 0:
            raise ValueError(f"node ids must be non-negative, got ({self.src}, {self.dst})")
        if self.capacity_mbps <= 0:
            raise ValueError(f"capacity must be positive, got {self.capacity_mbps}")
        if self.prop_delay_ms < 0:
            raise ValueError(f"propagation delay must be non-negative, got {self.prop_delay_ms}")

    @property
    def endpoints(self) -> tuple[int, int]:
        """Return the ``(src, dst)`` pair."""
        return (self.src, self.dst)

    def reversed_endpoints(self) -> tuple[int, int]:
        """Return the ``(dst, src)`` pair of the opposite direction."""
        return (self.dst, self.src)

    def __str__(self) -> str:
        return (
            f"Link#{self.index} {self.src}->{self.dst} "
            f"{self.capacity_mbps:g}Mbps {self.prop_delay_ms:g}ms"
        )
