"""Lightweight span tracing: nested timed sections exported as JSONL.

A span is a ``with obs.span("evaluate", attrs={...})`` context manager:
entering pushes it on a thread-local stack (so children record their
parent's id), exiting records a JSONL line through a shared
:class:`repro.ioutil.JsonlAppender` (one persistent handle, locked,
monotonic ``seq``).  Timing is ``perf_counter`` only — offsets from the
tracer's start, never wall clock (rule RL002's contract extends here:
trace files are diagnostics, but they still must not tempt anyone into
result-visible wall-clock reads).

Tracing is **off by default**: :func:`span` returns a shared no-op
context manager when no tracer is installed, so instrumented code pays
one module-level check per span.  Enable with :func:`enable_tracing`
(the ``serve --trace`` flag and ``REPRO_TRACE`` env var do this).

Trace records are out-of-band telemetry (lint rule RL006): they never
flow into canonical result payloads.

Record schema (one JSON object per line, keys sorted)::

    {"seq": int,        # appender-assigned, monotonic per file
     "span": int,       # process-unique span id
     "parent": int|null,# enclosing span's id on this thread
     "name": str,
     "start_s": float,  # perf_counter offset from tracer start
     "dur_ms": float,
     "pid": int,
     "thread": int,
     "attrs": {...}}    # caller-supplied, JSON-safe
"""

from __future__ import annotations

import os
import threading
from time import perf_counter
from typing import Optional, Union

from repro.ioutil import JsonlAppender


class _NullSpan:
    """The disabled path: a shared, stateless, reentrant no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def set(self, **attrs) -> None:
        """Accept (and drop) late attributes."""


_NULL_SPAN = _NullSpan()


class _Span:
    __slots__ = ("tracer", "name", "attrs", "span_id", "parent_id", "_start")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = 0
        self.parent_id: Optional[int] = None
        self._start = 0.0

    def set(self, **attrs) -> None:
        """Attach attributes after entry (e.g. a result size)."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_Span":
        tracer = self.tracer
        self.span_id = tracer._next_id()
        stack = tracer._stack()
        self.parent_id = stack[-1] if stack else None
        stack.append(self.span_id)
        self._start = perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        end = perf_counter()
        stack = self.tracer._stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        self.tracer._record(self, self._start, end)


class Tracer:
    """Writes span records to one JSONL file.

    Safe to share across threads: span ids come from a locked counter,
    the per-thread nesting stack is thread-local, and the appender
    serializes writes.
    """

    def __init__(self, path) -> None:
        self._writer = JsonlAppender(path)
        self._id_lock = threading.Lock()
        self._next = 0
        self._local = threading.local()
        self._epoch = perf_counter()
        self.path = self._writer.path

    def _next_id(self) -> int:
        with self._id_lock:
            self._next += 1
            return self._next

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def span(self, name: str, attrs: Optional[dict] = None) -> _Span:
        return _Span(self, name, dict(attrs) if attrs else {})

    def _record(self, span: _Span, start: float, end: float) -> None:
        self._writer.append(
            {
                "span": span.span_id,
                "parent": span.parent_id,
                "name": span.name,
                "start_s": start - self._epoch,
                "dur_ms": (end - start) * 1e3,
                "pid": os.getpid(),
                "thread": threading.get_ident(),
                "attrs": span.attrs,
            }
        )

    def close(self) -> None:
        self._writer.close()


class _TracerState:
    __slots__ = ("tracer",)

    def __init__(self) -> None:
        self.tracer: Optional[Tracer] = None


_tracer_state = _TracerState()


def enable_tracing(path) -> Tracer:
    """Install a process-wide tracer writing JSONL spans to ``path``."""
    disable_tracing()
    tracer = Tracer(path)
    _tracer_state.tracer = tracer
    return tracer


def disable_tracing() -> None:
    """Close and remove the process-wide tracer (idempotent)."""
    tracer = _tracer_state.tracer
    _tracer_state.tracer = None
    if tracer is not None:
        tracer.close()


def tracing_enabled() -> bool:
    return _tracer_state.tracer is not None


def get_tracer() -> Optional[Tracer]:
    return _tracer_state.tracer


def span(name: str, attrs: Optional[dict] = None, **kw_attrs) -> Union[_Span, _NullSpan]:
    """A timed span on the process tracer, or a shared no-op when
    tracing is off.  ``attrs`` and keyword attributes merge."""
    tracer = _tracer_state.tracer
    if tracer is None:
        return _NULL_SPAN
    merged = dict(attrs) if attrs else {}
    if kw_attrs:
        merged.update(kw_attrs)
    return tracer.span(name, merged)


def _init_from_env() -> None:
    """Honor ``REPRO_TRACE=<path>`` at import (spawn workers inherit it)."""
    path = os.environ.get("REPRO_TRACE")
    if path:
        enable_tracing(path)
