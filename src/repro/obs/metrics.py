"""Thread-safe metrics instruments: counters, gauges, histograms.

The registry is the unit of isolation: a :class:`MetricsRegistry` owns a
set of named instruments and hands them out get-or-create style, so
instrumented code never keeps module-global mutable state of its own.
Process-wide layers (evaluator, routing kernels, sweep engines) register
on the module-level default registry; the serve tier gives each
component its **own** registry so two services in one process never
share counters (the serve tests assert exact counts).

Exactness contract: every mutation takes the instrument's lock — a bare
``+=`` is not atomic under free-threading and is only incidentally so
under the GIL — so N threads doing M increments each always total
``N * M`` (``tests/test_obs_metrics.py`` tortures exactly this).

Overhead contract: when telemetry is disabled (:func:`set_enabled`),
``inc``/``set``/``observe`` return after one attribute check — no lock,
no arithmetic — keeping the disabled path near zero cost (gated by
``benchmarks/test_bench_obs.py``).

Telemetry is **out-of-band**: nothing in this module may flow into
canonical result payloads or ``canonical_body`` bytes (lint rule RL006).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, Iterable, Optional, Tuple

LabelItems = Tuple[Tuple[str, str], ...]

DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)
"""Default histogram upper bounds, in seconds: spans sub-millisecond
kernel calls through multi-second sweeps.  ``+Inf`` is implicit."""

SIZE_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)
"""Bucket bounds for size-shaped histograms (batch sizes, row counts)."""


class _State:
    """The process-wide enable switch (attribute read = the fast path)."""

    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = True


_state = _State()


def set_enabled(on: bool) -> None:
    """Globally enable/disable all instrument mutations (default: on)."""
    _state.enabled = bool(on)


def enabled() -> bool:
    """Whether instrument mutations currently record anything."""
    return _state.enabled


def _label_items(labels: Optional[dict]) -> LabelItems:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing float counter."""

    kind = "counter"
    __slots__ = ("name", "help", "labels", "_lock", "_value")

    def __init__(self, name: str, help: str = "", labels: LabelItems = ()) -> None:
        self.name = name
        self.help = help
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if not _state.enabled:
            return
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def sample(self) -> dict:
        return {"value": self.value}


class Gauge:
    """A value that can go up and down (occupancy, last-seen iteration)."""

    kind = "gauge"
    __slots__ = ("name", "help", "labels", "_lock", "_value")

    def __init__(self, name: str, help: str = "", labels: LabelItems = ()) -> None:
        self.name = name
        self.help = help
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        if not _state.enabled:
            return
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if not _state.enabled:
            return
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def sample(self) -> dict:
        return {"value": self.value}


class Histogram:
    """A fixed-bound cumulative histogram (Prometheus semantics).

    ``bounds`` are inclusive upper bounds; the implicit ``+Inf`` bucket
    catches the rest.  ``observe`` is O(log buckets) via bisect, under
    the instrument lock so ``sum``/``count``/bucket totals always agree.
    """

    kind = "histogram"
    __slots__ = ("name", "help", "labels", "bounds", "_lock", "_counts", "_sum", "_count")

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: LabelItems = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        self.name = name
        self.help = help
        self.labels = labels
        self.bounds = bounds
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)  # last slot = +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        if not _state.enabled:
            return
        value = float(value)
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def sample(self) -> dict:
        """A consistent snapshot: cumulative bucket counts + sum + count."""
        with self._lock:
            counts = list(self._counts)
            total, acc = self._sum, self._count
        cumulative = []
        running = 0
        for c in counts[:-1]:
            running += c
            cumulative.append(running)
        return {
            "buckets": [
                {"le": bound, "count": cum}
                for bound, cum in zip(self.bounds, cumulative)
            ],
            "sum": total,
            "count": acc,
        }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Get-or-create home for named instruments.

    Keyed on ``(name, sorted label items)``; asking for an existing key
    with a different instrument kind raises, so a name can never flip
    type mid-run.  ``snapshot`` reads every instrument under its own
    lock and returns plain JSON-safe dicts in sorted order —
    deterministic output for the CLI and the Prometheus renderer.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[Tuple[str, LabelItems], object] = {}

    def _get_or_create(self, kind: str, name: str, help: str, labels: Optional[dict], **kwargs):
        key = (name, _label_items(labels))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is not None:
                if instrument.kind != kind:
                    raise ValueError(
                        f"instrument {name!r} already registered as "
                        f"{instrument.kind}, not {kind}"
                    )
                return instrument
            instrument = _KINDS[kind](name, help=help, labels=key[1], **kwargs)
            self._instruments[key] = instrument
            return instrument

    def counter(self, name: str, help: str = "", labels: Optional[dict] = None) -> Counter:
        return self._get_or_create("counter", name, help, labels)

    def gauge(self, name: str, help: str = "", labels: Optional[dict] = None) -> Gauge:
        return self._get_or_create("gauge", name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Optional[dict] = None,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create("histogram", name, help, labels, buckets=buckets)

    def instruments(self) -> list:
        """All instruments, sorted by (name, labels) — a stable order."""
        with self._lock:
            values = list(self._instruments.values())
        return sorted(values, key=lambda i: (i.name, i.labels))

    def snapshot(self) -> list[dict]:
        """JSON-safe samples of every instrument, in sorted order."""
        out = []
        for instrument in self.instruments():
            out.append(
                {
                    "name": instrument.name,
                    "type": instrument.kind,
                    "help": instrument.help,
                    "labels": dict(instrument.labels),
                    **instrument.sample(),
                }
            )
        return out

    def clear(self) -> None:
        """Drop every instrument (test isolation)."""
        with self._lock:
            self._instruments.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._instruments)


REGISTRY = MetricsRegistry()
"""The process-wide default registry (evaluator, kernels, sweeps, search)."""


def counter(name: str, help: str = "", labels: Optional[dict] = None) -> Counter:
    """Get-or-create a counter on the default registry."""
    return REGISTRY.counter(name, help=help, labels=labels)


def gauge(name: str, help: str = "", labels: Optional[dict] = None) -> Gauge:
    """Get-or-create a gauge on the default registry."""
    return REGISTRY.gauge(name, help=help, labels=labels)


def histogram(
    name: str,
    help: str = "",
    labels: Optional[dict] = None,
    buckets: Iterable[float] = DEFAULT_BUCKETS,
) -> Histogram:
    """Get-or-create a histogram on the default registry."""
    return REGISTRY.histogram(name, help=help, labels=labels, buckets=buckets)


def snapshot() -> list[dict]:
    """Snapshot of the default registry."""
    return REGISTRY.snapshot()
