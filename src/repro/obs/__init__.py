"""``repro.obs`` — dependency-free telemetry: metrics, spans, exposition.

Three pieces, all stdlib:

* :mod:`repro.obs.metrics` — thread-safe counters / gauges / histograms
  in get-or-create registries; a process-wide default registry plus
  per-component private ones (the serve tier isolates per service).
* :mod:`repro.obs.trace` — ``obs.span("evaluate", attrs=...)`` context
  managers with ``perf_counter`` timing, parent/child nesting, and JSONL
  export; off by default, enabled by ``serve --trace`` / ``REPRO_TRACE``.
* :mod:`repro.obs.prometheus` — text exposition render + strict parse.

The hard invariant (lint rule **RL006**): telemetry is out-of-band.
No value originating here may flow into canonical result payloads or
``canonical_body`` bytes — every differential bit-identity suite passes
unchanged with tracing enabled, and ``set_enabled(False)`` reduces every
instrument mutation to one attribute check.
"""

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    REGISTRY,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    enabled,
    gauge,
    histogram,
    set_enabled,
    snapshot,
)
from repro.obs.prometheus import parse_prometheus_text, render_prometheus
from repro.obs.trace import (
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    span,
    tracing_enabled,
)
from repro.obs.trace import _init_from_env as _trace_init_from_env

__all__ = [
    "DEFAULT_BUCKETS",
    "REGISTRY",
    "SIZE_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Tracer",
    "counter",
    "disable_tracing",
    "enable_tracing",
    "enabled",
    "gauge",
    "get_tracer",
    "histogram",
    "parse_prometheus_text",
    "render_prometheus",
    "set_enabled",
    "snapshot",
    "span",
    "tracing_enabled",
]

_trace_init_from_env()
