"""Prometheus text exposition: render registry snapshots, parse them back.

The renderer turns :meth:`MetricsRegistry.snapshot` output into the
text format version 0.0.4 a Prometheus server scrapes: ``# HELP`` /
``# TYPE`` headers per metric family, ``{label="value"}`` sample lines,
histograms expanded into cumulative ``_bucket{le=...}`` series plus
``_sum`` and ``_count``.  Counter names carry their ``_total`` suffix in
the instrument name itself (the repo-wide naming convention), so the
renderer never rewrites names.

The parser is the renderer's inverse — deliberately strict, because the
obs-smoke CI job and the unit tests use it to *prove* the exposition is
well-formed: unknown line shapes raise instead of being skipped.
"""

from __future__ import annotations

from typing import Iterable

_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}


def _escape_label(value: str) -> str:
    return "".join(_ESCAPES.get(ch, ch) for ch in value)


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    as_int = int(value)
    if value == as_int:
        return str(as_int)
    return repr(value)


def _label_block(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label(str(val))}"' for key, val in sorted(labels.items())
    )
    return "{" + inner + "}"


def render_prometheus(samples: Iterable[dict]) -> str:
    """Render snapshot entries (possibly from several registries) as
    Prometheus text exposition.

    Entries sharing a name form one metric family: the ``# HELP`` /
    ``# TYPE`` header is emitted once, followed by every labeled sample.
    A name appearing with two different types raises — the same
    invariant :class:`MetricsRegistry` enforces within one registry,
    extended across merged snapshots.
    """
    families: dict[str, dict] = {}
    order: list[str] = []
    for entry in samples:
        name = entry["name"]
        family = families.get(name)
        if family is None:
            family = {"type": entry["type"], "help": entry.get("help", ""), "entries": []}
            families[name] = family
            order.append(name)
        elif family["type"] != entry["type"]:
            raise ValueError(
                f"metric {name!r} rendered as both {family['type']} and {entry['type']}"
            )
        family["entries"].append(entry)

    lines: list[str] = []
    for name in sorted(order):
        family = families[name]
        help_text = family["help"].replace("\\", "\\\\").replace("\n", "\\n")
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {family['type']}")
        for entry in sorted(family["entries"], key=lambda e: sorted(e["labels"].items())):
            labels = entry["labels"]
            if family["type"] == "histogram":
                cumulative = 0
                for bucket in entry["buckets"]:
                    cumulative = bucket["count"]
                    le_labels = {**labels, "le": _format_value(float(bucket["le"]))}
                    lines.append(
                        f"{name}_bucket{_label_block(le_labels)} {cumulative}"
                    )
                inf_labels = {**labels, "le": "+Inf"}
                lines.append(f"{name}_bucket{_label_block(inf_labels)} {entry['count']}")
                lines.append(f"{name}_sum{_label_block(labels)} {_format_value(entry['sum'])}")
                lines.append(f"{name}_count{_label_block(labels)} {entry['count']}")
            else:
                lines.append(f"{name}{_label_block(labels)} {_format_value(entry['value'])}")
    return "\n".join(lines) + "\n"


def _parse_labels(block: str) -> dict:
    labels: dict[str, str] = {}
    i = 0
    while i < len(block):
        eq = block.index("=", i)
        key = block[i:eq].strip().lstrip(",").strip()
        if block[eq + 1] != '"':
            raise ValueError(f"label value for {key!r} is not quoted")
        j = eq + 2
        out = []
        while j < len(block):
            ch = block[j]
            if ch == "\\":
                nxt = block[j + 1]
                out.append({"\\": "\\", '"': '"', "n": "\n"}[nxt])
                j += 2
                continue
            if ch == '"':
                break
            out.append(ch)
            j += 1
        else:
            raise ValueError("unterminated label value")
        labels[key] = "".join(out)
        i = j + 1
    return labels


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    return float(text)


def parse_prometheus_text(text: str) -> dict[str, dict]:
    """Parse a text exposition into ``{family: {type, help, samples}}``.

    ``samples`` is a list of ``{"name", "labels", "value"}`` — histogram
    series keep their ``_bucket``/``_sum``/``_count`` sample names but
    group under the family name their ``# TYPE`` header declared.
    Raises ``ValueError`` on malformed lines (strict by design: this is
    the CI job's validity check).
    """
    families: dict[str, dict] = {}
    current: str | None = None
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            families.setdefault(name, {"type": None, "help": "", "samples": []})
            families[name]["help"] = help_text
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            if kind not in {"counter", "gauge", "histogram"}:
                raise ValueError(f"unknown metric type {kind!r} for {name!r}")
            families.setdefault(name, {"type": None, "help": "", "samples": []})
            families[name]["type"] = kind
            current = name
            continue
        if line.startswith("#"):
            continue
        # Sample line: name[{labels}] value
        if "{" in line:
            name = line[: line.index("{")]
            rest = line[line.index("{") + 1 :]
            close = rest.rindex("}")
            labels = _parse_labels(rest[:close])
            value_text = rest[close + 1 :].strip()
        else:
            name, _, value_text = line.partition(" ")
            labels = {}
            value_text = value_text.strip()
        if not value_text:
            raise ValueError(f"sample line without a value: {raw!r}")
        family = current
        if family is None or not (
            name == family or name.startswith(family + "_")
        ):
            # A sample outside its family's TYPE header block.
            matches = [
                f for f in families
                if name == f or name.startswith(f + "_")
            ]
            if not matches:
                raise ValueError(f"sample {name!r} has no # TYPE header")
            family = max(matches, key=len)
        families[family]["samples"].append(
            {"name": name, "labels": labels, "value": _parse_value(value_text)}
        )
    for name, family in families.items():
        if family["type"] is None:
            raise ValueError(f"family {name!r} has samples but no # TYPE header")
    return families
