"""Cost functions: Fortz-Thorup load cost, SLA penalty, and joint cost.

Implements the paper's Section 3: the piecewise-linear load cost Phi
(Eq. 1), the residual-capacity model ``C~ = max(C - H, 0)`` induced by
strict priority queueing, the load-based objective ``A = <Phi_H, Phi_L>``
(Eq. 2), the SLA delay model (Eq. 3) with penalty ``Lambda`` (Eq. 4) and
objective ``S = <Lambda, Phi_L>`` (Eq. 5), and the joint scalar cost
``J = alpha * Phi_H + Phi_L`` discussed in Section 3.3.1.
"""

from repro.costs.fortz import (
    FORTZ_SEGMENTS,
    fortz_cost,
    fortz_cost_vector,
    fortz_segment_index,
)
from repro.costs.residual import residual_capacities
from repro.costs.load_cost import LoadCostEvaluation, evaluate_load_cost
from repro.costs.sla import SlaCostEvaluation, SlaParams, evaluate_sla_cost, link_delays_ms
from repro.costs.joint import joint_cost

__all__ = [
    "FORTZ_SEGMENTS",
    "fortz_cost",
    "fortz_cost_vector",
    "fortz_segment_index",
    "residual_capacities",
    "LoadCostEvaluation",
    "evaluate_load_cost",
    "SlaParams",
    "SlaCostEvaluation",
    "evaluate_sla_cost",
    "link_delays_ms",
    "joint_cost",
]
