"""Fortz-Thorup piecewise-linear link cost (paper Eq. 1).

The cost of carrying load ``x`` on a link of capacity ``C`` is the
piecewise-linear convex function with slopes 1, 3, 10, 70, 500, 5000 on the
utilization intervals split at 1/3, 2/3, 9/10, 1, 11/10 — the classic
approximation of M/M/1 queueing delay from Fortz-Thorup.  Because the
function is convex and every segment is affine in ``(x, C)``, it is
evaluated as a maximum of affine functions, which also handles the
zero-capacity residual links that arise when high-priority traffic consumes
a link entirely (any positive load then costs ``5000 * x``).
"""

from __future__ import annotations

from typing import Union

import numpy as np

FORTZ_SEGMENTS: tuple[tuple[float, float], ...] = (
    (1.0, 0.0),
    (3.0, 2.0 / 3.0),
    (10.0, 16.0 / 3.0),
    (70.0, 178.0 / 3.0),
    (500.0, 1468.0 / 3.0),
    (5000.0, 16318.0 / 3.0),
)
"""``(slope, intercept)`` pairs: segment cost is ``slope * x - intercept * C``."""

FORTZ_BREAKPOINTS: tuple[float, ...] = (1.0 / 3.0, 2.0 / 3.0, 9.0 / 10.0, 1.0, 11.0 / 10.0)
"""Utilization values where the active segment changes."""

_SLOPES = np.array([s for s, _ in FORTZ_SEGMENTS])
_INTERCEPTS = np.array([b for _, b in FORTZ_SEGMENTS])


def fortz_cost(load: float, capacity: float) -> float:
    """Cost of carrying ``load`` on a link of ``capacity`` (Eq. 1).

    Args:
        load: Link load, >= 0 (Mb/s).
        capacity: Link capacity, >= 0 (Mb/s); zero capacity is allowed and
            prices any positive load at the steepest slope.

    Returns:
        The piecewise-linear cost; ``0.0`` for zero load.
    """
    if load < 0:
        raise ValueError(f"load must be non-negative, got {load}")
    if capacity < 0:
        raise ValueError(f"capacity must be non-negative, got {capacity}")
    if load == 0:
        return 0.0
    return float(np.max(_SLOPES * load - _INTERCEPTS * capacity))


def fortz_cost_vector(
    loads: Union[np.ndarray, list], capacities: Union[np.ndarray, list]
) -> np.ndarray:
    """Vectorized :func:`fortz_cost` over aligned load/capacity vectors."""
    loads = np.asarray(loads, dtype=float)
    capacities = np.asarray(capacities, dtype=float)
    if loads.shape != capacities.shape:
        raise ValueError(f"shape mismatch: loads {loads.shape} vs capacities {capacities.shape}")
    if np.any(loads < 0):
        raise ValueError("loads must be non-negative")
    if np.any(capacities < 0):
        raise ValueError("capacities must be non-negative")
    costs = np.max(
        _SLOPES[:, None] * loads[None, :] - _INTERCEPTS[:, None] * capacities[None, :],
        axis=0,
    )
    costs[loads == 0] = 0.0
    return costs


def fortz_segment_index(load: float, capacity: float) -> int:
    """Index (0-5) of the active cost segment for ``load`` on ``capacity``.

    Segment 0 covers utilization up to 1/3, segment 5 covers utilization
    above 11/10.  Zero-capacity links are always in segment 5.
    """
    if capacity <= 0:
        return len(FORTZ_SEGMENTS) - 1
    utilization = load / capacity
    for idx, breakpoint in enumerate(FORTZ_BREAKPOINTS):
        if utilization <= breakpoint:
            return idx
    return len(FORTZ_SEGMENTS) - 1
