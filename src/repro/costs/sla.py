"""SLA-based lexicographic objective ``S = <Lambda, Phi_L>`` (paper Section 3.2).

The mean link delay seen by high-priority traffic is modeled per Eq. 3 as

    ``D_l = s / C_l * (Phi_{H,l} / C_l + 1) + p_l``

where ``s`` is the mean packet size, ``p_l`` the propagation delay, and
``Phi_{H,l} / C_l`` approximates the M/M/1 term ``H_l / (C_l - H_l)`` [18].
Each high-priority pair ``(s, t)`` with mean end-to-end delay
``xi(s, t)`` above the SLA bound ``theta`` contributes a penalty
``a + b * (xi - theta)`` (Eq. 4, with a = 100, b = 1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.lexicographic import LexCost
from repro.costs.fortz import fortz_cost_vector
from repro.costs.residual import residual_capacities
from repro.network.graph import Network
from repro.routing.state import Routing
from repro.traffic.matrix import TrafficMatrix

PACKET_SIZE_BITS = 12000.0
"""Mean packet size ``s``: 1500 bytes."""


@dataclass(frozen=True)
class SlaParams:
    """SLA penalty parameters (paper defaults: theta=25 ms, a=100, b=1)."""

    theta_ms: float = 25.0
    penalty_const: float = 100.0
    penalty_per_ms: float = 1.0
    packet_size_bits: float = PACKET_SIZE_BITS

    def __post_init__(self) -> None:
        if self.theta_ms <= 0:
            raise ValueError(f"SLA bound theta must be positive, got {self.theta_ms}")
        if self.penalty_const < 0 or self.penalty_per_ms < 0:
            raise ValueError("penalty parameters must be non-negative")
        if self.packet_size_bits <= 0:
            raise ValueError("packet size must be positive")

    def relaxed(self, epsilon: float) -> "SlaParams":
        """A copy with the delay bound loosened to ``(1 + epsilon) * theta``."""
        if epsilon < 0:
            raise ValueError(f"epsilon must be non-negative, got {epsilon}")
        return SlaParams(
            theta_ms=self.theta_ms * (1.0 + epsilon),
            penalty_const=self.penalty_const,
            penalty_per_ms=self.penalty_per_ms,
            packet_size_bits=self.packet_size_bits,
        )

    def pair_penalty(self, delay_ms: float) -> float:
        """Penalty ``Lambda_(s,t)`` for one pair with end-to-end delay ``delay_ms``."""
        if delay_ms <= self.theta_ms:
            return 0.0
        return self.penalty_const + self.penalty_per_ms * (delay_ms - self.theta_ms)


def link_delays_ms(
    net: Network,
    high_loads: np.ndarray,
    per_link_high_cost: np.ndarray,
    packet_size_bits: float = PACKET_SIZE_BITS,
) -> np.ndarray:
    """Per-link mean delay for high-priority packets (Eq. 3), in ms.

    Capacities are in Mb/s, so transmission time of one packet is
    ``packet_size_bits / (capacity * 1e6)`` seconds, converted to ms.
    """
    capacities = net.capacities()
    transmission_ms = packet_size_bits / (capacities * 1e6) * 1e3
    queueing_factor = per_link_high_cost / capacities + 1.0
    return transmission_ms * queueing_factor + net.prop_delays()


@dataclass(frozen=True)
class SlaCostEvaluation:
    """Result of one SLA-cost evaluation.

    Attributes:
        penalty: Total SLA penalty ``Lambda``.
        phi_low: Low-priority load cost ``Phi_L`` against residual capacity.
        violations: Number of high-priority pairs exceeding the bound.
        pair_delays_ms: Mean end-to-end delay ``xi(s, t)`` per high-priority
            pair, keyed by ``(s, t)``.
        link_delays: Per-link high-priority delay ``D_l`` in ms.
        per_link_low: Per-link ``Phi_{L,l}``.
        high_loads: Per-link high-priority load.
        low_loads: Per-link low-priority load.
        residual: Per-link residual capacity.
        utilization: Per-link total utilization.
        params: The SLA parameters used.
    """

    penalty: float
    phi_low: float
    violations: int
    pair_delays_ms: dict[tuple[int, int], float]
    link_delays: np.ndarray
    per_link_low: np.ndarray
    high_loads: np.ndarray
    low_loads: np.ndarray
    residual: np.ndarray
    utilization: np.ndarray
    params: SlaParams

    @property
    def objective(self) -> LexCost:
        """The lexicographic objective ``S = <Lambda, Phi_L>``."""
        return LexCost(self.penalty, self.phi_low)

    @property
    def average_utilization(self) -> float:
        """Mean total link utilization."""
        return float(np.mean(self.utilization))

    @property
    def max_utilization(self) -> float:
        """Largest total link utilization."""
        return float(np.max(self.utilization))

    @property
    def worst_delay_ms(self) -> float:
        """Largest mean end-to-end delay over high-priority pairs."""
        return max(self.pair_delays_ms.values()) if self.pair_delays_ms else 0.0

    def high_link_sort_keys(self) -> list[LexCost]:
        """Per-link lexicographic cost ``L_l = <D_l, Phi_{L,l}>`` used by FindH."""
        return [LexCost(d, l) for d, l in zip(self.link_delays, self.per_link_low)]

    def low_link_sort_keys(self) -> np.ndarray:
        """Per-link cost ``Phi_{L,l}`` used by FindL."""
        return self.per_link_low


def sla_cost_from_loads(
    net: Network,
    high_loads: np.ndarray,
    low_loads: np.ndarray,
    high_traffic: TrafficMatrix,
    pair_fractions,
    params: SlaParams = SlaParams(),
) -> SlaCostEvaluation:
    """The SLA-based cost of already-computed per-link class loads.

    The single source of the Eq. 3-5 costing pass, shared by
    :func:`evaluate_sla_cost` (routed loads) and
    ``Session.scaled_traffic`` (rescaled loads), so the delay/penalty
    formula cannot diverge between evaluation paths.

    Args:
        net: The network.
        high_loads: Per-link high-priority loads.
        low_loads: Per-link low-priority loads.
        high_traffic: High-priority traffic matrix (its pairs incur the
            per-pair penalties).
        pair_fractions: ``(s, t) -> per-link flow-fraction vector`` over
            the high-priority routing's ECMP paths.
        params: SLA bound and penalty parameters.
    """
    capacities = net.capacities()
    residual = residual_capacities(capacities, high_loads)
    per_link_high = fortz_cost_vector(high_loads, capacities)
    per_link_low = fortz_cost_vector(low_loads, residual)
    delays = link_delays_ms(net, high_loads, per_link_high, params.packet_size_bits)

    pair_delays: dict[tuple[int, int], float] = {}
    penalty = 0.0
    violations = 0
    for s, t, _rate in high_traffic.pairs():
        xi = float(pair_fractions(s, t) @ delays)
        pair_delays[(s, t)] = xi
        pair_penalty = params.pair_penalty(xi)
        if pair_penalty > 0:
            violations += 1
            penalty += pair_penalty

    return SlaCostEvaluation(
        penalty=penalty,
        phi_low=float(per_link_low.sum()),
        violations=violations,
        pair_delays_ms=pair_delays,
        link_delays=delays,
        per_link_low=per_link_low,
        high_loads=high_loads,
        low_loads=low_loads,
        residual=residual,
        utilization=(high_loads + low_loads) / capacities,
        params=params,
    )


def evaluate_sla_cost(
    net: Network,
    high_routing: Routing,
    low_routing: Routing,
    high_traffic: TrafficMatrix,
    low_traffic: TrafficMatrix,
    params: SlaParams = SlaParams(),
) -> SlaCostEvaluation:
    """Evaluate the SLA-based cost of a (possibly dual) routing.

    End-to-end delay of a pair is the flow-fraction-weighted sum of link
    delays over its ECMP paths in the high-priority topology.

    Args:
        net: The network.
        high_routing: Routing of the high-priority class.
        low_routing: Routing of the low-priority class (same object for STR).
        high_traffic: High-priority traffic matrix ``T_H``.
        low_traffic: Low-priority traffic matrix ``T_L``.
        params: SLA bound and penalty parameters.

    Returns:
        A :class:`SlaCostEvaluation`.
    """
    return sla_cost_from_loads(
        net,
        high_routing.link_loads(high_traffic),
        low_routing.link_loads(low_traffic),
        high_traffic,
        high_routing.pair_link_fractions,
        params=params,
    )
