"""Residual capacity under strict priority queueing.

With a two-priority queueing scheme the high-priority queue is always
served first, so the low-priority class only sees the capacity left over:
``C~_l = max(C_l - H_l, 0)`` (paper Section 3).
"""

from __future__ import annotations

import numpy as np


def residual_capacities(capacities: np.ndarray, high_loads: np.ndarray) -> np.ndarray:
    """Per-link residual capacity seen by low-priority traffic.

    Args:
        capacities: Per-link capacities (Mb/s).
        high_loads: Per-link high-priority loads (Mb/s).

    Returns:
        ``max(capacity - high_load, 0)`` per link.
    """
    capacities = np.asarray(capacities, dtype=float)
    high_loads = np.asarray(high_loads, dtype=float)
    if capacities.shape != high_loads.shape:
        raise ValueError(
            f"shape mismatch: capacities {capacities.shape} vs loads {high_loads.shape}"
        )
    if np.any(high_loads < 0):
        raise ValueError("high-priority loads must be non-negative")
    return np.maximum(capacities - high_loads, 0.0)
