"""Joint scalar cost ``J = alpha * Phi_H + Phi_L`` (paper Section 3.3.1).

The paper discusses — and rejects — collapsing the two class objectives
into a single weighted sum: no single ``alpha`` maintains priority
precedence across configurations, as the 3-node example (Fig. 1)
demonstrates.  The function below supports reproducing that analysis.
"""

from __future__ import annotations

from repro.costs.load_cost import LoadCostEvaluation


def joint_cost(evaluation: LoadCostEvaluation, alpha: float) -> float:
    """The joint cost ``J = alpha * Phi_H + Phi_L`` of a load-cost evaluation.

    Args:
        evaluation: A load-based evaluation (typically of an STR routing;
            with DTR each class routes independently and a joint cost has
            no role, per the paper's footnote 1).
        alpha: Non-negative trade-off multiplier on the high-priority cost.

    Returns:
        ``alpha * Phi_H + Phi_L``.
    """
    if alpha < 0:
        raise ValueError(f"alpha must be non-negative, got {alpha}")
    return alpha * evaluation.phi_high + evaluation.phi_low
