"""Load-based lexicographic objective ``A = <Phi_H, Phi_L>`` (paper Section 3.1)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.lexicographic import LexCost
from repro.costs.fortz import fortz_cost_vector
from repro.costs.residual import residual_capacities
from repro.network.graph import Network
from repro.routing.state import DemandsLike, Routing


@dataclass(frozen=True)
class LoadCostEvaluation:
    """Everything the search and the figures need from one load-cost evaluation.

    Attributes:
        phi_high: Total high-priority cost ``Phi_H = sum_l Phi_{H,l}``.
        phi_low: Total low-priority cost ``Phi_L`` against residual capacity.
        per_link_high: Per-link ``Phi_{H,l}``.
        per_link_low: Per-link ``Phi_{L,l}``.
        high_loads: Per-link high-priority load ``H_l``.
        low_loads: Per-link low-priority load ``L_l``.
        residual: Per-link residual capacity ``C~_l``.
        utilization: Per-link total utilization ``(H_l + L_l) / C_l``.
    """

    phi_high: float
    phi_low: float
    per_link_high: np.ndarray
    per_link_low: np.ndarray
    high_loads: np.ndarray
    low_loads: np.ndarray
    residual: np.ndarray
    utilization: np.ndarray

    @property
    def objective(self) -> LexCost:
        """The lexicographic objective ``A = <Phi_H, Phi_L>``."""
        return LexCost(self.phi_high, self.phi_low)

    @property
    def average_utilization(self) -> float:
        """Mean total link utilization (the paper's load reference ``AD``)."""
        return float(np.mean(self.utilization))

    @property
    def max_utilization(self) -> float:
        """Largest total link utilization."""
        return float(np.max(self.utilization))

    def high_link_sort_keys(self) -> list[LexCost]:
        """Per-link lexicographic cost ``L_l = <Phi_{H,l}, Phi_{L,l}>`` used by FindH."""
        return [LexCost(h, l) for h, l in zip(self.per_link_high, self.per_link_low)]

    def low_link_sort_keys(self) -> np.ndarray:
        """Per-link cost ``Phi_{L,l}`` used by FindL."""
        return self.per_link_low


def load_cost_from_loads(
    net: Network, high_loads: np.ndarray, low_loads: np.ndarray
) -> LoadCostEvaluation:
    """The load-based cost of already-computed per-link class loads.

    The single source of the Eq. 2 costing pass: high-priority loads are
    priced against full link capacity, low-priority loads against the
    residual capacity the priority queue leaves them.  Shared by
    :func:`evaluate_load_cost` (routed loads) and
    ``Session.scaled_traffic`` (rescaled loads), so the formula cannot
    diverge between evaluation paths.
    """
    capacities = net.capacities()
    residual = residual_capacities(capacities, high_loads)
    per_link_high = fortz_cost_vector(high_loads, capacities)
    per_link_low = fortz_cost_vector(low_loads, residual)
    return LoadCostEvaluation(
        phi_high=float(per_link_high.sum()),
        phi_low=float(per_link_low.sum()),
        per_link_high=per_link_high,
        per_link_low=per_link_low,
        high_loads=high_loads,
        low_loads=low_loads,
        residual=residual,
        utilization=(high_loads + low_loads) / capacities,
    )


def evaluate_load_cost(
    net: Network,
    high_routing: Routing,
    low_routing: Routing,
    high_traffic: DemandsLike,
    low_traffic: DemandsLike,
) -> LoadCostEvaluation:
    """Evaluate the load-based cost of a (possibly dual) routing.

    Args:
        net: The network.
        high_routing: Routing of the high-priority class.
        low_routing: Routing of the low-priority class (same object for STR).
        high_traffic: High-priority traffic matrix ``T_H``.
        low_traffic: Low-priority traffic matrix ``T_L``.

    Returns:
        A :class:`LoadCostEvaluation`.
    """
    return load_cost_from_loads(
        net,
        high_routing.link_loads(high_traffic),
        low_routing.link_loads(low_traffic),
    )
