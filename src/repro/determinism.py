"""Deterministic randomness: named, seed-derived RNG streams.

Every reproducibility proof in this repo — bit-identical incremental vs.
full evaluation, parallel-campaign byte-identity, serve responses
byte-equal to direct Session calls — assumes that *all* randomness flows
from :func:`derive_rng` streams and never from the module-level
``random`` functions, whose hidden global state is shared (and
reordered) across threads and campaign workers.  This module is the
canonical home of that contract; ``repro.eval.experiment`` re-exports
:func:`derive_rng` for compatibility.

The contract is machine-checked: rule **RL001** of the repo's AST linter
(:mod:`repro.analysis`, ``repro-dtr lint``) flags module-level
``random.*`` calls and unseeded ``random.Random()`` constructions.
Library functions that accept an optional ``rng`` default to
:func:`default_rng` so an omitted argument still yields a deterministic,
stream-isolated generator instead of silently tapping global state.
"""

from __future__ import annotations

import hashlib
import random

DEFAULT_STREAM_SEED = 0
"""Base seed of :func:`default_rng` — the library-default streams used
when a caller omits an explicit ``rng`` argument."""


def derive_rng(seed: int, stream: str) -> random.Random:
    """An independent, deterministic RNG for one named stream of a config.

    Every piece of randomness an experiment consumes comes from a
    ``random.Random`` derived here from ``(seed, stream)`` — never from
    the module-level ``random`` functions, whose hidden global state
    would be shared (and reordered) across campaign workers.  The
    derivation hashes with SHA-256 rather than ``hash()`` because string
    hashing is salted per interpreter: two worker processes must map the
    same config to the same stream bit-for-bit.
    """
    digest = hashlib.sha256(f"{seed}/{stream}".encode("utf-8")).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def default_rng(stream: str) -> random.Random:
    """The deterministic fallback RNG for one library-default stream.

    Used by functions whose ``rng`` parameter is optional: the fallback
    must not be an unseeded ``random.Random()`` (non-reproducible, and
    flagged by lint rule RL001), so each call site derives a fresh
    generator from :data:`DEFAULT_STREAM_SEED` and a stream name unique
    to that call site.  Two calls with the same stream name get equal
    but *independent* generator objects — no state is shared.
    """
    return derive_rng(DEFAULT_STREAM_SEED, stream)
