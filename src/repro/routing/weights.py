"""Link-weight vectors and helpers.

The paper restricts link weights to integers in ``[1, 30]`` (Section 5.1.3),
"a trade-off between the effectiveness of the resulting routing solutions
and computational complexity".
"""

from __future__ import annotations

import random
from typing import Iterable, Optional, Union

import numpy as np

from repro.determinism import default_rng

MIN_WEIGHT = 1
"""Smallest allowed link weight."""

MAX_WEIGHT = 30
"""Largest allowed link weight (paper Section 5.1.3)."""

WeightsLike = Union[np.ndarray, Iterable[float]]


def as_weight_array(weights: WeightsLike, num_links: int) -> np.ndarray:
    """Coerce ``weights`` to a validated, read-only integer numpy vector."""
    arr = np.asarray(weights)
    if arr.shape != (num_links,):
        raise ValueError(f"expected {num_links} weights, got shape {arr.shape}")
    if not np.all(np.equal(np.mod(arr, 1), 0)):
        raise ValueError("link weights must be integers")
    arr = arr.astype(np.int64)
    validate_weights(arr)
    arr = arr.copy()
    arr.setflags(write=False)
    return arr


def validate_weights(weights: np.ndarray, max_weight: int = MAX_WEIGHT) -> None:
    """Check all weights lie in ``[MIN_WEIGHT, max_weight]``.

    Raises:
        ValueError: on any out-of-range weight.
    """
    if np.any(weights < MIN_WEIGHT):
        raise ValueError(f"link weights must be >= {MIN_WEIGHT}")
    if np.any(weights > max_weight):
        raise ValueError(f"link weights must be <= {max_weight}")


def unit_weights(num_links: int) -> np.ndarray:
    """All-ones weight vector (pure hop-count routing)."""
    return np.ones(num_links, dtype=np.int64)


def random_weights(
    num_links: int,
    rng: Optional[random.Random] = None,
    min_weight: int = MIN_WEIGHT,
    max_weight: int = MAX_WEIGHT,
) -> np.ndarray:
    """Uniform random integer weights in ``[min_weight, max_weight]``."""
    if min_weight < MIN_WEIGHT or max_weight < min_weight:
        raise ValueError(f"invalid weight range [{min_weight}, {max_weight}]")
    rng = rng or default_rng("routing/weights")
    return np.array(
        [rng.randint(min_weight, max_weight) for _ in range(num_links)], dtype=np.int64
    )


def weights_key(weights: np.ndarray) -> bytes:
    """Hashable identity of a weight vector, for caching."""
    return np.ascontiguousarray(weights, dtype=np.int64).tobytes()
