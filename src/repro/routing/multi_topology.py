"""Multi-topology routing (MTR) substrate and its dual-topology special case.

RFC 4915-style MTR assigns each traffic class its own per-link weight
vector and therefore its own routing.  The paper's scheme — dual-topology
routing (DTR) — is the two-topology case: one topology for high-priority
traffic, one for low-priority traffic.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.network.graph import Network
from repro.routing.state import DemandsLike, Routing

HIGH_CLASS = "high"
LOW_CLASS = "low"


class MultiTopology:
    """A set of named routing topologies over one physical network.

    Each class label maps to its own link-weight vector; routings are
    computed lazily and cached.  Forwarding a packet of class ``c`` uses
    the next hops of topology ``c`` only — classes never mix topologies.
    """

    def __init__(self, net: Network, weights_by_class: Mapping[str, Iterable[float]]) -> None:
        if not weights_by_class:
            raise ValueError("at least one topology is required")
        self._net = net
        self._weights = {label: np.asarray(w) for label, w in weights_by_class.items()}
        self._routings: dict[str, Routing] = {}

    @property
    def network(self) -> Network:
        """The shared physical network."""
        return self._net

    @property
    def class_labels(self) -> tuple[str, ...]:
        """All configured traffic-class labels."""
        return tuple(self._weights)

    def weights(self, label: str) -> np.ndarray:
        """Link weights of topology ``label``."""
        self._check_label(label)
        return self._weights[label]

    def routing(self, label: str) -> Routing:
        """The (cached) routing of topology ``label``."""
        self._check_label(label)
        if label not in self._routings:
            self._routings[label] = Routing(self._net, self._weights[label])
        return self._routings[label]

    def link_loads(self, label: str, traffic: DemandsLike) -> np.ndarray:
        """Per-link loads of class ``label`` carrying ``traffic``."""
        return self.routing(label).link_loads(traffic)

    def total_loads(self, traffic_by_class: Mapping[str, DemandsLike]) -> np.ndarray:
        """Aggregate per-link loads across classes, each on its own topology."""
        loads = np.zeros(self._net.num_links)
        for label, traffic in traffic_by_class.items():
            loads += self.link_loads(label, traffic)
        return loads

    def next_hops(self, label: str, src: int, dst: int) -> list[int]:
        """ECMP next hops for class ``label`` from ``src`` toward ``dst``."""
        return self.routing(label).next_hops(src, dst)

    def _check_label(self, label: str) -> None:
        if label not in self._weights:
            raise KeyError(f"unknown traffic class {label!r}; have {sorted(self._weights)}")


class DualRouting(MultiTopology):
    """Dual-topology routing: high- and low-priority weight vectors.

    ``DualRouting(net, wh, wl)`` routes the high-priority class on ``wh``
    and the low-priority class on ``wl``.  Use :meth:`str_routing` for the
    degenerate single-topology (STR) case where both classes share weights.
    """

    def __init__(self, net: Network, high_weights: Iterable[float], low_weights: Iterable[float]) -> None:
        super().__init__(net, {HIGH_CLASS: high_weights, LOW_CLASS: low_weights})

    @classmethod
    def str_routing(cls, net: Network, weights: Iterable[float]) -> "DualRouting":
        """Single-topology routing: both classes routed on the same weights."""
        w = np.asarray(weights)
        return cls(net, w, w)

    @property
    def high(self) -> Routing:
        """Routing of the high-priority class."""
        return self.routing(HIGH_CLASS)

    @property
    def low(self) -> Routing:
        """Routing of the low-priority class."""
        return self.routing(LOW_CLASS)

    def is_single_topology(self) -> bool:
        """Whether both classes use identical weights (STR)."""
        return bool(np.array_equal(self.weights(HIGH_CLASS), self.weights(LOW_CLASS)))
