"""Shortest-path (OSPF-style) routing engine with ECMP splitting.

This package is the destination-based SPF forwarding substrate the paper
assumes: given a link-weight vector, traffic between each source-destination
pair follows all shortest paths, splitting evenly at every node over the
outgoing links that lie on a shortest path (the standard OSPF/ECMP load
model of Fortz-Thorup).  :class:`~repro.routing.state.Routing` snapshots one
weight setting; :class:`~repro.routing.multi_topology.MultiTopology` holds
several (the MTR substrate, of which dual-topology routing is the
two-topology case).
"""

from repro.routing.spf import (
    RoutingError,
    distances_to_all,
    distances_to_subset,
    distances_to_subsets_batched,
    shortest_path_dag_mask,
    shortest_path_dag_masks,
)
from repro.routing.soa import (
    DestinationDag,
    Schedule,
    accumulate_rows,
    build_destination_dags,
    build_schedule,
)
from repro.routing.state import Routing
from repro.routing.incremental import (
    WeightDelta,
    affected_destinations,
    derive_routing,
    derive_routings_batch,
    incremental_distances,
)
from repro.routing.multi_topology import DualRouting, MultiTopology
from repro.routing.forwarding import (
    ForwardingTable,
    PacketTrace,
    build_forwarding_table,
    empirical_link_usage,
    trace_many,
    trace_packet,
)
from repro.routing.weights import (
    MAX_WEIGHT,
    MIN_WEIGHT,
    as_weight_array,
    unit_weights,
    random_weights,
    validate_weights,
)

__all__ = [
    "ForwardingTable",
    "PacketTrace",
    "build_forwarding_table",
    "trace_packet",
    "trace_many",
    "empirical_link_usage",
    "Routing",
    "MultiTopology",
    "DualRouting",
    "RoutingError",
    "distances_to_all",
    "distances_to_subset",
    "distances_to_subsets_batched",
    "shortest_path_dag_mask",
    "shortest_path_dag_masks",
    "DestinationDag",
    "Schedule",
    "accumulate_rows",
    "build_destination_dags",
    "build_schedule",
    "WeightDelta",
    "affected_destinations",
    "derive_routing",
    "derive_routings_batch",
    "incremental_distances",
    "as_weight_array",
    "unit_weights",
    "random_weights",
    "validate_weights",
    "MIN_WEIGHT",
    "MAX_WEIGHT",
]
