"""Routing snapshot: one weight setting, its SP DAGs, and ECMP link loads."""

from __future__ import annotations

from typing import Iterable, Optional, Union

import numpy as np

from repro.network.graph import Network
from repro.routing.spf import (
    RoutingError,
    descending_distance_order,
    distances_to_all,
    shortest_path_dag_mask,
)
from repro.routing.weights import as_weight_array
from repro.traffic.matrix import TrafficMatrix

DemandsLike = Union[TrafficMatrix, np.ndarray]


class Routing:
    """Immutable routing state for a single link-weight vector.

    Computes (and caches) all-destination shortest-path distances, the
    per-destination shortest-path DAGs, ECMP link loads for any traffic
    matrix, and per-pair link flow fractions — the primitives every cost
    function in the paper needs.
    """

    def __init__(self, net: Network, weights: Iterable[float]) -> None:
        self._net = net
        self._weights = as_weight_array(weights, net.num_links)
        self._dist = distances_to_all(net, self._weights)
        self._dag_out: dict[int, list[list[int]]] = {}

    @classmethod
    def from_precomputed(
        cls,
        net: Network,
        weights: Iterable[float],
        dist: np.ndarray,
        dag_out: Optional[dict[int, list[list[int]]]] = None,
    ) -> "Routing":
        """Build a routing from an externally computed distance matrix.

        This is the constructor the incremental-SPF path uses
        (:func:`repro.routing.incremental.derive_routing`): ``dist`` must
        equal ``distances_to_all(net, weights)`` and ``dag_out`` may seed
        the per-destination DAG cache with entries that are known to be
        valid under ``weights`` (e.g. reused from a parent routing whose
        distance rows are unchanged).  No recomputation or validation is
        performed, so callers are responsible for consistency.
        """
        routing = cls.__new__(cls)
        routing._net = net
        routing._weights = as_weight_array(weights, net.num_links)
        routing._dist = dist
        routing._dag_out = dict(dag_out) if dag_out else {}
        return routing

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def network(self) -> Network:
        """The network this routing is computed over."""
        return self._net

    @property
    def weights(self) -> np.ndarray:
        """The (read-only) link weight vector."""
        return self._weights

    def distance(self, src: int, dst: int) -> float:
        """Shortest-path distance from ``src`` to ``dst`` (``inf`` if unreachable)."""
        return float(self._dist[dst, src])

    def distances_to(self, dst: int) -> np.ndarray:
        """Vector of shortest-path distances from every node to ``dst``."""
        return self._dist[dst]

    @property
    def distance_matrix(self) -> np.ndarray:
        """The full ``(num_nodes, num_nodes)`` matrix ``D[t, u] = dist(u, t)``.

        Treat as read-only: the matrix is shared with internal caches (and,
        on the incremental path, potentially with other routings).
        """
        return self._dist

    def dag_cache(self) -> dict[int, list[list[int]]]:
        """The per-destination SP DAG cache built so far (``dst -> out-links``).

        Exposed so the incremental-SPF path can reuse DAGs of destinations
        whose distance rows are unchanged; treat entries as read-only.
        """
        return self._dag_out

    def dag_out_links(self, dst: int) -> list[list[int]]:
        """Per-node outgoing link indices on the shortest-path DAG toward ``dst``."""
        cached = self._dag_out.get(dst)
        if cached is not None:
            return cached
        mask = shortest_path_dag_mask(self._net, self._weights, self._dist[dst])
        out: list[list[int]] = [[] for _ in range(self._net.num_nodes)]
        sources = self._net.link_sources()
        for link_idx in np.flatnonzero(mask):
            out[sources[link_idx]].append(int(link_idx))
        self._dag_out[dst] = out
        return out

    def next_hops(self, src: int, dst: int) -> list[int]:
        """ECMP next hops from ``src`` toward ``dst`` (empty if unreachable or src==dst)."""
        if src == dst:
            return []
        return [self._net.link(l).dst for l in self.dag_out_links(dst)[src]]

    # ------------------------------------------------------------------
    # Load model
    # ------------------------------------------------------------------
    def link_loads(self, traffic: DemandsLike) -> np.ndarray:
        """Per-link loads under even ECMP splitting of ``traffic``.

        For each destination ``t``, nodes are processed in order of
        decreasing distance to ``t``; each node's accumulated flow toward
        ``t`` (locally originated plus transit) splits evenly over its
        shortest-path DAG out-links.

        Args:
            traffic: Traffic matrix (or raw ``n x n`` demand array) in Mb/s.

        Returns:
            Vector of link loads (Mb/s), indexed by link index.

        Raises:
            RoutingError: if any positive demand has no path to its
                destination.
        """
        demands = self._demand_array(traffic)
        loads = np.zeros(self._net.num_links)
        link_dst = self._net.link_destinations()
        for t in np.flatnonzero(demands.sum(axis=0) > 0):
            self._accumulate_destination(int(t), demands[:, t], loads, link_dst)
        return loads

    def destination_link_loads(self, dst: int, injections: np.ndarray) -> np.ndarray:
        """Per-link loads contributed by traffic destined to ``dst`` alone.

        Args:
            dst: The destination node.
            injections: Per-node demand toward ``dst`` (column ``dst`` of a
                demand matrix), in Mb/s.

        Returns:
            Vector of link loads (Mb/s) such that summing the vectors of
            every destination reproduces :meth:`link_loads`.

        Raises:
            RoutingError: if any positive injection has no path to ``dst``.
        """
        row = np.zeros(self._net.num_links)
        self._accumulate_destination(dst, np.asarray(injections, dtype=float), row, self._net.link_destinations())
        return row

    def pair_link_fractions(self, src: int, dst: int) -> np.ndarray:
        """Fraction of the ``(src, dst)`` flow crossing each link.

        The fractions of the links out of any traversed node sum to the
        fraction entering that node, so path delay can be averaged as
        ``sum_l fraction(l) * delay(l)`` (delay is additive along paths and
        splitting is flow-proportional).

        Raises:
            RoutingError: if ``dst`` is unreachable from ``src``.
        """
        if src == dst:
            raise ValueError("src and dst must differ")
        dist = self._dist[dst]
        if not np.isfinite(dist[src]):
            raise RoutingError(f"node {dst} unreachable from node {src}")
        dag_out = self.dag_out_links(dst)
        node_frac = np.zeros(self._net.num_nodes)
        node_frac[src] = 1.0
        fractions = np.zeros(self._net.num_links)
        for u in descending_distance_order(dist):
            u = int(u)
            if node_frac[u] <= 0.0 or u == dst or dist[u] > dist[src]:
                continue
            out = dag_out[u]
            share = node_frac[u] / len(out)
            for link_idx in out:
                fractions[link_idx] += share
                node_frac[self._net.link(link_idx).dst] += share
        return fractions

    def average_hop_count(self, src: int, dst: int) -> float:
        """Mean number of hops of the ECMP flow from ``src`` to ``dst``."""
        return float(self.pair_link_fractions(src, dst).sum())

    def all_shortest_paths(self, src: int, dst: int, limit: int = 1000) -> list[list[int]]:
        """Enumerate shortest paths as node sequences (capped at ``limit``).

        Raises:
            RoutingError: if ``dst`` is unreachable from ``src``, or more
                than ``limit`` shortest paths exist.
        """
        if src == dst:
            return [[src]]
        if not np.isfinite(self._dist[dst, src]):
            raise RoutingError(f"node {dst} unreachable from node {src}")
        dag_out = self.dag_out_links(dst)
        paths: list[list[int]] = []
        stack: list[list[int]] = [[src]]
        while stack:
            path = stack.pop()
            node = path[-1]
            if node == dst:
                paths.append(path)
                if len(paths) > limit:
                    raise RoutingError(f"more than {limit} shortest paths for ({src}, {dst})")
                continue
            for link_idx in dag_out[node]:
                stack.append(path + [self._net.link(link_idx).dst])
        return sorted(paths)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _demand_array(self, traffic: DemandsLike) -> np.ndarray:
        demands = traffic.demands if isinstance(traffic, TrafficMatrix) else np.asarray(traffic, dtype=float)
        n = self._net.num_nodes
        if demands.shape != (n, n):
            raise ValueError(f"expected demands of shape ({n}, {n}), got {demands.shape}")
        return demands

    def _accumulate_destination(
        self,
        t: int,
        injections: np.ndarray,
        loads: np.ndarray,
        link_dst: np.ndarray,
    ) -> None:
        dist = self._dist[t]
        unreachable = ~np.isfinite(dist) & (injections > 0)
        if np.any(unreachable):
            bad = int(np.flatnonzero(unreachable)[0])
            raise RoutingError(f"node {t} unreachable from node {bad}")
        dag_out = self.dag_out_links(t)
        flow = injections.astype(float).copy()
        for u in descending_distance_order(dist):
            u = int(u)
            if u == t or flow[u] <= 0.0:
                continue
            out = dag_out[u]
            share = flow[u] / len(out)
            for link_idx in out:
                loads[link_idx] += share
                flow[link_dst[link_idx]] += share

    def __repr__(self) -> str:
        return f"Routing(net={self._net.name!r}, links={self._net.num_links})"
