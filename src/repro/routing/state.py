"""Routing snapshot: one weight setting, its SP DAGs, and ECMP link loads."""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Optional, Union

import numpy as np

from repro.network.graph import Network
from repro.routing.soa import (
    DestinationDag,
    Schedule,
    accumulate_rows,
    build_arrays_and_schedule,
    build_destination_dags,
    build_schedule,
    slice_destination_dags,
)
from repro.routing.spf import (
    RoutingError,
    descending_distance_order,
    distances_to_all,
    shortest_path_dag_mask,
)
from repro.routing.weights import as_weight_array
from repro.traffic.matrix import TrafficMatrix

DemandsLike = Union[TrafficMatrix, np.ndarray]

_PAIR_SCHEDULE_CAP = 64
"""Single-row pair-fraction schedules kept per routing (FIFO).  Bounds the
memory of long-lived memoized routings (the sweep engine keeps hundreds)
while covering every destination an SLA costing pass revisits."""

_DEST_SCHEDULE_CAP = 2
"""Multi-row destination schedules kept per routing (FIFO), keyed by the
requested destination list.  Two entries cover the evaluator's hot path —
the high and the low layer of one evaluation request rows for the same
active-destination list, so the second layer reuses the first layer's
compiled schedule — while keeping the worst case (two full-network
schedules) small next to the DAG cache itself."""


class Routing:
    """Immutable routing state for a single link-weight vector.

    Computes (and caches) all-destination shortest-path distances, the
    per-destination shortest-path DAGs, ECMP link loads for any traffic
    matrix, and per-pair link flow fractions — the primitives every cost
    function in the paper needs.

    Per-destination accumulation (:meth:`destination_rows`,
    :meth:`destination_link_loads`, :meth:`pair_link_fractions`) runs on
    the struct-of-arrays kernels of :mod:`repro.routing.soa` by default;
    ``vectorized=False`` keeps the scalar Python reference loop, which
    the kernels are bit-identical to (the cross-check the differential
    suites pin down).
    """

    def __init__(
        self, net: Network, weights: Iterable[float], vectorized: bool = True
    ) -> None:
        self._net = net
        self._weights = as_weight_array(weights, net.num_links)
        self._dist = distances_to_all(net, self._weights)
        self._dist.setflags(write=False)
        self._dag_out: dict[int, list[list[int]]] = {}
        self._dags: dict[int, DestinationDag] = {}
        self._pending_dags: Optional[tuple[list[int], tuple]] = None
        self._pair_schedules: OrderedDict[int, Schedule] = OrderedDict()
        self._dest_schedules: OrderedDict[bytes, Schedule] = OrderedDict()
        self._all_finite: Optional[bool] = None
        self._vectorized = bool(vectorized)

    @classmethod
    def from_precomputed(
        cls,
        net: Network,
        weights: Iterable[float],
        dist: np.ndarray,
        dag_out: Optional[dict[int, list[list[int]]]] = None,
        dags: Optional[dict[int, DestinationDag]] = None,
        vectorized: bool = True,
    ) -> "Routing":
        """Build a routing from an externally computed distance matrix.

        This is the constructor the incremental-SPF path uses
        (:func:`repro.routing.incremental.derive_routing`): ``dist`` must
        equal ``distances_to_all(net, weights)`` and ``dag_out`` /
        ``dags`` may seed the per-destination DAG caches with entries
        that are known to be valid under ``weights`` (e.g. reused from a
        parent routing whose distance rows are unchanged).  No
        recomputation or validation is performed, so callers are
        responsible for consistency.  ``dist`` is marked read-only: it is
        shared state from this point on.
        """
        routing = cls.__new__(cls)
        routing._net = net
        routing._weights = as_weight_array(weights, net.num_links)
        dist.setflags(write=False)
        routing._dist = dist
        routing._dag_out = dict(dag_out) if dag_out else {}
        routing._dags = dict(dags) if dags else {}
        routing._pending_dags = None
        routing._pair_schedules = OrderedDict()
        routing._dest_schedules = OrderedDict()
        routing._all_finite = None
        routing._vectorized = bool(vectorized)
        return routing

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def network(self) -> Network:
        """The network this routing is computed over."""
        return self._net

    @property
    def weights(self) -> np.ndarray:
        """The (read-only) link weight vector."""
        return self._weights

    @property
    def vectorized(self) -> bool:
        """Whether accumulation runs on the SoA kernels or the scalar loop."""
        return self._vectorized

    def distance(self, src: int, dst: int) -> float:
        """Shortest-path distance from ``src`` to ``dst`` (``inf`` if unreachable)."""
        return float(self._dist[dst, src])

    def distances_to(self, dst: int) -> np.ndarray:
        """Vector of shortest-path distances from every node to ``dst``."""
        return self._dist[dst]

    @property
    def distance_matrix(self) -> np.ndarray:
        """The full ``(num_nodes, num_nodes)`` matrix ``D[t, u] = dist(u, t)``.

        Read-only (``writeable=False``): the matrix is shared with
        internal caches and, on the incremental path, with other
        routings.
        """
        return self._dist

    def dag_cache(self) -> dict[int, list[list[int]]]:
        """The per-destination SP DAG cache built so far (``dst -> out-links``).

        Exposed so the incremental-SPF path can reuse DAGs of destinations
        whose distance rows are unchanged; treat entries as read-only.
        """
        return self._dag_out

    def soa_dag_cache(self) -> dict[int, DestinationDag]:
        """The CSR-form per-destination DAG cache (``dst -> DestinationDag``).

        The struct-of-arrays counterpart of :meth:`dag_cache`, shared the
        same way by :func:`repro.routing.incremental.derive_routing`;
        treat entries as read-only.
        """
        self._materialize_pending_dags()
        return self._dags

    def ensure_dags(self, dests) -> list[DestinationDag]:
        """CSR DAGs for ``dests``, building any missing ones in one batch."""
        self._materialize_pending_dags()
        missing = [t for t in dict.fromkeys(int(t) for t in dests) if t not in self._dags]
        if missing:
            dist_rows = self._dist[np.asarray(missing, dtype=np.int64)]
            built = build_destination_dags(self._net, self._weights, dist_rows, missing)
            for t, dag in zip(missing, built):
                self._dags[t] = dag
        return [self._dags[int(t)] for t in dests]

    def dag_out_links(self, dst: int) -> list[list[int]]:
        """Per-node outgoing link indices on the shortest-path DAG toward ``dst``."""
        cached = self._dag_out.get(dst)
        if cached is not None:
            return cached
        if self._vectorized:
            dag = self.ensure_dags([dst])[0]
            out = [
                dag.links[dag.indptr[u] : dag.indptr[u + 1]].tolist()
                for u in range(self._net.num_nodes)
            ]
        else:
            mask = shortest_path_dag_mask(self._net, self._weights, self._dist[dst])
            out = [[] for _ in range(self._net.num_nodes)]
            sources = self._net.link_sources()
            for link_idx in np.flatnonzero(mask):
                out[sources[link_idx]].append(int(link_idx))
        self._dag_out[dst] = out
        return out

    def next_hops(self, src: int, dst: int) -> list[int]:
        """ECMP next hops from ``src`` toward ``dst`` (empty if unreachable or src==dst)."""
        if src == dst:
            return []
        return [self._net.link(l).dst for l in self.dag_out_links(dst)[src]]

    # ------------------------------------------------------------------
    # Load model
    # ------------------------------------------------------------------
    def link_loads(self, traffic: DemandsLike) -> np.ndarray:
        """Per-link loads under even ECMP splitting of ``traffic``.

        For each destination ``t``, nodes are processed in order of
        decreasing distance to ``t``; each node's accumulated flow toward
        ``t`` (locally originated plus transit) splits evenly over its
        shortest-path DAG out-links.

        This entry point deliberately keeps the scalar reference loop in
        both modes: it interleaves per-destination additions into one
        shared accumulator, an addition grouping the row-based kernels
        cannot reproduce bitwise, and its exact bits feed
        :func:`repro.traffic.scaling.scale_to_utilization` (and through
        it every search trajectory).

        Args:
            traffic: Traffic matrix (or raw ``n x n`` demand array) in Mb/s.

        Returns:
            Vector of link loads (Mb/s), indexed by link index.

        Raises:
            RoutingError: if any positive demand has no path to its
                destination.
        """
        demands = self._demand_array(traffic)
        loads = np.zeros(self._net.num_links)
        link_dst = self._net.link_destinations()
        for t in np.flatnonzero(demands.sum(axis=0) > 0):
            self._accumulate_destination(int(t), demands[:, t], loads, link_dst)
        return loads

    def destination_rows(self, dests, injections: np.ndarray) -> np.ndarray:
        """Per-link load rows for many ``(destination, injection)`` pairs.

        Row ``i`` equals ``destination_link_loads(dests[i],
        injections[i])``; all rows are computed in one batched kernel
        pass when the routing is vectorized.

        Args:
            dests: Destination node per row (repeats allowed).
            injections: ``(len(dests), num_nodes)`` per-row demands
                toward the row's destination, in Mb/s.

        Returns:
            Matrix of shape ``(len(dests), num_links)``.

        Raises:
            RoutingError: if any positive injection has no path to its
                row's destination (reported for the first offending row,
                lowest node first — the scalar loop's error order).
        """
        dests = [int(t) for t in dests]
        k = len(dests)
        inj = np.asarray(injections, dtype=float)
        if inj.shape != (k, self._net.num_nodes):
            raise ValueError(
                f"expected injections of shape ({k}, {self._net.num_nodes}), "
                f"got {inj.shape}"
            )
        if k == 0:
            return np.empty((0, self._net.num_links))
        darr = np.asarray(dests, dtype=np.int64)
        if not self._reachable_from_everywhere():
            dist_rows = self._dist[darr]
            bad = ~np.isfinite(dist_rows) & (inj > 0)
            if bad.any():
                i, u = (int(x) for x in np.argwhere(bad)[0])
                raise RoutingError(f"node {dests[i]} unreachable from node {u}")
        if not self._vectorized:
            rows = np.zeros((k, self._net.num_links))
            link_dst = self._net.link_destinations()
            for i, t in enumerate(dests):
                self._accumulate_destination(t, inj[i], rows[i], link_dst)
            return rows
        key = darr.tobytes()
        schedule = self._dest_schedules.get(key)
        if schedule is None:
            net = self._net
            self._materialize_pending_dags()
            uncached = [t for t in dict.fromkeys(dests) if t not in self._dags]
            if len(uncached) == k:
                # No destination cached and no repeats: build the DAG
                # arrays and their schedule in one fused pass.  The
                # per-destination tuples are sliced out lazily — the
                # evaluator's load-mode passes only ever run the
                # schedule, so the slicing cost would be pure overhead
                # on the hottest path.
                if k == net.num_nodes and np.array_equal(darr, np.arange(k)):
                    dist_rows = self._dist
                else:
                    dist_rows = self._dist[darr]
                arrays, schedule = build_arrays_and_schedule(
                    net, self._weights, dist_rows, dests, net.link_destinations()
                )
                self._pending_dags = (dests, arrays)
            else:
                dags = self.ensure_dags(dests)
                schedule = build_schedule(
                    dags, net.link_destinations(), net.num_nodes, net.num_links
                )
            while len(self._dest_schedules) >= _DEST_SCHEDULE_CAP:
                self._dest_schedules.popitem(last=False)
            self._dest_schedules[key] = schedule
        return accumulate_rows(schedule, inj)

    def destination_link_loads(self, dst: int, injections: np.ndarray) -> np.ndarray:
        """Per-link loads contributed by traffic destined to ``dst`` alone.

        Args:
            dst: The destination node.
            injections: Per-node demand toward ``dst`` (column ``dst`` of a
                demand matrix), in Mb/s.

        Returns:
            Vector of link loads (Mb/s) such that summing the vectors of
            every destination reproduces :meth:`link_loads`.

        Raises:
            RoutingError: if any positive injection has no path to ``dst``.
        """
        inj = np.asarray(injections, dtype=float)
        return self.destination_rows([dst], inj[None, :])[0]

    def pair_link_fractions(self, src: int, dst: int) -> np.ndarray:
        """Fraction of the ``(src, dst)`` flow crossing each link.

        The fractions of the links out of any traversed node sum to the
        fraction entering that node, so path delay can be averaged as
        ``sum_l fraction(l) * delay(l)`` (delay is additive along paths and
        splitting is flow-proportional).

        Raises:
            RoutingError: if ``dst`` is unreachable from ``src``.
        """
        if src == dst:
            raise ValueError("src and dst must differ")
        dist = self._dist[dst]
        if not np.isfinite(dist[src]):
            raise RoutingError(f"node {dst} unreachable from node {src}")
        if self._vectorized:
            inj = np.zeros((1, self._net.num_nodes))
            inj[0, src] = 1.0
            return accumulate_rows(self._pair_schedule(dst), inj)[0]
        dag_out = self.dag_out_links(dst)
        node_frac = np.zeros(self._net.num_nodes)
        node_frac[src] = 1.0
        fractions = np.zeros(self._net.num_links)
        for u in descending_distance_order(dist):
            u = int(u)
            if node_frac[u] <= 0.0 or u == dst or dist[u] > dist[src]:
                continue
            out = dag_out[u]
            share = node_frac[u] / len(out)
            for link_idx in out:
                fractions[link_idx] += share
                node_frac[self._net.link(link_idx).dst] += share
        return fractions

    def pair_fraction_rows(self, dst: int, sources) -> np.ndarray:
        """Pair fractions toward ``dst`` for many sources in one kernel pass.

        Row ``i`` equals ``pair_link_fractions(sources[i], dst)`` — the
        batching the SLA evaluator layer rides (all pairs sharing a
        destination share its DAG and schedule).

        Raises:
            ValueError: if any source equals ``dst``.
            RoutingError: if ``dst`` is unreachable from any source
                (reported for the first offending source in order).
        """
        sources = [int(s) for s in sources]
        dist = self._dist[dst]
        for s in sources:
            if s == dst:
                raise ValueError("src and dst must differ")
            if not np.isfinite(dist[s]):
                raise RoutingError(f"node {dst} unreachable from node {s}")
        if not self._vectorized:
            rows = np.empty((len(sources), self._net.num_links))
            for i, s in enumerate(sources):
                rows[i] = self.pair_link_fractions(s, dst)
            return rows
        if not sources:
            return np.empty((0, self._net.num_links))
        dag = self.ensure_dags([dst])[0]
        schedule = build_schedule(
            [dag] * len(sources),
            self._net.link_destinations(),
            self._net.num_nodes,
            self._net.num_links,
        )
        inj = np.zeros((len(sources), self._net.num_nodes))
        inj[np.arange(len(sources)), sources] = 1.0
        return accumulate_rows(schedule, inj)

    def average_hop_count(self, src: int, dst: int) -> float:
        """Mean number of hops of the ECMP flow from ``src`` to ``dst``."""
        return float(self.pair_link_fractions(src, dst).sum())

    def all_shortest_paths(self, src: int, dst: int, limit: int = 1000) -> list[list[int]]:
        """Enumerate shortest paths as node sequences (capped at ``limit``).

        Raises:
            RoutingError: if ``dst`` is unreachable from ``src``, or more
                than ``limit`` shortest paths exist.
        """
        if src == dst:
            return [[src]]
        if not np.isfinite(self._dist[dst, src]):
            raise RoutingError(f"node {dst} unreachable from node {src}")
        dag_out = self.dag_out_links(dst)
        paths: list[list[int]] = []
        stack: list[list[int]] = [[src]]
        while stack:
            path = stack.pop()
            node = path[-1]
            if node == dst:
                paths.append(path)
                if len(paths) > limit:
                    raise RoutingError(f"more than {limit} shortest paths for ({src}, {dst})")
                continue
            for link_idx in dag_out[node]:
                stack.append(path + [self._net.link(link_idx).dst])
        return sorted(paths)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _materialize_pending_dags(self) -> None:
        """Slice deferred fused-pass DAG arrays into the ``_dags`` cache.

        :meth:`destination_rows` keeps the flattened arrays of its fused
        build instead of slicing ``DestinationDag`` tuples eagerly; any
        reader of the cache (or a second build) materializes them first,
        so the deferral is invisible outside this class.
        """
        if self._pending_dags is not None:
            dests, arrays = self._pending_dags
            self._pending_dags = None
            for t, dag in zip(dests, slice_destination_dags(dests, arrays)):
                self._dags[t] = dag

    def _reachable_from_everywhere(self) -> bool:
        """Whether every node reaches every node (no inf distances), cached."""
        if self._all_finite is None:
            self._all_finite = bool(np.isfinite(self._dist).all())
        return self._all_finite

    def _pair_schedule(self, dst: int) -> Schedule:
        """A cached single-row schedule for destination ``dst``."""
        schedule = self._pair_schedules.get(dst)
        if schedule is None:
            dag = self.ensure_dags([dst])[0]
            schedule = build_schedule(
                [dag],
                self._net.link_destinations(),
                self._net.num_nodes,
                self._net.num_links,
            )
            while len(self._pair_schedules) >= _PAIR_SCHEDULE_CAP:
                self._pair_schedules.popitem(last=False)
            self._pair_schedules[dst] = schedule
        return schedule

    def _demand_array(self, traffic: DemandsLike) -> np.ndarray:
        demands = traffic.demands if isinstance(traffic, TrafficMatrix) else np.asarray(traffic, dtype=float)
        n = self._net.num_nodes
        if demands.shape != (n, n):
            raise ValueError(f"expected demands of shape ({n}, {n}), got {demands.shape}")
        return demands

    def _accumulate_destination(
        self,
        t: int,
        injections: np.ndarray,
        loads: np.ndarray,
        link_dst: np.ndarray,
    ) -> None:
        """The scalar reference loop the SoA kernels are checked against."""
        dist = self._dist[t]
        unreachable = ~np.isfinite(dist) & (injections > 0)
        if np.any(unreachable):
            bad = int(np.flatnonzero(unreachable)[0])
            raise RoutingError(f"node {t} unreachable from node {bad}")
        dag_out = self.dag_out_links(t)
        flow = injections.astype(float).copy()
        for u in descending_distance_order(dist):
            u = int(u)
            if u == t or flow[u] <= 0.0:
                continue
            out = dag_out[u]
            share = flow[u] / len(out)
            for link_idx in out:
                loads[link_idx] += share
                flow[link_dst[link_idx]] += share

    def __repr__(self) -> str:
        return f"Routing(net={self._net.name!r}, links={self._net.num_links})"
