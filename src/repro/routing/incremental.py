"""Incremental SPF for weight settings that differ in a few link weights.

The local searches (FindH/FindL, the STR single-weight-change baseline,
simulated annealing) evaluate thousands of weight settings that differ
from an already-evaluated parent in only one or two link weights, yet a
fresh :class:`~repro.routing.state.Routing` recomputes all-destination
Dijkstra, every SP DAG, and every per-destination load from scratch —
the classic bottleneck dynamic shortest-path updates address in the
weight-search literature (Fortz & Thorup).

This module exploits the destination-row structure of
:func:`repro.routing.spf.distances_to_all`: a weight change on link
``(u, v)`` can only alter the routing toward destinations ``t`` whose
shortest-path structure involves the link,

* **increase** ``w -> w'``: only destinations whose SP DAG *used* the
  link, i.e. ``dist(u, t) == w + dist(v, t)`` (the slack test of
  :func:`repro.routing.spf.shortest_path_dag_mask`);
* **decrease** ``w -> w'``: only destinations where the cheaper link
  (weakly) undercuts the incumbent distance,
  ``w' + dist(v, t) <= dist(u, t)`` (strict improvement shortens the
  distance; equality leaves distances intact but adds an ECMP branch).

For every other destination both the distance row and the SP DAG are
provably unchanged (no old shortest path used a changed link, and no new
path can beat the incumbent), so :func:`derive_routing` re-runs Dijkstra
restricted to the affected destinations and shares all other rows and
cached DAGs with the parent.  For multi-link deltas the affected set is
the union of the per-link tests, each evaluated against the parent's
distances — increases cannot shorten any path, and a decrease failing
its test cannot undercut any distance even combined with the others.

On the paper's 30-node topologies a single-weight move typically affects
a small handful of destinations, so almost all SPF work is skipped; the
evaluator layers (:mod:`repro.core.evaluator`) build on this to reuse
per-destination load rows as well.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro import obs
from repro.network.graph import Network
from repro.routing.spf import (
    _DISTANCE_ATOL,
    distances_to_subset,
    distances_to_subsets_batched,
)
from repro.routing.state import Routing

# Out-of-band telemetry (rule RL006): incremental-derivation shape/latency.
_OBS_DERIVE_SECONDS = obs.histogram(
    "repro_routing_kernel_seconds",
    "Routing-kernel latency by kernel.",
    {"kernel": "derive_routing"},
)
_OBS_AFFECTED = obs.histogram(
    "repro_routing_affected_destinations",
    "Affected-destination set size per derived routing.",
    buckets=obs.SIZE_BUCKETS,
)


@dataclass(frozen=True)
class WeightDelta:
    """A sparse difference between two link-weight vectors.

    Attributes:
        changes: ``(link_index, old_weight, new_weight)`` triples, one per
            changed link, sorted by link index.  ``old_weight`` pins the
            parent vector the delta applies to, so :meth:`apply` can catch
            mismatched parents.
    """

    changes: tuple[tuple[int, int, int], ...]

    def __post_init__(self) -> None:
        links = [link for link, _, _ in self.changes]
        if len(set(links)) != len(links):
            raise ValueError(f"duplicate links in delta: {links}")
        for link, old_w, new_w in self.changes:
            if old_w == new_w:
                raise ValueError(f"no-op change on link {link} (weight {old_w})")
            if old_w <= 0 or new_w <= 0:
                raise ValueError(f"link {link}: weights must be positive")
        object.__setattr__(self, "changes", tuple(sorted(self.changes)))

    @classmethod
    def single(cls, link: int, old_weight: int, new_weight: int) -> "WeightDelta":
        """The delta changing one link's weight."""
        return cls(changes=((int(link), int(old_weight), int(new_weight)),))

    @classmethod
    def from_weights(cls, old: np.ndarray, new: np.ndarray) -> "WeightDelta":
        """The (possibly empty) delta turning vector ``old`` into ``new``."""
        old = np.asarray(old, dtype=np.int64)
        new = np.asarray(new, dtype=np.int64)
        if old.shape != new.shape:
            raise ValueError(f"shape mismatch: {old.shape} vs {new.shape}")
        changed = np.flatnonzero(old != new)
        return cls(
            changes=tuple((int(l), int(old[l]), int(new[l])) for l in changed)
        )

    @property
    def num_changes(self) -> int:
        """Number of links whose weight changes."""
        return len(self.changes)

    def links(self) -> tuple[int, ...]:
        """Indices of the changed links."""
        return tuple(link for link, _, _ in self.changes)

    def apply(self, weights: np.ndarray) -> np.ndarray:
        """The child weight vector obtained by applying the delta.

        Raises:
            ValueError: if ``weights`` does not match the recorded old
                weights (the delta was built against a different parent).
        """
        out = np.array(weights, dtype=np.int64, copy=True)
        for link, old_w, new_w in self.changes:
            if out[link] != old_w:
                raise ValueError(
                    f"delta expects weight {old_w} on link {link}, found {out[link]}"
                )
            out[link] = new_w
        return out


def affected_destinations(
    net: Network,
    dist: np.ndarray,
    delta: WeightDelta,
    atol: float = _DISTANCE_ATOL,
) -> np.ndarray:
    """Destinations whose SP structure can change under ``delta``.

    Args:
        net: The network.
        dist: Distance matrix of the *parent* weights
            (``dist[t, u] = dist(u, t)``).
        delta: The weight changes, relative to the parent.
        atol: Distance comparison tolerance.

    Returns:
        Sorted array of destination node indices; for every destination
        *not* returned, both the distance row and the SP DAG are
        guaranteed unchanged.
    """
    srcs = net.link_sources()
    dsts = net.link_destinations()
    mask = np.zeros(net.num_nodes, dtype=bool)
    for link, old_w, new_w in delta.changes:
        to_u = dist[:, srcs[link]]
        to_v = dist[:, dsts[link]]
        finite = np.isfinite(to_u) & np.isfinite(to_v)
        if new_w > old_w:
            mask |= finite & (np.abs(to_u - (old_w + to_v)) <= atol)
        else:
            mask |= finite & (new_w + to_v <= to_u + atol)
    return np.flatnonzero(mask)


def destinations_using_links(
    net: Network,
    dist: np.ndarray,
    weights: np.ndarray,
    links,
    atol: float = _DISTANCE_ATOL,
) -> np.ndarray:
    """Destinations with some shortest path through any of ``links``.

    This is the link-*removal* affected set: removing a link can only
    lengthen paths, and only destinations whose SP DAG used it (the same
    slack test as the weight-increase case of
    :func:`affected_destinations`) can change.  For every destination
    *not* returned, both the distance row and the SP DAG over the
    surviving links are guaranteed unchanged — the pruning the scenario
    batch evaluator (:mod:`repro.scenarios.batch`) relies on to derive
    degraded-network routings from the intact one.

    Args:
        net: The intact network.
        dist: Distance matrix under ``weights`` (``dist[t, u] = dist(u, t)``).
        weights: The per-link weights ``dist`` was computed with.
        links: Directed link indices whose removal is being considered.
        atol: Distance comparison tolerance.

    Returns:
        Sorted array of destination node indices.
    """
    srcs = net.link_sources()
    dsts = net.link_destinations()
    w = np.asarray(weights, dtype=float)
    mask = np.zeros(net.num_nodes, dtype=bool)
    with np.errstate(invalid="ignore"):  # inf - inf on unreachable endpoints
        for link in links:
            link = int(link)
            to_u = dist[:, srcs[link]]
            to_v = dist[:, dsts[link]]
            finite = np.isfinite(to_u) & np.isfinite(to_v)
            mask |= finite & (np.abs(to_u - (w[link] + to_v)) <= atol)
    return np.flatnonzero(mask)


def incremental_distances(
    net: Network,
    new_weights: np.ndarray,
    parent_dist: np.ndarray,
    affected: np.ndarray,
) -> np.ndarray:
    """Distance matrix under ``new_weights``, recomputing only ``affected`` rows.

    Args:
        net: The network.
        new_weights: The child weight vector.
        parent_dist: Distance matrix of the parent weights.
        affected: Output of :func:`affected_destinations`.

    Returns:
        A fresh matrix equal to ``distances_to_all(net, new_weights)``;
        rows outside ``affected`` are copied from ``parent_dist``.
    """
    dist = parent_dist.copy()
    if affected.size:
        dist[affected] = distances_to_subset(net, new_weights, affected)
    return dist


def derive_routing(
    parent: Routing, delta: WeightDelta
) -> tuple[Routing, np.ndarray]:
    """Routing of ``delta`` applied to ``parent``, reusing unaffected state.

    Args:
        parent: The routing of the parent weight vector.
        delta: The weight changes, relative to the parent.

    Returns:
        ``(child, affected)``: a routing equivalent to
        ``Routing(net, delta.apply(parent.weights))`` — distance rows and
        cached SP DAGs of unaffected destinations are shared with the
        parent — and the affected-destination array, so callers can limit
        their own recomputation (e.g. per-destination load rows) to it.
    """
    started = perf_counter()
    net = parent.network
    new_weights = delta.apply(parent.weights)
    affected = affected_destinations(net, parent.distance_matrix, delta)
    dist = incremental_distances(net, new_weights, parent.distance_matrix, affected)
    child = _child_routing(parent, new_weights, dist, affected)
    _OBS_DERIVE_SECONDS.observe(perf_counter() - started)
    _OBS_AFFECTED.observe(affected.size)
    return child, affected


def _child_routing(
    parent: Routing, new_weights: np.ndarray, dist: np.ndarray, affected: np.ndarray
) -> Routing:
    """Assemble a child routing sharing the parent's unaffected DAG caches.

    Both DAG representations are shared — the list-of-lists cache the
    path/forwarding helpers consume and the CSR
    :class:`~repro.routing.soa.DestinationDag` cache the vectorized
    kernels ride — so a derived routing re-traverses nothing the parent
    already built.
    """
    affected_set = set(int(t) for t in affected)
    reusable_dags = {
        t: dag for t, dag in parent.dag_cache().items() if t not in affected_set
    }
    reusable_soa = {
        t: dag for t, dag in parent.soa_dag_cache().items() if t not in affected_set
    }
    return Routing.from_precomputed(
        parent.network,
        new_weights,
        dist,
        dag_out=reusable_dags,
        dags=reusable_soa,
        vectorized=parent.vectorized,
    )


def derive_routings_batch(
    parent: Routing, deltas
) -> list[tuple[Routing, np.ndarray]]:
    """Derive many children of one parent with a single blocked Dijkstra.

    Equivalent to ``[derive_routing(parent, d) for d in deltas]`` — same
    children bit for bit — but every child's restricted Dijkstra runs in
    one :func:`repro.routing.spf.distances_to_subsets_batched` call, so a
    batch of cache misses (e.g. the neighborhood a search ranks, or the
    deltas a sweep chunk requests) pays the scipy call overhead once.

    Args:
        parent: The routing of the parent weight vector.
        deltas: The weight changes, each relative to the parent.

    Returns:
        ``(child, affected)`` pairs in ``deltas`` order.
    """
    net = parent.network
    prepared = []
    for delta in deltas:
        new_weights = delta.apply(parent.weights)
        affected = affected_destinations(net, parent.distance_matrix, delta)
        prepared.append((new_weights, affected))
    blocks = distances_to_subsets_batched(
        (net, new_weights, affected) for new_weights, affected in prepared
    )
    out = []
    for (new_weights, affected), rows in zip(prepared, blocks):
        dist = parent.distance_matrix.copy()
        if affected.size:
            dist[affected] = rows
        out.append((_child_routing(parent, new_weights, dist, affected), affected))
    return out
