"""Shortest-path first computations (all-destination Dijkstra, SP DAGs)."""

from __future__ import annotations

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

from repro.network.graph import Network

_DISTANCE_ATOL = 1e-9


class RoutingError(RuntimeError):
    """Raised when traffic cannot be routed (e.g. unreachable destination)."""


def _reverse_graph(net: Network, weights: np.ndarray) -> csr_matrix:
    """Sparse reversed graph whose Dijkstra rows are distances *to* a node."""
    w = np.asarray(weights, dtype=float)
    if w.shape != (net.num_links,):
        raise ValueError(f"expected {net.num_links} weights, got shape {w.shape}")
    if np.any(w <= 0):
        raise ValueError("link weights must be positive")
    n = net.num_nodes
    indptr, indices, perm = net.reverse_csr_structure()
    return csr_matrix((w[perm], indices, indptr), shape=(n, n))


def distances_to_all(net: Network, weights: np.ndarray) -> np.ndarray:
    """Shortest-path distance to every destination under ``weights``.

    Args:
        net: The network.
        weights: Per-link positive weights, indexed by link index.

    Returns:
        Matrix ``D`` of shape ``(num_nodes, num_nodes)`` where ``D[t, u]``
        is the shortest-path distance from node ``u`` to node ``t``;
        ``inf`` where no path exists.
    """
    return dijkstra(_reverse_graph(net, weights), directed=True)


def distances_to_subset(
    net: Network, weights: np.ndarray, destinations: np.ndarray
) -> np.ndarray:
    """Rows of :func:`distances_to_all` for a subset of destinations.

    Args:
        net: The network.
        weights: Per-link positive weights, indexed by link index.
        destinations: Destination node indices to compute rows for.

    Returns:
        Matrix of shape ``(len(destinations), num_nodes)`` whose row ``i``
        equals ``distances_to_all(net, weights)[destinations[i]]``.
    """
    dests = np.asarray(destinations, dtype=np.int64)
    if dests.size == 0:
        return np.empty((0, net.num_nodes))
    return np.atleast_2d(dijkstra(_reverse_graph(net, weights), directed=True, indices=dests))


def shortest_path_dag_mask(
    net: Network, weights: np.ndarray, dist_to_t: np.ndarray
) -> np.ndarray:
    """Boolean mask over links on the shortest-path DAG toward one destination.

    Link ``(u, v)`` lies on a shortest path to ``t`` iff
    ``dist(u, t) == w(u, v) + dist(v, t)`` and both distances are finite.

    Args:
        net: The network.
        weights: Per-link weights used to compute ``dist_to_t``.
        dist_to_t: Row ``D[t]`` from :func:`distances_to_all`.

    Returns:
        Boolean vector over link indices.
    """
    w = np.asarray(weights, dtype=float)
    src_dist = dist_to_t[net.link_sources()]
    dst_dist = dist_to_t[net.link_destinations()]
    finite = np.isfinite(src_dist) & np.isfinite(dst_dist)
    with np.errstate(invalid="ignore"):  # inf - inf on unreachable endpoints
        on_dag = np.abs(src_dist - (w + dst_dist)) <= _DISTANCE_ATOL
    return finite & on_dag


def descending_distance_order(dist_to_t: np.ndarray) -> np.ndarray:
    """Node indices with finite distance, sorted by decreasing distance to ``t``.

    Processing nodes in this order guarantees that when a node is visited,
    all upstream contributions to its transit flow have been accumulated
    (the SP DAG is acyclic with distance strictly decreasing along links).
    """
    finite = np.flatnonzero(np.isfinite(dist_to_t))
    return finite[np.argsort(-dist_to_t[finite], kind="stable")]
