"""Shortest-path first computations (all-destination Dijkstra, SP DAGs)."""

from __future__ import annotations

from time import perf_counter

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

from repro import obs
from repro.network.graph import Network

_DISTANCE_ATOL = 1e-9

# Out-of-band telemetry (rule RL006): batched-solve shape and latency.
_OBS_BATCH_TASKS = obs.histogram(
    "repro_routing_batched_solve_tasks",
    "Tasks per distances_to_subsets_batched call.",
    buckets=obs.SIZE_BUCKETS,
)
_OBS_BATCH_SECONDS = obs.histogram(
    "repro_routing_kernel_seconds",
    "Routing-kernel latency by kernel.",
    {"kernel": "distances_to_subsets_batched"},
)


class RoutingError(RuntimeError):
    """Raised when traffic cannot be routed (e.g. unreachable destination)."""


def _reverse_graph(net: Network, weights: np.ndarray) -> csr_matrix:
    """Sparse reversed graph whose Dijkstra rows are distances *to* a node."""
    w = np.asarray(weights, dtype=float)
    if w.shape != (net.num_links,):
        raise ValueError(f"expected {net.num_links} weights, got shape {w.shape}")
    if np.any(w <= 0):
        raise ValueError("link weights must be positive")
    n = net.num_nodes
    indptr, indices, perm = net.reverse_csr_structure()
    return csr_matrix((w[perm], indices, indptr), shape=(n, n))


def distances_to_all(net: Network, weights: np.ndarray) -> np.ndarray:
    """Shortest-path distance to every destination under ``weights``.

    Args:
        net: The network.
        weights: Per-link positive weights, indexed by link index.

    Returns:
        Matrix ``D`` of shape ``(num_nodes, num_nodes)`` where ``D[t, u]``
        is the shortest-path distance from node ``u`` to node ``t``;
        ``inf`` where no path exists.
    """
    return dijkstra(_reverse_graph(net, weights), directed=True)


def distances_to_subset(
    net: Network, weights: np.ndarray, destinations: np.ndarray
) -> np.ndarray:
    """Rows of :func:`distances_to_all` for a subset of destinations.

    Args:
        net: The network.
        weights: Per-link positive weights, indexed by link index.
        destinations: Destination node indices to compute rows for.

    Returns:
        Matrix of shape ``(len(destinations), num_nodes)`` whose row ``i``
        equals ``distances_to_all(net, weights)[destinations[i]]``.
    """
    dests = np.asarray(destinations, dtype=np.int64)
    if dests.size == 0:
        return np.empty((0, net.num_nodes))
    return np.atleast_2d(dijkstra(_reverse_graph(net, weights), directed=True, indices=dests))


def shortest_path_dag_mask(
    net: Network, weights: np.ndarray, dist_to_t: np.ndarray
) -> np.ndarray:
    """Boolean mask over links on the shortest-path DAG toward one destination.

    Link ``(u, v)`` lies on a shortest path to ``t`` iff
    ``dist(u, t) == w(u, v) + dist(v, t)`` and both distances are finite.

    Args:
        net: The network.
        weights: Per-link weights used to compute ``dist_to_t``.
        dist_to_t: Row ``D[t]`` from :func:`distances_to_all`.

    Returns:
        Boolean vector over link indices.
    """
    return shortest_path_dag_masks(net, weights, np.atleast_2d(dist_to_t))[0]


def shortest_path_dag_masks(
    net: Network, weights: np.ndarray, dist_rows: np.ndarray
) -> np.ndarray:
    """Shortest-path DAG masks for many destinations in one broadcast.

    The slack test of :func:`shortest_path_dag_mask` evaluated as a
    ``(k, num_links)`` grid: row ``i`` is the DAG mask of the destination
    whose distance row is ``dist_rows[i]``.

    Args:
        net: The network.
        weights: Per-link weights used to compute ``dist_rows``.
        dist_rows: ``(k, num_nodes)`` stack of rows from
            :func:`distances_to_all` / :func:`distances_to_subset`.

    Returns:
        Boolean matrix of shape ``(k, num_links)``.
    """
    w = np.asarray(weights, dtype=float)
    dist_rows = np.asarray(dist_rows, dtype=float)
    src_dist = dist_rows[:, net.link_sources()]
    dst_dist = dist_rows[:, net.link_destinations()]
    # Unreachable endpoints need no explicit finiteness mask: an inf on
    # either side makes the slack inf (or nan, for inf - inf), and
    # neither satisfies the <= comparison.
    with np.errstate(invalid="ignore"):  # inf - inf on unreachable endpoints
        return np.abs(src_dist - (w[None, :] + dst_dist)) <= _DISTANCE_ATOL


def distances_to_subsets_batched(tasks) -> list[np.ndarray]:
    """Several :func:`distances_to_subset` calls as one Dijkstra invocation.

    The per-task reversed graphs are stacked into one block-diagonal
    sparse matrix and solved with a single ``scipy`` ``dijkstra`` call —
    the batching the scenario sweep engine uses to amortize the per-call
    overhead of its derived-routing cache misses.  Blocks are mutually
    unreachable, and Dijkstra distances are exact sums of the integer
    weights, so every block's rows are bit-identical to a standalone
    :func:`distances_to_subset` call.

    Args:
        tasks: Iterable of ``(net, weights, destinations)`` triples.

    Returns:
        One ``(len(destinations), net.num_nodes)`` matrix per task, in
        task order.
    """
    from scipy.sparse import block_diag

    tasks = list(tasks)
    started = perf_counter()
    _OBS_BATCH_TASKS.observe(len(tasks))
    graphs, idx_list, spans = [], [], []
    node_offset = 0
    for net, weights, destinations in tasks:
        dests = np.asarray(destinations, dtype=np.int64)
        graphs.append(_reverse_graph(net, weights))
        idx_list.append(dests + node_offset)
        spans.append((node_offset, net.num_nodes, dests.size))
        node_offset += net.num_nodes
    all_idx = np.concatenate(idx_list) if idx_list else np.empty(0, dtype=np.int64)
    if all_idx.size == 0:
        return [np.empty((0, n)) for (_off, n, _k) in spans]
    big = block_diag(graphs, format="csr")
    dmat = np.atleast_2d(dijkstra(big, directed=True, indices=all_idx))
    out = []
    row = 0
    for offset, n, k in spans:
        out.append(np.ascontiguousarray(dmat[row : row + k, offset : offset + n]))
        row += k
    _OBS_BATCH_SECONDS.observe(perf_counter() - started)
    return out


def descending_distance_order(dist_to_t: np.ndarray) -> np.ndarray:
    """Node indices with finite distance, sorted by decreasing distance to ``t``.

    Processing nodes in this order guarantees that when a node is visited,
    all upstream contributions to its transit flow have been accumulated
    (the SP DAG is acyclic with distance strictly decreasing along links).
    """
    finite = np.flatnonzero(np.isfinite(dist_to_t))
    return finite[np.argsort(-dist_to_t[finite], kind="stable")]
