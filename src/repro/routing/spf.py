"""Shortest-path first computations (all-destination Dijkstra, SP DAGs)."""

from __future__ import annotations

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

from repro.network.graph import Network

_DISTANCE_ATOL = 1e-9


class RoutingError(RuntimeError):
    """Raised when traffic cannot be routed (e.g. unreachable destination)."""


def distances_to_all(net: Network, weights: np.ndarray) -> np.ndarray:
    """Shortest-path distance to every destination under ``weights``.

    Args:
        net: The network.
        weights: Per-link positive weights, indexed by link index.

    Returns:
        Matrix ``D`` of shape ``(num_nodes, num_nodes)`` where ``D[t, u]``
        is the shortest-path distance from node ``u`` to node ``t``;
        ``inf`` where no path exists.
    """
    w = np.asarray(weights, dtype=float)
    if w.shape != (net.num_links,):
        raise ValueError(f"expected {net.num_links} weights, got shape {w.shape}")
    if np.any(w <= 0):
        raise ValueError("link weights must be positive")
    n = net.num_nodes
    graph = csr_matrix(
        (w, (net.link_sources(), net.link_destinations())), shape=(n, n)
    )
    return dijkstra(graph.T, directed=True)


def shortest_path_dag_mask(
    net: Network, weights: np.ndarray, dist_to_t: np.ndarray
) -> np.ndarray:
    """Boolean mask over links on the shortest-path DAG toward one destination.

    Link ``(u, v)`` lies on a shortest path to ``t`` iff
    ``dist(u, t) == w(u, v) + dist(v, t)`` and both distances are finite.

    Args:
        net: The network.
        weights: Per-link weights used to compute ``dist_to_t``.
        dist_to_t: Row ``D[t]`` from :func:`distances_to_all`.

    Returns:
        Boolean vector over link indices.
    """
    w = np.asarray(weights, dtype=float)
    src_dist = dist_to_t[net.link_sources()]
    dst_dist = dist_to_t[net.link_destinations()]
    finite = np.isfinite(src_dist) & np.isfinite(dst_dist)
    on_dag = np.abs(src_dist - (w + dst_dist)) <= _DISTANCE_ATOL
    return finite & on_dag


def descending_distance_order(dist_to_t: np.ndarray) -> np.ndarray:
    """Node indices with finite distance, sorted by decreasing distance to ``t``.

    Processing nodes in this order guarantees that when a node is visited,
    all upstream contributions to its transit flow have been accumulated
    (the SP DAG is acyclic with distance strictly decreasing along links).
    """
    finite = np.flatnonzero(np.isfinite(dist_to_t))
    return finite[np.argsort(-dist_to_t[finite], kind="stable")]
