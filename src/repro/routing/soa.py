"""Struct-of-arrays kernels for batched ECMP load accumulation.

The scalar reference path (``Routing._accumulate_destination``) walks one
destination's shortest-path DAG in pure Python: nodes in decreasing
distance order, each node's accumulated flow split evenly over its DAG
out-links.  This module replays exactly that computation as numpy
gather/scatter kernels over *many* rows at once, where a row is one
``(destination, injection-vector)`` pair — per-destination load rows for
the evaluator, per-source fraction rows for the SLA path.

Bit-identity contract
---------------------
The kernels are **bit-identical** to the scalar loop, not merely close,
because every floating-point operation is reproduced with the same
operands in the same per-slot order:

* Link weights are integers ``>= 1``, so equal-distance nodes are never
  DAG-connected and nodes of one *distance level* can be processed in
  lockstep: their flow updates only reach strictly closer levels.
* Within a level, the scalar loop's update sequence is (node order,
  ascending link within node); the schedule flattens the level in the
  same order, so per-slot addition order is preserved.
* Per-link load slots are written exactly once across the whole run (a
  link has one source node, which occupies one level of one row), and
  the loads never feed back into the flow recursion — so all per-level
  contributions can be scattered in a single fancy ``+=`` at the end.
  Each slot still receives exactly the one ``0.0 + share`` addition the
  scalar loop performs.  Per-node flow slots can receive several
  additions within one level; those are applied with ``np.add.at``,
  whose unbuffered semantics perform the additions one by one in
  operand order — so each slot receives its contributions in exactly
  the scalar sequence.
* The scalar loop skips zero-flow nodes; the kernels do not.  Demands
  are validated non-negative, so a skipped node contributes ``+0.0``
  shares, and ``x + 0.0`` is bitwise ``x`` for every non-negative ``x``.

Rows are independent (each row owns a disjoint slice of the flat flow
and load buffers), so any set of destinations — including the same
destination repeated with different injections — batches into one
schedule.
"""

from __future__ import annotations

from time import perf_counter
from typing import NamedTuple

import numpy as np

from repro import obs

# Out-of-band telemetry (rule RL006): kernel timings and batch shapes.
_OBS_KERNEL_HELP = "Routing-kernel latency by kernel."
_OBS_ACCUMULATE_SECONDS = obs.histogram(
    "repro_routing_kernel_seconds", _OBS_KERNEL_HELP, {"kernel": "accumulate_rows"}
)
_OBS_SCHEDULE_SECONDS = obs.histogram(
    "repro_routing_kernel_seconds", _OBS_KERNEL_HELP, {"kernel": "build_schedule"}
)
_OBS_ACCUMULATE_ROWS = obs.histogram(
    "repro_routing_accumulate_rows",
    "Load rows per accumulate_rows call.",
    buckets=obs.SIZE_BUCKETS,
)


class DestinationDag(NamedTuple):
    """CSR shortest-path DAG toward one destination, plus its level order.

    Attributes:
        dst: The destination node.
        indptr: ``(num_nodes + 1,)`` slice bounds into ``links`` per
            source node.
        links: DAG link indices grouped by source node, ascending link
            index within each source (the order
            ``Routing.dag_out_links`` lists them).
        order: Finite-distance nodes excluding ``dst``, farthest first,
            ties broken by ascending node index — the processing order of
            :func:`repro.routing.spf.descending_distance_order` minus the
            destination itself (which is uniquely last at distance 0).
        levels: Dense distance-level id per ``order`` position
            (0 = farthest); nodes share a level iff their distances to
            ``dst`` are exactly equal.
        order_counts: DAG out-degree per ``order`` position
            (``indptr[u + 1] - indptr[u]`` for ``u = order[i]``).
    """

    dst: int
    indptr: np.ndarray
    links: np.ndarray
    order: np.ndarray
    levels: np.ndarray
    order_counts: np.ndarray


class _Step(NamedTuple):
    """One distance level of a schedule, flattened across all rows.

    ``rep`` expands the step's node-position axis to its link axis
    (``shares[rep]`` == ``shares.repeat(counts)``), precomputed so the
    hot accumulation loop only gathers.
    """

    flow_pos: np.ndarray
    counts_f: np.ndarray
    rep: np.ndarray
    dst_pos: np.ndarray


class Schedule(NamedTuple):
    """A compiled accumulation plan for a fixed list of DAG rows.

    ``load_pos`` is the flat load-buffer slot of every link contribution
    across all steps, in step order — the single end-of-run scatter
    target (each slot appears at most once, see the module contract).
    """

    num_rows: int
    num_nodes: int
    num_links: int
    steps: tuple[_Step, ...] = ()
    load_pos: np.ndarray | None = None


def _dag_arrays(net, weights, dist_rows):
    """Flattened SoA arrays for all destinations of ``dist_rows`` at once.

    The shared core of :func:`build_destination_dags` and
    :func:`build_arrays_and_schedule`: every per-destination sequence (node
    order, level ids, out-degrees, link-pool offsets) is assembled as one
    concatenated array plus per-destination boundaries, so callers only
    slice (to materialize :class:`DestinationDag` objects) or compile a
    schedule directly from the concatenations.
    """
    from repro.routing.spf import _DISTANCE_ATOL

    n = net.num_nodes
    k = dist_rows.shape[0]
    findptr, fperm = net.forward_csr_structure()
    srcs = net.link_sources()
    link_dst = net.link_destinations()
    m_f = fperm.size

    fin = np.isfinite(dist_rows)
    dmax = np.max(dist_rows, where=fin, initial=0.0)

    # Slack test evaluated directly in forward-CSR link order (grouped by
    # source node ascending, ascending link index within each source), so
    # the row-major flatnonzero below yields links already grouped the
    # way ``Routing.dag_out_links`` lists them.
    w = np.asarray(weights)
    sg = srcs[fperm]
    use_int = False
    if m_f and np.issubdtype(w.dtype, np.integer):
        use_int = 1 <= int(w.min()) and int(w.max()) <= 1000 and dmax <= 30000.0
    if use_int:
        # Distances under integer weights are exact integer-valued
        # float64 (sums of at most n - 1 weights, far below 2**53), so
        # the slack test is an exact integer equality; an int16 grid
        # quarters the memory traffic of the float subtraction.  With
        # the unreachable-endpoint sentinel 32767 and the gates above,
        # no sentinel combination lands on zero even through int16
        # wraparound: a sentinel source gives at least
        # ``32767 - 30000 - 1000 > 0``; a sentinel destination gives a
        # value in ``[-33767, -2768]``, which contains no multiple of
        # 65536; two sentinels give ``-w`` with ``w >= 1``.
        d16 = np.where(fin, dist_rows, 32767.0).astype(np.int16)
        slack = d16[:, sg]
        slack -= d16[:, link_dst[fperm]]
        slack -= w[fperm].astype(np.int16)
        mask_f = slack == 0
    else:
        # Float fallback: exact for the same reason whenever weights are
        # integral; an inf endpoint yields an inf or nan slack, and
        # neither passes the comparison.
        wf = w.astype(float)
        slack = dist_rows[:, sg]
        with np.errstate(invalid="ignore"):  # inf - inf on unreachable endpoints
            slack -= dist_rows[:, link_dst[fperm]]
            slack -= wf[fperm]
            np.abs(slack, out=slack)
            mask_f = slack <= _DISTANCE_ATOL
    flat = np.flatnonzero(mask_f)
    cols = flat % m_f if m_f else flat
    rows = flat // m_f if m_f else flat
    links_all = fperm[cols]
    counts = np.bincount(rows * n + sg[cols], minlength=k * n).reshape(k, n)
    indptr2d = np.zeros((k, n + 1), dtype=np.int64)
    np.cumsum(counts, axis=1, out=indptr2d[:, 1:])
    row_bounds = np.concatenate(([0], np.cumsum(indptr2d[:, n])))

    # Farthest-first node order per row: the destination (distance 0) is
    # uniquely last among finite nodes because weights are >= 1.  When
    # every finite distance fits int16, sort on negated int16 keys — the
    # same ordering relation and tie behavior, but radix-sortable.
    if dmax < 32000.0:
        neg = np.where(fin, -dist_rows, 32767.0).astype(np.int16)
    else:
        neg = np.where(fin, -dist_rows, np.inf)
    order2d = np.argsort(neg, axis=1, kind="stable")
    num_finite = fin.sum(axis=1)
    sizes = np.maximum(num_finite - 1, 0)
    node_bounds = np.concatenate(([0], np.cumsum(sizes)))
    total = int(node_bounds[-1])
    rows_g = np.repeat(np.arange(k, dtype=np.int64), sizes)
    cols_g = np.arange(total) - node_bounds[:-1].repeat(sizes)
    rn = rows_g * n
    order_cat = order2d.reshape(-1).take(rn + cols_g)

    levels_cat = np.zeros(total, dtype=np.int64)
    oc_cat = np.empty(total, dtype=np.int64)
    starts = np.empty(total, dtype=np.int64)
    if total:
        # Segmented level ids: +1 whenever the distance changes within a
        # row; a global cumsum re-zeroed at each row start.  The sort
        # keys compare equal exactly when the distances do, so they
        # serve as the level-change test too.
        dv = neg.reshape(-1).take(rn + order_cat)
        inc = np.zeros(total, dtype=np.int32)
        inc[1:] = (dv[1:] != dv[:-1]) & (rows_g[1:] == rows_g[:-1])
        cum = np.cumsum(inc)
        per_row = np.diff(node_bounds)
        first = np.zeros(k, dtype=np.int32)
        nonempty = per_row > 0
        first[nonempty] = cum[node_bounds[:-1][nonempty]]
        levels_cat = cum - np.repeat(first, per_row)

        ipf = indptr2d.reshape(-1)
        flat_no = rows_g * (n + 1) + order_cat
        at_node = ipf.take(flat_no)
        oc_cat = ipf.take(flat_no + 1) - at_node
        starts = row_bounds[rows_g] + at_node

    return (
        links_all,
        row_bounds,
        indptr2d,
        rows_g,
        order_cat,
        levels_cat,
        oc_cat,
        starts,
        node_bounds,
    )


def slice_destination_dags(dests, arrays) -> list[DestinationDag]:
    """Materialize per-destination :class:`DestinationDag` views.

    ``arrays`` is the flattened bundle returned through
    :func:`build_arrays_and_schedule`; slicing is cheap but not free
    (~microseconds per destination), so schedule-only callers defer it
    until some caller actually asks for the DAG tuples.
    """
    (
        links_all,
        row_bounds,
        indptr2d,
        _rows_g,
        order_cat,
        levels_cat,
        oc_cat,
        _starts,
        node_bounds,
    ) = arrays
    rb = row_bounds.tolist()  # python ints slice ~3x faster than np scalars
    nb = node_bounds.tolist()
    dags = []
    for i, t in enumerate(dests):
        a, b = nb[i], nb[i + 1]
        dags.append(
            DestinationDag(
                t,
                indptr2d[i],
                links_all[rb[i] : rb[i + 1]],
                order_cat[a:b],
                levels_cat[a:b],
                oc_cat[a:b],
            )
        )
    return dags


def build_destination_dags(net, weights, dist_rows, dests) -> list[DestinationDag]:
    """SoA DAGs for several destinations from one broadcast slack test.

    Args:
        net: The network.
        weights: Per-link weights ``dist_rows`` was computed with.
        dist_rows: ``(k, num_nodes)`` distance rows, ``dist_rows[i, u] =
            dist(u, dests[i])``.
        dests: The ``k`` destination nodes, aligned with ``dist_rows``.

    Returns:
        One :class:`DestinationDag` per destination, in ``dests`` order.
    """
    dests = [int(t) for t in dests]
    dist_rows = np.asarray(dist_rows, dtype=float)
    return slice_destination_dags(dests, _dag_arrays(net, weights, dist_rows))


def build_arrays_and_schedule(net, weights, dist_rows, dests, link_dst):
    """Flattened DAG arrays plus their compiled schedule in one pass.

    Equivalent to ``dags = build_destination_dags(...)`` followed by
    ``build_schedule(dags, ...)``, but the schedule is compiled straight
    from the flattened arrays the DAG builder already produced — the
    from-scratch evaluator path, where no destination is cached yet.
    Returns ``(arrays, schedule)``; pass ``arrays`` to
    :func:`slice_destination_dags` to materialize the per-destination
    tuples (deferred because load-mode evaluations never read them).
    """
    dests = [int(t) for t in dests]
    dist_rows = np.asarray(dist_rows, dtype=float)
    arrays = _dag_arrays(net, weights, dist_rows)
    links_all = arrays[0]
    rows_g, order_cat, levels_cat, oc_cat, starts = arrays[3:8]
    k, n, m = len(dests), net.num_nodes, net.num_links
    if order_cat.size == 0:
        return arrays, Schedule(k, n, m)
    schedule = _compile_schedule(
        order_cat, levels_cat, oc_cat, links_all, starts, rows_g, link_dst, k, n, m
    )
    return arrays, schedule


def _ragged_gather(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Indices ``concat(arange(s, s + c) for s, c in zip(starts, counts))``."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    exclusive = np.cumsum(counts) - counts
    return np.repeat(starts - exclusive, counts) + np.arange(total)


def build_schedule(dags, link_dst, num_nodes: int, num_links: int) -> Schedule:
    """Compile an accumulation plan for a list of DAG rows.

    The same :class:`DestinationDag` may appear several times — each
    occurrence is an independent row (the pair-fraction path batches one
    destination against many unit injections this way).

    Args:
        dags: One DAG per row.
        link_dst: ``net.link_destinations()``.
        num_nodes: Node count (flow-buffer row stride).
        num_links: Link count (load-buffer row stride).
    """
    started = perf_counter()
    k = len(dags)
    if k == 0:
        return Schedule(0, num_nodes, num_links)
    n, m = num_nodes, num_links

    sizes = np.fromiter((dag.order.size for dag in dags), dtype=np.int64, count=k)
    if int(sizes.sum()) == 0:
        return Schedule(k, n, m)
    node_cat = np.concatenate([dag.order for dag in dags])
    level_cat = np.concatenate([dag.levels for dag in dags])
    count_cat = np.concatenate([dag.order_counts for dag in dags])
    # Link pool: each distinct DAG's CSR link stream appears once;
    # repeated rows (the pair-fraction batching routes one destination
    # against many injections) point into the same pool segment.
    pool_parts: list[np.ndarray] = []
    pool_offset: dict[int, int] = {}
    starts_parts = []
    offset = 0
    for dag in dags:
        off = pool_offset.get(id(dag))
        if off is None:
            pool_offset[id(dag)] = off = offset
            pool_parts.append(dag.links)
            offset += dag.links.size
        starts_parts.append(dag.indptr[dag.order] + off)
    link_pool = np.concatenate(pool_parts)
    link_starts = np.concatenate(starts_parts)
    row_cat = np.repeat(np.arange(k, dtype=np.int64), sizes)
    schedule = _compile_schedule(
        node_cat, level_cat, count_cat, link_pool, link_starts, row_cat, link_dst, k, n, m
    )
    _OBS_SCHEDULE_SECONDS.observe(perf_counter() - started)
    return schedule


def _compile_schedule(
    node_cat, level_cat, count_cat, link_pool, link_starts, row_cat, link_dst, k, n, m
) -> Schedule:
    """Compile a schedule from flattened per-row sequences.

    ``link_starts[i]`` is the offset into ``link_pool`` of the
    ``count_cat[i]`` out-links of node position ``i``.  Everything is
    computed in ONE flattened pass over all rows, sorted by distance
    level; the per-step loop at the end only takes slices.  Stability of
    the level sort keeps the within-level order (row, then
    farthest-first node position) the scalar loop has.
    """
    num_steps = int(level_cat.max()) + 1
    if num_steps < 32000:  # radix-sortable level keys (the usual case)
        by_level = np.argsort(level_cat.astype(np.int16), kind="stable")
    else:
        by_level = np.argsort(level_cat, kind="stable")
    bounds = np.searchsorted(level_cat[by_level], np.arange(num_steps + 1))
    # Index arrays stay int64 (numpy's intp): narrower dtypes would be
    # converted back on every fancy-index call in the hot loop.
    row_lv = row_cat[by_level]
    counts_lv = count_cat[by_level]
    counts_f_lv = counts_lv.astype(float)
    flow_pos_lv = row_lv * n + node_cat[by_level]

    lidx = _ragged_gather(link_starts[by_level], counts_lv)
    links_lv = link_pool[lidx]
    link_row_lv = row_lv.repeat(counts_lv)
    load_pos_lv = link_row_lv * m + links_lv
    flow_dst_pos = link_row_lv * n + link_dst[links_lv]
    rep_lv = np.repeat(np.arange(counts_lv.size, dtype=np.int64), counts_lv)
    link_bounds = np.concatenate(([0], np.cumsum(counts_lv)))[bounds].tolist()
    bounds = bounds.tolist()

    steps = []
    for s in range(num_steps):
        a, b = bounds[s], bounds[s + 1]
        la, lb = link_bounds[s], link_bounds[s + 1]
        steps.append(
            _Step(
                flow_pos=flow_pos_lv[a:b],
                counts_f=counts_f_lv[a:b],
                rep=rep_lv[la:lb] - a,
                dst_pos=flow_dst_pos[la:lb],
            )
        )
    return Schedule(k, n, m, tuple(steps), load_pos_lv)


def accumulate_rows(schedule: Schedule, injections: np.ndarray) -> np.ndarray:
    """Run a schedule: per-row ECMP load accumulation in lockstep.

    Args:
        schedule: Output of :func:`build_schedule`.
        injections: ``(num_rows, num_nodes)`` per-row injections (row
            ``i`` is the demand toward row ``i``'s destination).

    Returns:
        ``(num_rows, num_links)`` load rows, bit-identical to running the
        scalar accumulation loop on each row separately.
    """
    k, n, m = schedule.num_rows, schedule.num_nodes, schedule.num_links
    started = perf_counter()
    _OBS_ACCUMULATE_ROWS.observe(k)
    inj = np.asarray(injections, dtype=float)
    if inj.shape != (k, n):
        raise ValueError(f"expected injections of shape ({k}, {n}), got {inj.shape}")
    flow = np.array(inj, dtype=float, copy=True, order="C").reshape(k * n)
    rows = np.zeros(k * m)
    if schedule.steps:
        chunks = []
        for step in schedule.steps:
            shares = flow.take(step.flow_pos)
            shares /= step.counts_f
            per_link = shares.take(step.rep)
            chunks.append(per_link)
            # Unbuffered scatter-add: contributions land per slot in
            # stream order, which is the scalar loop's order.
            np.add.at(flow, step.dst_pos, per_link)
        # Load slots are unique across the whole run and never feed the
        # flow recursion, so one deferred fancy += lands each slot's
        # single 0.0 + share addition — the scalar loop's exact bits.
        rows[schedule.load_pos] += np.concatenate(chunks)
    _OBS_ACCUMULATE_SECONDS.observe(perf_counter() - started)
    return rows.reshape(k, m)
