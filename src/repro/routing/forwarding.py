"""Hop-by-hop packet forwarding over multi-topology routing.

Routers forward per destination and per topology: a packet marked with a
traffic class is matched against that class's FIB at every hop, with ECMP
choosing among equal-cost next hops (hash-based in real routers, random
here).  This module builds FIBs from a :class:`MultiTopology` and walks
packets through them — the executable counterpart of the flow-level load
model, used to check forwarding consistency and loop-freedom.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.determinism import default_rng
from repro.routing.multi_topology import MultiTopology
from repro.routing.spf import RoutingError


@dataclass(frozen=True)
class ForwardingTable:
    """A per-class FIB: ``next_hops[node][dst]`` lists ECMP next hops."""

    class_label: str
    next_hops: tuple[tuple[tuple[int, ...], ...], ...]

    def lookup(self, node: int, dst: int) -> tuple[int, ...]:
        """ECMP next-hop set at ``node`` for destination ``dst``."""
        return self.next_hops[node][dst]


def build_forwarding_table(mtr: MultiTopology, class_label: str) -> ForwardingTable:
    """Materialize the FIB of one traffic class from its routing."""
    routing = mtr.routing(class_label)
    n = mtr.network.num_nodes
    table = tuple(
        tuple(
            tuple(routing.next_hops(node, dst)) if node != dst else ()
            for dst in range(n)
        )
        for node in range(n)
    )
    return ForwardingTable(class_label=class_label, next_hops=table)


@dataclass(frozen=True)
class PacketTrace:
    """The path one packet took through the network.

    Attributes:
        class_label: Traffic class the packet was marked with.
        path: Node sequence from source to destination.
        links: Link indices traversed, aligned with ``path`` transitions.
    """

    class_label: str
    path: tuple[int, ...]
    links: tuple[int, ...]

    @property
    def hop_count(self) -> int:
        """Number of links traversed."""
        return len(self.links)


def trace_packet(
    mtr: MultiTopology,
    class_label: str,
    src: int,
    dst: int,
    rng: Optional[random.Random] = None,
    max_hops: Optional[int] = None,
) -> PacketTrace:
    """Forward one packet hop by hop and return its path.

    At each hop a uniformly random ECMP next hop is taken, emulating
    per-flow hashing across the shortest-path DAG.

    Args:
        mtr: The multi-topology routing state.
        class_label: Which class (topology) the packet belongs to.
        src: Ingress node.
        dst: Egress node.
        rng: Source of randomness; a fresh unseeded one is created if omitted.
        max_hops: Abort threshold (defaults to ``num_nodes``); exceeded
            only if forwarding loops, which shortest-path DAGs forbid.

    Returns:
        A :class:`PacketTrace`.

    Raises:
        RoutingError: if the destination is unreachable or the hop budget
            is exceeded (would indicate a forwarding loop).
    """
    rng = rng or default_rng("routing/forwarding")
    net = mtr.network
    routing = mtr.routing(class_label)
    limit = max_hops if max_hops is not None else net.num_nodes
    path = [src]
    links = []
    node = src
    while node != dst:
        if len(links) >= limit:
            raise RoutingError(
                f"packet exceeded {limit} hops from {src} to {dst} (loop?)"
            )
        next_hops = routing.next_hops(node, dst)
        if not next_hops:
            raise RoutingError(f"node {dst} unreachable from node {node}")
        nxt = next_hops[rng.randrange(len(next_hops))]
        links.append(net.link_between(node, nxt).index)
        path.append(nxt)
        node = nxt
    return PacketTrace(class_label=class_label, path=tuple(path), links=tuple(links))


def trace_many(
    mtr: MultiTopology,
    class_label: str,
    src: int,
    dst: int,
    count: int,
    rng: Optional[random.Random] = None,
) -> list[PacketTrace]:
    """Trace ``count`` packets of one class between the same pair."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    rng = rng or default_rng("routing/forwarding")
    return [trace_packet(mtr, class_label, src, dst, rng) for _ in range(count)]


def empirical_link_usage(traces: list[PacketTrace], num_links: int) -> list[float]:
    """Fraction of traced packets crossing each link.

    With many traces this converges to the flow-level
    :meth:`~repro.routing.state.Routing.pair_link_fractions` — the check
    that the analytic load model and hop-by-hop forwarding agree.
    """
    if not traces:
        raise ValueError("need at least one trace")
    counts = [0] * num_links
    for trace in traces:
        for link in trace.links:
            counts[link] += 1
    return [c / len(traces) for c in counts]
