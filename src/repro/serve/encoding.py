"""Deterministic JSON encoding of query answers.

The serving stack's bit-identity contract is stated over *bytes*: the
body an HTTP client receives for a scenario query must equal, byte for
byte, the encoding of a direct :meth:`repro.api.Session.under_scenario`
call on the same session — whether the answer came fresh from the sweep
engine, coalesced through a micro-batch, or straight out of the plan
cache.  That only holds if encoding is a pure function of the result, so
it lives here, in one place, and every layer (scheduler, cache, HTTP
handler, differential tests, benchmark) calls exactly these functions.

``canonical_body`` fixes key order and separators the same way the
campaign store's ``canonical_dumps`` does; floats rely on ``json``'s
shortest-repr float formatting, which is deterministic for identical
IEEE-754 values — and the evaluation pipeline produces identical values
for identical queries (the evaluator's fixed-order row summation).
"""

from __future__ import annotations

import json
from typing import Any

from repro.api.queries import WhatIfResult
from repro.scenarios.aggregate import MetricAggregate
from repro.scenarios.batch import SweepResult
from repro.scenarios.spaces import SpaceSweepResult


def canonical_body(payload: Any) -> bytes:
    """Canonical JSON bytes of a payload: sorted keys, fixed separators."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")


def whatif_payload(result: WhatIfResult) -> dict:
    """JSON-safe encoding of one what-if query answer.

    Everything a client needs to act on the answer — objectives, the
    per-link utilization shifts in intact indexing, the disconnection
    account — without the raw evaluations (whose load arrays the deltas
    already summarize).
    """
    return {
        "kind": result.kind,
        "scenario_kind": result.scenario_kind,
        "description": result.description,
        "baseline_objective": list(result.baseline_objective.values),
        "variant_objective": list(result.variant_objective.values),
        "primary_delta": result.primary_delta,
        "secondary_delta": result.secondary_delta,
        "baseline_max_utilization": result.baseline.max_utilization,
        "variant_max_utilization": result.variant.max_utilization,
        "max_utilization_delta": result.max_utilization_delta,
        "utilization_delta": result.utilization_delta.tolist(),
        "high_utilization_delta": result.high_utilization_delta.tolist(),
        "low_utilization_delta": result.low_utilization_delta.tolist(),
        "disconnected": result.disconnected,
        "lost_demand": result.lost_demand,
        "improves": result.improves,
    }


def sweep_payload(result: SweepResult, scenario_specs: list) -> dict:
    """JSON-safe encoding of one batched sweep answer.

    Args:
        result: The engine's sweep result.
        scenario_specs: Canonical spec string of each outcome's scenario,
            aligned with ``result.outcomes`` (the request's expansion
            order).
    """
    outcomes = []
    for spec_text, outcome in zip(scenario_specs, result.outcomes):
        objective = outcome.objective
        outcomes.append(
            {
                "scenario": spec_text,
                "kind": outcome.kind,
                "description": outcome.description,
                "objective": list(objective.values),
                "max_utilization": outcome.evaluation.max_utilization,
                "disconnected": outcome.disconnected,
                "lost_demand": outcome.lost_demand,
            }
        )
    by_class = {
        kind: {
            "scenarios": summary.scenarios,
            "disconnected": summary.disconnected,
            "worst_primary": summary.worst_primary,
            "mean_primary": summary.mean_primary,
            "worst_secondary": summary.worst_secondary,
            "mean_secondary": summary.mean_secondary,
            "worst_max_utilization": summary.worst_max_utilization,
        }
        for kind, summary in result.by_class().items()
    }
    return {
        "baseline_objective": list(result.baseline.objective.values),
        "baseline_max_utilization": result.baseline.max_utilization,
        "scenarios": len(result.outcomes),
        "disconnected_count": result.disconnected_count,
        "outcomes": outcomes,
        "by_class": by_class,
    }


def _metric_payload(metric: MetricAggregate) -> dict:
    return {
        "worst": metric.worst,
        "mean": metric.mean,
        "percentiles": [[level, value] for level, value in metric.percentiles],
        "cvar": metric.cvar,
    }


def space_payload(result: SpaceSweepResult) -> dict:
    """JSON-safe encoding of one streaming scenario-space sweep answer.

    Only the streaming aggregate crosses the wire — per-scenario outcomes
    are never materialized server-side, so they cannot be encoded either.
    """
    aggregate = result.aggregate
    return {
        "space": result.space,
        "scenarios": result.scenarios,
        "evaluated": result.evaluated,
        "pruned": result.pruned,
        "disconnected": result.disconnected,
        "connected": aggregate.connected,
        "baseline_primary": result.baseline_primary,
        "baseline_secondary": result.baseline_secondary,
        "baseline_max_utilization": result.baseline_max_utilization,
        "primary": _metric_payload(aggregate.primary),
        "secondary": _metric_payload(aggregate.secondary),
        "max_utilization": _metric_payload(aggregate.max_utilization),
    }
