"""The warm-session pool: fully evaluated sessions, keyed canonically.

An online what-if service answers against a *baseline* — a network, two
traffic matrices, a weight setting, and a cost mode — and the expensive
part of a query is everything that baseline implies: routings, per-
destination load rows, the sweep engine's derivation state.  The pool
keeps that state warm across requests.

Keys are content hashes, not identities: a :class:`SessionSpec` is a
canonical description of the baseline (topology family + traffic
parameters + seed + weight setting + cost mode), and
:meth:`SessionSpec.key` is the SHA-256 of its canonical JSON.  Because
:meth:`repro.api.Session.from_config` is a pure function of its config
(all randomness flows from SHA-derived streams), **rebuild-on-miss is
deterministic**: evicting a session and rebuilding it from the same spec
yields a session whose query answers are byte-identical to the evicted
one's — the property that lets the pool evict freely under memory
pressure without ever changing a response.

Eviction is LRU with a configurable capacity; every build runs
:meth:`~repro.api.Session.prepare`, so a pooled session answers its
first query at warm-path latency.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.api.session import Session
from repro.eval.experiment import ExperimentConfig
from repro.obs import MetricsRegistry
from repro.routing.weights import unit_weights

UNIT_WEIGHTS = "unit"
"""The default weight policy: hop-count (all-ones) weights."""

WeightsLike = Union[str, tuple, list, dict]

_SPEC_FIELDS = (
    "topology", "mode", "utilization", "fraction", "density", "seed", "weights",
)


def _canonical_weights(weights: WeightsLike) -> Union[str, tuple]:
    """Normalize a weight policy to its canonical, hashable form.

    ``"unit"`` stays symbolic; explicit vectors become
    ``(("high", (...)), ("low", (...)))`` tuples of ints, with ``low``
    defaulting to ``high`` (the STR deployment).
    """
    if isinstance(weights, str):
        if weights != UNIT_WEIGHTS:
            raise ValueError(
                f"unknown weight policy {weights!r}: expected {UNIT_WEIGHTS!r}, "
                "a weight list, or {'high': [...], 'low': [...]}"
            )
        return UNIT_WEIGHTS
    if isinstance(weights, dict):
        unknown = set(weights) - {"high", "low"}
        if unknown:
            raise ValueError(f"unknown weight keys {sorted(unknown)}")
        if "high" not in weights:
            raise ValueError("a weights mapping needs at least 'high'")
        high = tuple(int(w) for w in weights["high"])
        low = tuple(int(w) for w in weights.get("low", high))
        return (("high", high), ("low", low))
    high = tuple(int(w) for w in weights)
    return (("high", high), ("low", high))


@dataclass(frozen=True)
class SessionSpec:
    """Canonical description of one servable baseline.

    The experiment-grid coordinates every other layer already uses
    (``repro-dtr optimize``, campaigns), plus the baseline weight
    setting.  Two specs with equal fields hash to the same pool key, and
    a spec fully determines the session built from it.
    """

    topology: str = "random"
    mode: str = "load"
    utilization: float = 0.6
    fraction: float = 0.30
    density: float = 0.10
    seed: int = 1
    weights: Union[str, tuple] = field(default=UNIT_WEIGHTS)

    def __post_init__(self) -> None:
        object.__setattr__(self, "weights", _canonical_weights(self.weights))
        # Fail fast on bad grid coordinates, before a build is attempted.
        self.to_config()

    @classmethod
    def from_jsonable(cls, data: Optional[dict]) -> "SessionSpec":
        """Build a spec from a JSON request body (``None`` -> defaults).

        Raises:
            ValueError: on unknown fields or malformed values — the HTTP
                layer turns this into a 400, never a silent default.
        """
        if data is None:
            return cls()
        if not isinstance(data, dict):
            raise ValueError(f"session spec must be an object, got {type(data).__name__}")
        unknown = set(data) - set(_SPEC_FIELDS)
        if unknown:
            raise ValueError(
                f"unknown session spec fields {sorted(unknown)}; "
                f"expected a subset of {list(_SPEC_FIELDS)}"
            )
        return cls(**{k: data[k] for k in _SPEC_FIELDS if k in data})

    def to_jsonable(self) -> dict:
        """The canonical JSON form the key is hashed over."""
        weights = self.weights
        if weights != UNIT_WEIGHTS:
            weights = {name: list(vector) for name, vector in weights}
        return {
            "topology": self.topology,
            "mode": self.mode,
            "utilization": self.utilization,
            "fraction": self.fraction,
            "density": self.density,
            "seed": self.seed,
            "weights": weights,
        }

    def key(self) -> str:
        """SHA-256 over the canonical JSON of this spec (the pool key)."""
        text = json.dumps(self.to_jsonable(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()[:20]

    def to_config(self) -> ExperimentConfig:
        """The experiment config the session is built from."""
        return ExperimentConfig(
            topology=self.topology,
            mode=self.mode,
            target_utilization=self.utilization,
            high_fraction=self.fraction,
            high_density=self.density,
            seed=self.seed,
        )

    def build(self) -> Session:
        """Deterministically build and warm the session this spec names."""
        session = Session.from_config(self.to_config())
        # This session is freshly built and not yet shared — no other
        # thread can hold a reference until build() returns it to the
        # pool, so the lock discipline does not apply here.
        if self.weights == UNIT_WEIGHTS:
            session.set_weights(  # repro-lint: disable=RL004
                unit_weights(session.network.num_links)
            )
        else:
            vectors = dict(self.weights)
            session.set_weights(  # repro-lint: disable=RL004
                vectors["high"], vectors["low"]
            )
        return session.prepare()


class SessionPool:
    """An LRU pool of warm sessions keyed by :meth:`SessionSpec.key`.

    Thread-safe: lookups, inserts, and evictions run under one pool
    lock.  A miss *builds under the lock* — deliberately, so concurrent
    requests for the same cold baseline trigger one build, not several;
    requests for already-warm sessions queue briefly behind it, which is
    the right trade for a pool whose hit path is the common case.  The
    returned sessions are shared objects: callers that evaluate on them
    concurrently must hold ``session.lock`` (the scheduler does).
    """

    def __init__(self, capacity: int = 4, registry: Optional["MetricsRegistry"] = None) -> None:
        if capacity < 1:
            raise ValueError("pool capacity must be >= 1")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._sessions: OrderedDict[str, tuple[SessionSpec, Session]] = OrderedDict()
        self.registry = registry if registry is not None else MetricsRegistry()
        _events = "repro_serve_pool_events_total"
        _help = "Session-pool lookup outcomes, builds, and evictions."
        self._hits = self.registry.counter(_events, _help, {"event": "hit"})
        self._misses = self.registry.counter(_events, _help, {"event": "miss"})
        self._builds = self.registry.counter(_events, _help, {"event": "build"})
        self._evictions = self.registry.counter(_events, _help, {"event": "eviction"})
        self._build_seconds = self.registry.histogram(
            "repro_serve_pool_build_seconds",
            "Wall time to deterministically rebuild a session on miss.",
        )
        self._size = self.registry.gauge(
            "repro_serve_pool_size", "Warm sessions currently pooled."
        )

    def get(self, spec: SessionSpec) -> tuple[str, Session]:
        """The warm session for ``spec``, building (and evicting) on miss.

        Returns:
            ``(key, session)`` — the canonical key is what the plan
            cache and the scheduler group on.
        """
        key = spec.key()
        with self._lock:
            entry = self._sessions.get(key)
            if entry is not None:
                self._sessions.move_to_end(key)
                self._hits.inc()
                return key, entry[1]
            self._misses.inc()
            started = time.perf_counter()
            session = spec.build()
            self._build_seconds.observe(time.perf_counter() - started)
            self._builds.inc()
            self._sessions[key] = (spec, session)
            while len(self._sessions) > self.capacity:
                self._sessions.popitem(last=False)
                self._evictions.inc()
            self._size.set(len(self._sessions))
            return key, session

    def add(self, key: str, spec: Optional[SessionSpec], session: Session) -> None:
        """Pin a prebuilt session under an explicit key (facade entry)."""
        with self._lock:
            self._sessions[key] = (spec, session)
            self._sessions.move_to_end(key)
            while len(self._sessions) > self.capacity:
                self._sessions.popitem(last=False)
                self._evictions.inc()
            self._size.set(len(self._sessions))

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def metrics(self) -> dict:
        """Counters plus current occupancy (the ``/metrics`` JSON block).

        Snapshot under the pool lock — the lock all mutations hold — so
        ``hits + misses == lookups`` and ``builds <= misses`` hold in
        any snapshot.
        """
        with self._lock:
            hits = int(self._hits.value)
            misses = int(self._misses.value)
            return {
                "hits": hits,
                "misses": misses,
                "lookups": hits + misses,
                "builds": int(self._builds.value),
                "evictions": int(self._evictions.value),
                "size": len(self._sessions),
                "capacity": self.capacity,
            }
