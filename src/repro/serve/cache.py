"""The plan cache: canonical scenario spec -> encoded answer.

Scenario queries are pure functions of ``(baseline, scenario)``: the
session's evaluation pipeline is deterministic, so the *first* answer to
a query is also every later answer.  The cache therefore stores the
**encoded payload** (the JSON-safe dict of
:func:`repro.serve.encoding.whatif_payload`), not the live result — a
hit serves the exact bytes a fresh evaluation would have produced,
keeping the bit-identity contract trivially true on both paths.

Keys are ``(session key, canonical scenario spec)`` where the spec text
is canonicalized through the scenario grammar
(:func:`repro.scenarios.spec.canonical_spec`): ``"link:2-5, 0-4"`` and
``"link:0-4,2-5"`` are one entry, so operators probing the same failure
in different spellings share work.  Eviction is LRU; hit/miss/eviction
counters feed ``/metrics``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Optional

from repro.obs import MetricsRegistry


class PlanCache:
    """A thread-safe LRU of encoded query answers.

    Counters are registry-backed :mod:`repro.obs` instruments on a
    per-cache registry (two services in one process never share
    counters).  Every mutation happens under the cache lock, and
    :meth:`metrics` reads under the same lock, so any snapshot — even
    one taken mid-storm — satisfies ``hits + misses == lookups``.

    Args:
        capacity: Entries kept; a what-if payload is a few KB (three
            per-link float arrays), so the default bounds the cache at a
            few MB.
        registry: Instrument home; a private one by default.
    """

    def __init__(self, capacity: int = 1024, registry: Optional[MetricsRegistry] = None) -> None:
        if capacity < 1:
            raise ValueError("plan cache capacity must be >= 1")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._store: OrderedDict[tuple[str, str], dict] = OrderedDict()
        self.registry = registry if registry is not None else MetricsRegistry()
        _events = "repro_serve_plan_cache_events_total"
        _help = "Plan-cache lookup outcomes and evictions."
        self._hits = self.registry.counter(_events, _help, {"event": "hit"})
        self._misses = self.registry.counter(_events, _help, {"event": "miss"})
        self._evictions = self.registry.counter(_events, _help, {"event": "eviction"})
        self._size = self.registry.gauge(
            "repro_serve_plan_cache_size", "Entries currently cached."
        )

    def get_or_compute(
        self,
        session_key: str,
        canonical: str,
        compute: Callable[[], dict],
    ) -> tuple[dict, bool]:
        """The cached payload for a canonical spec, computing on miss.

        ``compute`` runs *outside* the cache lock (it holds the session
        lock for the duration of an evaluation; nesting the cache lock
        around it would serialize unrelated sessions behind one slow
        query).  Two threads racing on the same cold key may therefore
        both compute — and, determinism again, compute *equal* payloads,
        so last-write-wins is harmless.

        Returns:
            ``(payload, hit)`` — ``hit`` feeds the request log and the
            scheduler's counters.
        """
        key = (session_key, canonical)
        with self._lock:
            entry = self._store.get(key)
            if entry is not None:
                self._store.move_to_end(key)
                self._hits.inc()
                return entry, True
            self._misses.inc()
        payload = compute()
        with self._lock:
            self._store[key] = payload
            self._store.move_to_end(key)
            while len(self._store) > self.capacity:
                self._store.popitem(last=False)
                self._evictions.inc()
            self._size.set(len(self._store))
        return payload, False

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def metrics(self) -> dict:
        """Counters plus occupancy (the ``/metrics`` JSON block).

        Taken under the cache lock — the same lock every counter
        mutation holds — so ``hits + misses == lookups`` in any
        snapshot, concurrent storm or not.
        """
        with self._lock:
            hits = int(self._hits.value)
            misses = int(self._misses.value)
            return {
                "hits": hits,
                "misses": misses,
                "lookups": hits + misses,
                "evictions": int(self._evictions.value),
                "size": len(self._store),
                "capacity": self.capacity,
            }
