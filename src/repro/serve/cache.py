"""The plan cache: canonical scenario spec -> encoded answer.

Scenario queries are pure functions of ``(baseline, scenario)``: the
session's evaluation pipeline is deterministic, so the *first* answer to
a query is also every later answer.  The cache therefore stores the
**encoded payload** (the JSON-safe dict of
:func:`repro.serve.encoding.whatif_payload`), not the live result — a
hit serves the exact bytes a fresh evaluation would have produced,
keeping the bit-identity contract trivially true on both paths.

Keys are ``(session key, canonical scenario spec)`` where the spec text
is canonicalized through the scenario grammar
(:func:`repro.scenarios.spec.canonical_spec`): ``"link:2-5, 0-4"`` and
``"link:0-4,2-5"`` are one entry, so operators probing the same failure
in different spellings share work.  Eviction is LRU; hit/miss/eviction
counters feed ``/metrics``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable


class PlanCache:
    """A thread-safe LRU of encoded query answers.

    Args:
        capacity: Entries kept; a what-if payload is a few KB (three
            per-link float arrays), so the default bounds the cache at a
            few MB.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("plan cache capacity must be >= 1")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._store: OrderedDict[tuple[str, str], dict] = OrderedDict()
        self.stats = {"hits": 0, "misses": 0, "evictions": 0}

    def get_or_compute(
        self,
        session_key: str,
        canonical: str,
        compute: Callable[[], dict],
    ) -> tuple[dict, bool]:
        """The cached payload for a canonical spec, computing on miss.

        ``compute`` runs *outside* the cache lock (it holds the session
        lock for the duration of an evaluation; nesting the cache lock
        around it would serialize unrelated sessions behind one slow
        query).  Two threads racing on the same cold key may therefore
        both compute — and, determinism again, compute *equal* payloads,
        so last-write-wins is harmless.

        Returns:
            ``(payload, hit)`` — ``hit`` feeds the request log and the
            scheduler's counters.
        """
        key = (session_key, canonical)
        with self._lock:
            entry = self._store.get(key)
            if entry is not None:
                self._store.move_to_end(key)
                self.stats["hits"] += 1
                return entry, True
            self.stats["misses"] += 1
        payload = compute()
        with self._lock:
            self._store[key] = payload
            self._store.move_to_end(key)
            while len(self._store) > self.capacity:
                self._store.popitem(last=False)
                self.stats["evictions"] += 1
        return payload, False

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def metrics(self) -> dict:
        """Counters plus occupancy (the ``/metrics`` block)."""
        with self._lock:
            return {**self.stats, "size": len(self._store), "capacity": self.capacity}
