"""``repro.serve`` — the online what-if query service.

Turns the offline evaluation stack into a long-running query engine
(see ``docs/serving.md``):

* :mod:`~repro.serve.pool` — :class:`SessionPool`, warm fully evaluated
  :class:`~repro.api.Session`\\ s keyed by a canonical content hash of
  (network, weights, traffic, cost mode), LRU-evicted and rebuilt
  deterministically on miss;
* :mod:`~repro.serve.scheduler` — :class:`MicroBatchScheduler`,
  coalescing concurrent scenario queries into one sweep-engine batch
  per session, bit-identical to direct ``session.under_scenario``;
* :mod:`~repro.serve.cache` — :class:`PlanCache`, canonical scenario
  spec -> encoded answer, with hit/miss metrics;
* :mod:`~repro.serve.http` — :class:`WhatIfServer`, a stdlib threaded
  JSON frontend (``/whatif``, ``/sweep``, ``/health``, ``/metrics``)
  with JSONL request logging;
* :mod:`~repro.serve.service` — :class:`ServeService`, the facade
  binding the three together (what ``repro-dtr serve`` runs and
  :func:`repro.api.serve_session` returns).

Quickstart::

    from repro.serve import ServeService, SessionSpec, WhatIfServer

    service = ServeService(SessionSpec(topology="isp", utilization=0.5))
    payload, cache_hit = service.whatif("link:0-4+surge:3x2.0")
    server = WhatIfServer(("127.0.0.1", 8093), service)  # then serve_forever()
"""

from repro.serve.cache import PlanCache
from repro.serve.encoding import (
    canonical_body,
    space_payload,
    sweep_payload,
    whatif_payload,
)
from repro.serve.http import WhatIfServer, serve_forever
from repro.serve.pool import SessionPool, SessionSpec
from repro.serve.scheduler import MicroBatchScheduler
from repro.serve.service import ServeService

__all__ = [
    "ServeService",
    "SessionPool",
    "SessionSpec",
    "MicroBatchScheduler",
    "PlanCache",
    "WhatIfServer",
    "serve_forever",
    "whatif_payload",
    "sweep_payload",
    "space_payload",
    "canonical_body",
]
