"""The serving facade: pool + scheduler + plan cache behind one object.

:class:`ServeService` is the piece every frontend talks to — the HTTP
handler, ``repro-dtr query``'s server side, the benchmark's closed-loop
clients, and embedders via :func:`repro.api.serve_session`.  It owns the
warm-session pool, the micro-batch scheduler, and the plan cache, and
exposes the three operations of the online workload:

* :meth:`whatif` — one scenario query, coalesced through the scheduler;
* :meth:`sweep` — a batch of scenarios (explicit specs or whole
  registered kinds), evaluated in one pass over the session's sweep
  engine;
* :meth:`metrics` — the counters of all three components.

Answers are encoded payloads (see :mod:`repro.serve.encoding`);
``canonical_body(payload)`` is the exact byte string the HTTP layer
ships, and the differential tests compare it against direct
:meth:`~repro.api.Session.under_scenario` calls.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro import obs
from repro.api.session import Session
from repro.scenarios.spec import (
    ScenarioSet,
    canonical_space_spec,
    canonical_spec,
    enumerate_scenarios,
    parse_scenario,
)
from repro.serve.cache import PlanCache
from repro.serve.encoding import space_payload, sweep_payload, whatif_payload
from repro.serve.pool import SessionPool, SessionSpec
from repro.serve.scheduler import MicroBatchScheduler


class ServeService:
    """One online what-if service instance.

    Args:
        default_spec: Baseline served when a request names no session.
        pool: Warm-session pool (a fresh 4-entry pool by default).
        cache: Plan cache shared by the scheduler and sweeps.
        scheduler: Micro-batch scheduler; started on construction.
        window_s: Batching window when building the default scheduler.
    """

    def __init__(
        self,
        default_spec: Optional[SessionSpec] = None,
        *,
        pool: Optional[SessionPool] = None,
        cache: Optional[PlanCache] = None,
        scheduler: Optional[MicroBatchScheduler] = None,
        window_s: Optional[float] = None,
    ) -> None:
        self.default_spec = default_spec if default_spec is not None else SessionSpec()
        self.pool = pool if pool is not None else SessionPool()
        if scheduler is None:
            self.cache = cache if cache is not None else PlanCache()
            kwargs = {} if window_s is None else {"window_s": window_s}
            scheduler = MicroBatchScheduler(self.cache, **kwargs)
        else:
            if cache is not None and cache is not scheduler.cache:
                raise ValueError(
                    "pass the cache through the scheduler (or neither): a "
                    "service must report the cache its scheduler writes"
                )
            self.cache = scheduler.cache
        self.scheduler = scheduler
        self.scheduler.start()
        self._pinned: Optional[tuple[str, Session]] = None
        # The frontend's own instruments (request latency, responses)
        # live on a per-service registry like the components'.
        self.registry = obs.MetricsRegistry()

    @classmethod
    def from_session(
        cls, session: Session, key: str = "session", **kwargs
    ) -> "ServeService":
        """Serve one prebuilt session (the :func:`repro.api.serve_session`
        path).

        The session is pinned in the pool under ``key`` and becomes the
        default baseline; requests may still name other
        :class:`SessionSpec` baselines, which build on demand.
        """
        if session._baseline is None:  # fail fast: queries need a baseline
            raise ValueError(
                "session has no baseline weight setting: call "
                "session.optimize(...) or session.set_weights(...) first"
            )
        service = cls(**kwargs)
        session.prepare()
        service.pool.add(key, None, session)
        service._pinned = (key, session)
        return service

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _resolve(self, session_spec: Optional[dict]) -> tuple[str, Session]:
        """The ``(key, warm session)`` a request addresses."""
        if session_spec is None and self._pinned is not None:
            return self._pinned
        spec = (
            self.default_spec
            if session_spec is None
            else SessionSpec.from_jsonable(session_spec)
        )
        return self.pool.get(spec)

    def whatif(
        self, scenario: str, session_spec: Optional[dict] = None
    ) -> tuple[dict, bool]:
        """One scenario query through the micro-batch scheduler.

        Returns:
            ``(payload, cache_hit)``; the payload is bit-identical to
            encoding a direct ``session.under_scenario(scenario)`` call.
        """
        key, session = self._resolve(session_spec)
        return self.scheduler.submit(key, session, scenario).result()

    def sweep(
        self,
        scenarios: Optional[Sequence[str]] = None,
        kinds: Optional[Sequence[str]] = None,
        session_spec: Optional[dict] = None,
        space: Optional[str] = None,
    ) -> dict:
        """A batched sweep: explicit specs, whole kinds, or a space.

        Runs in one pass over the session's sweep engine (a sweep *is*
        already a batch, so it bypasses the scheduler's window), under
        the session lock.  A ``space`` answers from the streaming
        aggregator — per-scenario outcomes are never materialized — and
        is exclusive with explicit ``scenarios``/``kinds``.
        """
        key, session = self._resolve(session_spec)
        if space is not None:
            if scenarios or kinds:
                raise ValueError(
                    "a space sweep streams its own enumeration: pass either "
                    "'space' or 'scenarios'/'kinds', not both"
                )
            spec = canonical_space_spec(space)
            with session.lock:
                return space_payload(session.sweep_space(spec))
        specs: list[str] = [canonical_spec(s) for s in (scenarios or [])]
        with session.lock:
            for kind in kinds or []:
                specs.extend(
                    s.spec() for s in enumerate_scenarios(session.network, kind)
                )
            if not specs:
                raise ValueError("a sweep needs at least one scenario or kind")
            result = session.sweep(ScenarioSet([parse_scenario(s) for s in specs]))
        return sweep_payload(result, specs)

    def whatif_direct(
        self, scenario: str, session_spec: Optional[dict] = None
    ) -> dict:
        """The scheduler-free reference path (differential tests only).

        Evaluates ``session.under_scenario`` directly under the session
        lock and encodes the result — no batching, no plan cache.
        """
        _key, session = self._resolve(session_spec)
        with session.lock:
            return whatif_payload(session.under_scenario(canonical_spec(scenario)))

    # ------------------------------------------------------------------
    # Introspection and lifecycle
    # ------------------------------------------------------------------
    def metrics(self) -> dict:
        """Pool/scheduler/cache counters (the ``/metrics`` JSON body).

        The shape predates :mod:`repro.obs` and is part of the HTTP
        contract (``examples/serve_smoke.py`` asserts it); each block is
        a consistent snapshot taken under its component's own lock.
        """
        return {
            "pool": self.pool.metrics(),
            "scheduler": self.scheduler.metrics(),
            "plan_cache": self.cache.metrics(),
        }

    def metrics_samples(self) -> list[dict]:
        """Every instrument sample this service can see, merged.

        The union of the per-component registries (pool, scheduler,
        plan cache, the frontend's own) and the process-wide default
        registry (evaluator, kernels, sweep engines) — what
        ``GET /metrics?format=prometheus`` renders.  Component registry
        objects may be shared (a scheduler built around the service's
        cache); duplicates are skipped by identity.
        """
        samples: list[dict] = []
        seen: set[int] = set()
        registries = [
            self.registry,
            self.pool.registry,
            self.scheduler.registry,
            self.cache.registry,
            obs.REGISTRY,
        ]
        for registry in registries:
            if id(registry) in seen:
                continue
            seen.add(id(registry))
            samples.extend(registry.snapshot())
        return samples

    def close(self) -> None:
        """Stop the scheduler (queued queries drain first)."""
        self.scheduler.stop()

    def __enter__(self) -> "ServeService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
