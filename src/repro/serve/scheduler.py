"""The micro-batching scheduler: coalesce concurrent scenario queries.

Concurrent what-if queries against one baseline repeat each other's
work: scenarios failing the same elements share a topology projection,
degraded routings derive from one intact parent, and unaffected load
rows are reusable across queries — exactly the structure the
:class:`~repro.scenarios.batch.SweepEngine` exploits for offline sweeps.
The scheduler brings that to the online path: requests arriving within a
small window are drained into one batch, grouped by session, and
evaluated back to back through the session's (single, shared) sweep
engine while holding ``session.lock`` once per group instead of once per
request.

Two properties make this safe:

* **Determinism** — each query is still answered by exactly
  ``session.under_scenario(spec)``; batching changes only *when* the
  evaluation runs and what engine memos it finds warm, never the
  arithmetic, so a batched answer is bit-identical to a direct call
  (enforced by ``tests/test_serve_scheduler.py`` and the differential
  HTTP tests).
* **Isolation** — groups touch disjoint sessions, and within a group
  the engine is driven by one thread at a time under the session lock
  (see the thread-safety note on :mod:`repro.api.session`).

Callers get a :class:`concurrent.futures.Future` per query; the HTTP
frontend blocks on it, keeping request threads simple while the
dispatcher owns all evaluation.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Optional

from repro.api.session import Session
from repro.obs import SIZE_BUCKETS, MetricsRegistry
from repro.obs import span as obs_span
from repro.scenarios.spec import canonical_spec
from repro.serve.cache import PlanCache
from repro.serve.encoding import whatif_payload

DEFAULT_WINDOW_S = 0.005
"""Batching window: how long the dispatcher keeps draining after the
first request of a batch.  Small enough to be invisible per query, long
enough to coalesce genuinely concurrent arrivals."""

DEFAULT_MAX_BATCH = 64


@dataclass
class _Job:
    session_key: str
    session: Session
    canonical: str
    future: Future = field(default_factory=Future)
    submitted: float = field(default_factory=time.perf_counter)


class MicroBatchScheduler:
    """Coalesces scenario queries into per-session batches.

    Args:
        cache: The plan cache answers are stored in (one per service).
        window_s: Drain window after the first job of a batch.
        max_batch: Upper bound on jobs per batch.
    """

    def __init__(
        self,
        cache: Optional[PlanCache] = None,
        *,
        window_s: float = DEFAULT_WINDOW_S,
        max_batch: int = DEFAULT_MAX_BATCH,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.cache = cache if cache is not None else PlanCache()
        self.window_s = float(window_s)
        self.max_batch = int(max_batch)
        self._queue: "queue.Queue[_Job]" = queue.Queue()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._stats_lock = threading.Lock()
        self.registry = registry if registry is not None else MetricsRegistry()
        _events = "repro_serve_scheduler_events_total"
        _help = "Scheduler query/batch/cache/error counts."
        self._queries = self.registry.counter(_events, _help, {"event": "query"})
        self._batches = self.registry.counter(_events, _help, {"event": "batch"})
        self._coalesced = self.registry.counter(_events, _help, {"event": "coalesced_query"})
        self._cache_hits = self.registry.counter(_events, _help, {"event": "cache_hit"})
        self._errors = self.registry.counter(_events, _help, {"event": "error"})
        self._max_batch_seen = self.registry.gauge(
            "repro_serve_scheduler_max_batch_size", "Largest batch drained so far."
        )
        self._batch_size = self.registry.histogram(
            "repro_serve_scheduler_batch_size",
            "Jobs per drained micro-batch.",
            buckets=SIZE_BUCKETS,
        )
        self._queue_wait = self.registry.histogram(
            "repro_serve_scheduler_queue_wait_seconds",
            "Submit-to-dispatch wait per job.",
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "MicroBatchScheduler":
        """Start the dispatcher thread (idempotent)."""
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop, name="serve-scheduler", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the dispatcher; queued jobs are still drained first."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self._drain_now()  # anything enqueued after the last loop pass

    def __enter__(self) -> "MicroBatchScheduler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, session_key: str, session: Session, scenario: str) -> Future:
        """Enqueue one scenario query; the future resolves to
        ``(payload, cache_hit)``.

        The spec is parsed and canonicalized *here*, on the caller's
        thread, so malformed specs and unknown kinds raise immediately
        (the HTTP layer maps them to 400) and never occupy the batch
        pipeline.
        """
        canonical = canonical_spec(scenario)
        job = _Job(session_key=session_key, session=session, canonical=canonical)
        if self._thread is None:
            raise RuntimeError("scheduler is not running: call start() first")
        self._queue.put(job)
        return job.future

    # ------------------------------------------------------------------
    # Dispatcher
    # ------------------------------------------------------------------
    def _loop(self) -> None:
        while not self._stop.is_set():
            try:
                first = self._queue.get(timeout=0.05)
            except queue.Empty:
                continue
            self._process(self._drain_batch(first))
        self._drain_now()

    def _drain_batch(self, first: _Job) -> list[_Job]:
        """The micro-batch: keep draining until the window closes."""
        batch = [first]
        deadline = time.monotonic() + self.window_s
        while len(batch) < self.max_batch:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                batch.append(self._queue.get(timeout=remaining))
            except queue.Empty:
                break
        return batch

    def _drain_now(self) -> None:
        """Process whatever is queued without waiting (shutdown path)."""
        batch = []
        while True:
            try:
                batch.append(self._queue.get_nowait())
            except queue.Empty:
                break
        if batch:
            self._process(batch)

    def _process(self, batch: list[_Job]) -> None:
        dispatched = time.perf_counter()
        with self._stats_lock:
            self._queries.inc(len(batch))
            self._batches.inc()
            if len(batch) > int(self._max_batch_seen.value):
                self._max_batch_seen.set(len(batch))
            if len(batch) > 1:
                self._coalesced.inc(len(batch))
            self._batch_size.observe(len(batch))
            for job in batch:
                self._queue_wait.observe(dispatched - job.submitted)
        groups: dict[str, list[_Job]] = {}
        for job in batch:  # arrival order, stable within each group
            groups.setdefault(job.session_key, []).append(job)
        for jobs in groups.values():
            self._process_group(jobs)

    def _process_group(self, jobs: list[_Job]) -> None:
        """One session's slice of a batch, evaluated under its lock."""
        session = jobs[0].session
        with obs_span("serve.batch_group", size=len(jobs), session=jobs[0].session_key):
            with session.lock:
                for job in jobs:
                    try:
                        payload, hit = self.cache.get_or_compute(
                            job.session_key,
                            job.canonical,
                            lambda spec=job.canonical: whatif_payload(
                                session.under_scenario(spec)
                            ),
                        )
                    except Exception as exc:  # surfaced on the caller's future
                        with self._stats_lock:
                            self._errors.inc()
                        job.future.set_exception(exc)
                        continue
                    if hit:
                        with self._stats_lock:
                            self._cache_hits.inc()
                    job.future.set_result((payload, hit))

    def metrics(self) -> dict:
        """Counters (the ``/metrics`` JSON block), snapshot under the
        stats lock every mutation also holds — mid-storm snapshots are
        internally consistent (``coalesced_queries <= queries``, ...)."""
        with self._stats_lock:
            return {
                "queries": int(self._queries.value),
                "batches": int(self._batches.value),
                "coalesced_queries": int(self._coalesced.value),
                "max_batch_size": int(self._max_batch_seen.value),
                "cache_hits": int(self._cache_hits.value),
                "errors": int(self._errors.value),
            }
