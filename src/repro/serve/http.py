"""The stdlib HTTP frontend: JSON over ``ThreadingHTTPServer``.

No new runtime dependencies — ``http.server`` threads per connection,
``json`` bodies, and the service facade behind them.  Endpoints:

=========  ======  ====================================================
path       method  body / answer
=========  ======  ====================================================
/health    GET     liveness: ``{"status": "ok", ...}``
/metrics   GET     pool / scheduler / plan-cache counters (JSON), or
                   the full Prometheus text exposition when negotiated
                   via ``?format=prometheus`` or an ``Accept`` header
                   preferring ``text/plain``
/whatif    POST    ``{"scenario": SPEC, "session": {...}?}`` ->
                   the encoded what-if payload (plus ``"served"``)
/sweep     POST    ``{"scenarios": [SPEC...]?, "kinds": [KIND...]?,
                   "space": SPACE?, "session": {...}?}`` -> the encoded
                   sweep payload (space requests stream the enumeration
                   and answer from the aggregator)
=========  ======  ====================================================

Error contract: malformed JSON, unknown session-spec fields, malformed
scenario specs, and unknown scenario kinds answer **400** with
``{"error": msg}``, where ``msg`` is the underlying registry/grammar
message (an unknown kind lists the registered ones, exactly like the
CLI); unknown paths answer 404; unexpected failures answer 500.  Every
request — GET and POST alike, through one shared timed respond path —
appends one line to the JSONL request log (when configured):
``{"seq", "method", "path", "status", "ms", "scenario"?, "cache_hit"?}``
where ``seq`` is monotonic per log file (see
:class:`repro.ioutil.JsonlAppender`).

Determinism: success bodies are ``canonical_body(payload)``.  For
``/whatif`` the *payload* (everything except the transport-only
``served`` envelope, whose ``cache_hit`` flag necessarily flips between
first and repeated queries) is the same bytes for the same query
forever, cache hit or miss; ``/sweep`` bodies carry no envelope and are
byte-stable whole.  The serve-smoke CI job and the differential tests
assert exactly this — they strip ``served`` before comparing.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Optional, Union
from urllib.parse import parse_qs

from repro.ioutil import JsonlAppender
from repro.obs import render_prometheus
from repro.obs import span as obs_span
from repro.serve.encoding import canonical_body
from repro.serve.service import ServeService

MAX_BODY_BYTES = 4 * 1024 * 1024
"""Request-body cap: a weights vector for a big network is ~10 KB; 4 MB
rejects abuse without constraining any legitimate query."""


class _BadRequest(ValueError):
    """A request the client can fix (answered 400, message verbatim)."""


class _TextBody:
    """A non-JSON response body (the Prometheus exposition)."""

    __slots__ = ("text",)

    def __init__(self, text: str) -> None:
        self.text = text


class WhatIfServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`ServeService`.

    Args:
        address: ``(host, port)``; port 0 picks an ephemeral port (the
            tests do this), readable back from ``server_address``.
        service: The serving facade requests are answered by.
        log_path: JSONL request log (``None`` disables logging).
    """

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: ServeService,
        log_path: Optional[Union[str, Path]] = None,
    ) -> None:
        super().__init__(address, _Handler)
        self.service = service
        # One persistent, locked handle for the life of the server — not
        # an open() per line — with a monotonic ``seq`` per record so
        # concurrency tests can assert no interleaved or lost lines.
        self._log = JsonlAppender(log_path) if log_path else None

    def log_jsonl(self, record: dict) -> None:
        """Append one request record to the JSONL log (thread-safe)."""
        if self._log is not None:
            self._log.append(record)

    def observe_request(self, method: str, path: str, status: int, seconds: float) -> None:
        """Per-request instruments on the service registry."""
        registry = self.service.registry
        registry.histogram(
            "repro_serve_http_request_seconds",
            "Request handling latency by method and path.",
            labels={"method": method, "path": path},
        ).observe(seconds)
        registry.counter(
            "repro_serve_http_responses_total",
            "Responses by status code.",
            labels={"status": str(status)},
        ).inc()

    def shutdown(self) -> None:
        super().shutdown()
        self.service.close()
        if self._log is not None:
            self._log.close()


class _Handler(BaseHTTPRequestHandler):
    # Connection reuse keeps the closed-loop benchmark's clients cheap.
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    # Routing — both verbs share one timed/logged respond path
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._handle("POST")

    def _handle(self, method: str) -> None:
        """The shared request path: route, time, respond, log.

        ``/health`` and ``/metrics`` go through the same perf_counter
        timing and JSONL request-log append as the POST endpoints — a
        scrape is a request like any other.
        """
        started = time.perf_counter()
        extra: dict = {}
        path, _, query = self.path.partition("?")
        try:
            with obs_span("http.request", method=method, path=path):
                if method == "GET":
                    status, payload = self._route_get(path, query, extra)
                else:
                    status, payload = self._route_post(path, extra)
        except _BadRequest as exc:
            status, payload = 400, {"error": str(exc)}
        except ValueError as exc:
            # Scenario grammar errors and registry UnknownNameError both
            # derive from ValueError; their messages list the valid
            # choices, so ship them verbatim.
            status, payload = 400, {"error": str(exc)}
        except Exception as exc:  # pragma: no cover - defensive 500 path
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        elapsed = time.perf_counter() - started
        self._respond(
            status,
            payload,
            log={
                "method": method,
                "path": path,
                "status": status,
                "ms": elapsed * 1e3,
                **extra,
            },
        )
        self.server.observe_request(method, path, status, elapsed)

    def _route_get(self, path: str, query: str, extra: dict):
        if path == "/health":
            return 200, {
                "status": "ok",
                "endpoints": ["/health", "/metrics", "/whatif", "/sweep"],
            }
        if path == "/metrics":
            if self._wants_prometheus(query):
                extra["format"] = "prometheus"
                text = render_prometheus(self.server.service.metrics_samples())
                return 200, _TextBody(text)
            return 200, self.server.service.metrics()
        return 404, {"error": f"unknown path {path!r}"}

    def _route_post(self, path: str, extra: dict):
        body = self._read_json()
        if path == "/whatif":
            return self._whatif(body, extra)
        if path == "/sweep":
            return self._sweep(body)
        return 404, {"error": f"unknown path {path!r}"}

    def _wants_prometheus(self, query: str) -> bool:
        """Content negotiation: ``?format=prometheus`` wins; otherwise an
        Accept preferring ``text/plain`` over JSON (what a Prometheus
        scraper sends) selects the text exposition."""
        params = parse_qs(query)
        fmt = params.get("format", [""])[-1].lower()
        if fmt == "prometheus":
            return True
        if fmt == "json":
            return False
        accept = (self.headers.get("Accept") or "").lower()
        return "text/plain" in accept and "application/json" not in accept

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def _whatif(self, body: dict, extra: dict) -> tuple[int, dict]:
        scenario = body.get("scenario")
        if not isinstance(scenario, str) or not scenario.strip():
            raise _BadRequest("body needs a non-empty 'scenario' spec string")
        payload, hit = self.server.service.whatif(scenario, body.get("session"))
        extra["scenario"] = scenario
        extra["cache_hit"] = hit
        return 200, {**payload, "served": {"cache_hit": hit}}

    def _sweep(self, body: dict) -> tuple[int, dict]:
        scenarios = body.get("scenarios")
        kinds = body.get("kinds")
        space = body.get("space")
        if scenarios is not None and not isinstance(scenarios, list):
            raise _BadRequest("'scenarios' must be a list of spec strings")
        if kinds is not None and not isinstance(kinds, list):
            raise _BadRequest("'kinds' must be a list of scenario kinds")
        if space is not None and not isinstance(space, str):
            raise _BadRequest("'space' must be a scenario-space spec string")
        payload = self.server.service.sweep(
            scenarios=scenarios,
            kinds=kinds,
            session_spec=body.get("session"),
            space=space,
        )
        return 200, payload

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise _BadRequest(f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length) if length else b"{}"
        try:
            body = json.loads(raw or b"{}")
        except json.JSONDecodeError as exc:
            raise _BadRequest(f"malformed JSON body: {exc}") from None
        if not isinstance(body, dict):
            raise _BadRequest("request body must be a JSON object")
        return body

    def _respond(
        self, status: int, payload, log: Optional[dict] = None
    ) -> None:
        if isinstance(payload, _TextBody):
            body = payload.text.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = canonical_body(payload)
            content_type = "application/json"
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        if log is not None:
            self.server.log_jsonl(log)

    def log_message(self, format: str, *args) -> None:
        """Silence the default stderr access log (JSONL replaces it)."""


def serve_forever(
    service: ServeService,
    host: str = "127.0.0.1",
    port: int = 8093,
    log_path: Optional[Union[str, Path]] = None,
) -> None:
    """Run a server until interrupted (the ``repro-dtr serve`` body)."""
    server = WhatIfServer((host, port), service, log_path=log_path)
    bound = server.server_address
    print(f"serving what-if queries on http://{bound[0]}:{bound[1]}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
