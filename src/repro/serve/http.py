"""The stdlib HTTP frontend: JSON over ``ThreadingHTTPServer``.

No new runtime dependencies — ``http.server`` threads per connection,
``json`` bodies, and the service facade behind them.  Endpoints:

=========  ======  ====================================================
path       method  body / answer
=========  ======  ====================================================
/health    GET     liveness: ``{"status": "ok", ...}``
/metrics   GET     pool / scheduler / plan-cache counters
/whatif    POST    ``{"scenario": SPEC, "session": {...}?}`` ->
                   the encoded what-if payload (plus ``"served"``)
/sweep     POST    ``{"scenarios": [SPEC...]?, "kinds": [KIND...]?,
                   "space": SPACE?, "session": {...}?}`` -> the encoded
                   sweep payload (space requests stream the enumeration
                   and answer from the aggregator)
=========  ======  ====================================================

Error contract: malformed JSON, unknown session-spec fields, malformed
scenario specs, and unknown scenario kinds answer **400** with
``{"error": msg}``, where ``msg`` is the underlying registry/grammar
message (an unknown kind lists the registered ones, exactly like the
CLI); unknown paths answer 404; unexpected failures answer 500.  Every
request appends one line to the JSONL request log (when configured):
``{"path", "status", "ms", "scenario"?, "cache_hit"?}``.

Determinism: success bodies are ``canonical_body(payload)``.  For
``/whatif`` the *payload* (everything except the transport-only
``served`` envelope, whose ``cache_hit`` flag necessarily flips between
first and repeated queries) is the same bytes for the same query
forever, cache hit or miss; ``/sweep`` bodies carry no envelope and are
byte-stable whole.  The serve-smoke CI job and the differential tests
assert exactly this — they strip ``served`` before comparing.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Optional, Union

from repro.serve.encoding import canonical_body
from repro.serve.service import ServeService

MAX_BODY_BYTES = 4 * 1024 * 1024
"""Request-body cap: a weights vector for a big network is ~10 KB; 4 MB
rejects abuse without constraining any legitimate query."""


class _BadRequest(ValueError):
    """A request the client can fix (answered 400, message verbatim)."""


class WhatIfServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`ServeService`.

    Args:
        address: ``(host, port)``; port 0 picks an ephemeral port (the
            tests do this), readable back from ``server_address``.
        service: The serving facade requests are answered by.
        log_path: JSONL request log (``None`` disables logging).
    """

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: ServeService,
        log_path: Optional[Union[str, Path]] = None,
    ) -> None:
        super().__init__(address, _Handler)
        self.service = service
        self._log_lock = threading.Lock()
        self._log_path = Path(log_path) if log_path else None

    def log_jsonl(self, record: dict) -> None:
        """Append one request record to the JSONL log (thread-safe)."""
        if self._log_path is None:
            return
        line = json.dumps(record, sort_keys=True)
        with self._log_lock:
            with self._log_path.open("a", encoding="utf-8") as handle:
                handle.write(line + "\n")

    def shutdown(self) -> None:
        super().shutdown()
        self.service.close()


class _Handler(BaseHTTPRequestHandler):
    # Connection reuse keeps the closed-loop benchmark's clients cheap.
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        if self.path == "/health":
            self._respond(200, {"status": "ok", "endpoints": ["/health", "/metrics", "/whatif", "/sweep"]})
        elif self.path == "/metrics":
            self._respond(200, self.server.service.metrics())
        else:
            self._respond(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802
        started = time.perf_counter()
        extra: dict = {}
        try:
            body = self._read_json()
            if self.path == "/whatif":
                status, payload = self._whatif(body, extra)
            elif self.path == "/sweep":
                status, payload = self._sweep(body)
            else:
                status, payload = 404, {"error": f"unknown path {self.path!r}"}
        except _BadRequest as exc:
            status, payload = 400, {"error": str(exc)}
        except ValueError as exc:
            # Scenario grammar errors and registry UnknownNameError both
            # derive from ValueError; their messages list the valid
            # choices, so ship them verbatim.
            status, payload = 400, {"error": str(exc)}
        except Exception as exc:  # pragma: no cover - defensive 500 path
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        self._respond(
            status,
            payload,
            log={
                "path": self.path,
                "status": status,
                "ms": (time.perf_counter() - started) * 1e3,
                **extra,
            },
        )

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def _whatif(self, body: dict, extra: dict) -> tuple[int, dict]:
        scenario = body.get("scenario")
        if not isinstance(scenario, str) or not scenario.strip():
            raise _BadRequest("body needs a non-empty 'scenario' spec string")
        payload, hit = self.server.service.whatif(scenario, body.get("session"))
        extra["scenario"] = scenario
        extra["cache_hit"] = hit
        return 200, {**payload, "served": {"cache_hit": hit}}

    def _sweep(self, body: dict) -> tuple[int, dict]:
        scenarios = body.get("scenarios")
        kinds = body.get("kinds")
        space = body.get("space")
        if scenarios is not None and not isinstance(scenarios, list):
            raise _BadRequest("'scenarios' must be a list of spec strings")
        if kinds is not None and not isinstance(kinds, list):
            raise _BadRequest("'kinds' must be a list of scenario kinds")
        if space is not None and not isinstance(space, str):
            raise _BadRequest("'space' must be a scenario-space spec string")
        payload = self.server.service.sweep(
            scenarios=scenarios,
            kinds=kinds,
            session_spec=body.get("session"),
            space=space,
        )
        return 200, payload

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise _BadRequest(f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length) if length else b"{}"
        try:
            body = json.loads(raw or b"{}")
        except json.JSONDecodeError as exc:
            raise _BadRequest(f"malformed JSON body: {exc}") from None
        if not isinstance(body, dict):
            raise _BadRequest("request body must be a JSON object")
        return body

    def _respond(
        self, status: int, payload: dict, log: Optional[dict] = None
    ) -> None:
        body = canonical_body(payload)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        if log is not None:
            self.server.log_jsonl(log)

    def log_message(self, format: str, *args) -> None:
        """Silence the default stderr access log (JSONL replaces it)."""


def serve_forever(
    service: ServeService,
    host: str = "127.0.0.1",
    port: int = 8093,
    log_path: Optional[Union[str, Path]] = None,
) -> None:
    """Run a server until interrupted (the ``repro-dtr serve`` body)."""
    server = WhatIfServer((host, port), service, log_path=log_path)
    bound = server.server_address
    print(f"serving what-if queries on http://{bound[0]}:{bound[1]}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
