"""The composable scenario algebra.

A :class:`Scenario` is a declarative description of one degraded
condition a weight setting may face: losing links (single or multiple
adjacencies, a node, an SRLG) and/or a traffic change (uniform scale, a
destination shift, a hot-spot surge).  Scenarios compose with
:func:`compose`, and every scenario — atomic or composed — *lowers* to
one normalized :class:`LoweredScenario`:

    ``(surviving network, projected weights, transformed traffic)``

plus an explicit account of the demand that can no longer be routed.
Lowering is a pure function of ``(scenario, network, traffic)``: calling
it twice yields equal results, composition of scenarios with disjoint
element sets is order-insensitive, and composing flattens (see
``tests/test_scenarios_properties.py`` for the executable laws).

Disconnected demand is never dropped silently: any source-destination
pair with positive demand that the surviving network cannot route is
zeroed out of the *routable* traffic matrices, listed in
``disconnected_pairs``, and summed into ``lost_demand``, so evaluators
can both proceed (over the routable remainder) and report the loss.
Demands to or from a failed node are handled by the same mechanism —
an isolated node is unreachable, so its pairs surface as disconnected.
"""

from __future__ import annotations

import abc
import re
from dataclasses import dataclass
from typing import ClassVar, Optional

import numpy as np

from repro.network.graph import Network
from repro.scenarios.projection import TopologyProjection
from repro.traffic.matrix import TrafficMatrix

ElementKey = tuple
"""An element a scenario touches: ``("adj", u, v)`` for a duplex
adjacency, ``("node", n)`` for a node, ``("traffic", ...)`` /
``("traffic-node", n)`` for traffic dimensions.  Scenarios with disjoint
element-key sets are independent: composing them is order-insensitive."""


def _spec_float(value: float) -> str:
    """A float literal for spec strings: ``repr`` minus the ``e+`` form.

    ``repr(1e16)`` is ``'1e+16'``, whose ``+`` would collide with the
    composition separator and make the emitted spec unparseable;
    ``float()`` accepts the exponent without the sign, so it is dropped.
    The result still round-trips exactly (shortest-repr semantics).
    """
    return repr(float(value)).replace("e+", "e")


class LoweredScenario:
    """The normalized form every scenario lowers to.

    Attributes:
        kind: The originating scenario's kind string.
        description: Human-readable scenario summary (not part of
            equality — ``compose(a, b)`` and ``compose(b, a)`` describe
            themselves differently but lower to equal forms).
        projection: The topology projection (surviving network + maps).
        high_traffic: Routable transformed high-priority traffic.
        low_traffic: Routable transformed low-priority traffic.
        disconnected_pairs: ``(s, t)`` pairs with positive transformed
            demand (either class) that the surviving network cannot
            route, sorted.
        lost_demand: Total demand volume (Mb/s, both classes) on those
            pairs.
    """

    def __init__(
        self,
        kind: str,
        description: str,
        projection: TopologyProjection,
        high_traffic: TrafficMatrix,
        low_traffic: TrafficMatrix,
        disconnected_pairs: tuple[tuple[int, int], ...],
        lost_demand: float,
    ) -> None:
        self.kind = kind
        self.description = description
        self.projection = projection
        self.high_traffic = high_traffic
        self.low_traffic = low_traffic
        self.disconnected_pairs = disconnected_pairs
        self.lost_demand = lost_demand

    @property
    def network(self) -> Network:
        """The surviving network."""
        return self.projection.network

    @property
    def disconnected(self) -> bool:
        """Whether any positive demand pair became unroutable."""
        return bool(self.disconnected_pairs)

    def project_weights(self, weights) -> np.ndarray:
        """Projected weights: survivors keep their intact values."""
        return self.projection.project_weights(weights)

    def project_loads_back(self, loads: np.ndarray) -> np.ndarray:
        """Expand surviving-link loads to intact link indexing."""
        return self.projection.project_loads_back(loads)

    def __eq__(self, other: object) -> bool:
        # Deliberately ignores `description` (and `kind`): equality is of
        # the *normalized form*, the relation the algebra's laws
        # (order-insensitivity, flattening, idempotence) are stated over.
        if not isinstance(other, LoweredScenario):
            return NotImplemented
        return (
            self.projection == other.projection
            and self.high_traffic == other.high_traffic
            and self.low_traffic == other.low_traffic
            and self.disconnected_pairs == other.disconnected_pairs
            and self.lost_demand == other.lost_demand
        )

    def __repr__(self) -> str:
        return (
            f"LoweredScenario(kind={self.kind!r}, "
            f"failed_links={len(self.projection.failed_links)}, "
            f"disconnected_pairs={len(self.disconnected_pairs)})"
        )


class Scenario(abc.ABC):
    """One degraded condition; lowers to a :class:`LoweredScenario`.

    Subclasses declare *what* fails or changes by overriding
    :meth:`failed_adjacencies`, :meth:`failed_nodes`, and
    :meth:`transform_traffic`; the shared :meth:`lower` turns that into
    the normalized form.
    """

    kind: ClassVar[str] = "abstract"

    # -- declarative surface --------------------------------------------
    def failed_adjacencies(self, net: Network) -> tuple[tuple[int, int], ...]:
        """Duplex ``(u, v)`` adjacencies this scenario fails (``u < v``)."""
        return ()

    def failed_nodes(self, net: Network) -> tuple[int, ...]:
        """Nodes this scenario fails (all incident links are removed)."""
        return ()

    def transform_traffic(
        self, high: TrafficMatrix, low: TrafficMatrix
    ) -> tuple[TrafficMatrix, TrafficMatrix]:
        """Transformed traffic matrices (identity by default)."""
        return high, low

    @abc.abstractmethod
    def describe(self) -> str:
        """Human-readable one-line scenario summary."""

    @abc.abstractmethod
    def spec(self) -> str:
        """The canonical spec string of this scenario.

        The inverse of :func:`repro.scenarios.spec.parse_scenario`:
        ``parse_scenario(s.spec()) == s`` for every scenario, and two
        equal scenarios always produce byte-identical spec strings
        (components are emitted sorted, floats via ``repr`` so they
        survive a ``float()`` round trip).  The serving layer's plan
        cache keys on exactly this string, so spelling variants of one
        scenario (``"link:2-5,0-4"`` vs ``"link:0-4,2-5"``) share a
        cache entry.
        """

    def element_keys(self, net: Network) -> frozenset[ElementKey]:
        """The elements this scenario touches (see :data:`ElementKey`)."""
        keys: set[ElementKey] = set()
        for u, v in self.failed_adjacencies(net):
            keys.add(("adj", min(u, v), max(u, v)))
        for node in self.failed_nodes(net):
            keys.add(("node", node))
            for link in net.out_links(node):
                keys.add(("adj", min(node, link.dst), max(node, link.dst)))
        return frozenset(keys)

    # -- lowering --------------------------------------------------------
    def failed_link_indices(self, net: Network) -> tuple[int, ...]:
        """Directed link indices this scenario removes, sorted.

        Raises:
            ValueError: if a failed adjacency is not duplex in ``net`` or
                a failed node is out of range.
        """
        failed: set[int] = set()
        for u, v in self.failed_adjacencies(net):
            if not (net.has_link(u, v) and net.has_link(v, u)):
                raise ValueError(f"no duplex adjacency between {u} and {v}")
            failed.add(net.link_between(u, v).index)
            failed.add(net.link_between(v, u).index)
        for node in self.failed_nodes(net):
            if not 0 <= node < net.num_nodes:
                raise ValueError(
                    f"node {node} outside range [0, {net.num_nodes})"
                )
            failed.update(net.out_link_indices(node))
            failed.update(net.in_link_indices(node))
        return tuple(sorted(failed))

    def lower(
        self,
        net: Network,
        high: TrafficMatrix,
        low: TrafficMatrix,
        *,
        projections: Optional[dict[tuple[int, ...], TopologyProjection]] = None,
    ) -> LoweredScenario:
        """Lower to the normalized ``(network, weights-map, traffic)`` form.

        Args:
            net: The intact network.
            high: Intact high-priority traffic.
            low: Intact low-priority traffic.
            projections: Optional shared projection cache keyed by the
                failed-link tuple; scenarios failing the same elements
                then share one surviving network (the batch evaluator
                passes its cache here).
        """
        failed = self.failed_link_indices(net)
        projection = projections.get(failed) if projections is not None else None
        if projection is None:
            projection = TopologyProjection(net, failed)
            if projections is not None:
                projections[failed] = projection
        high_t, low_t = self.transform_traffic(high, low)
        high_r, low_r, pairs, lost = _drop_disconnected(projection, high_t, low_t)
        return LoweredScenario(
            kind=self.kind,
            description=self.describe(),
            projection=projection,
            high_traffic=high_r,
            low_traffic=low_r,
            disconnected_pairs=pairs,
            lost_demand=lost,
        )

    def __str__(self) -> str:
        return self.spec()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.describe()}>"


def _drop_disconnected(
    projection: TopologyProjection, high: TrafficMatrix, low: TrafficMatrix
) -> tuple[TrafficMatrix, TrafficMatrix, tuple[tuple[int, int], ...], float]:
    """Zero out demand pairs the surviving network cannot route.

    Returns ``(routable_high, routable_low, disconnected_pairs,
    lost_demand)``; the inputs are returned unchanged when everything is
    routable.
    """
    if projection.is_strongly_connected():
        return high, low, (), 0.0
    demand = high.demands + low.demands
    positive = demand > 0
    if not positive.any():
        return high, low, (), 0.0
    reach = projection.reachable()
    cut = positive & ~reach
    if not cut.any():
        return high, low, (), 0.0
    srcs, dsts = np.nonzero(cut)
    pairs = tuple(sorted(zip(srcs.tolist(), dsts.tolist())))
    lost = float(demand[cut].sum())
    high_d = high.demands.copy()
    low_d = low.demands.copy()
    high_d[cut] = 0.0
    low_d[cut] = 0.0
    return TrafficMatrix(high_d), TrafficMatrix(low_d), pairs, lost


# ----------------------------------------------------------------------
# Failure scenarios
# ----------------------------------------------------------------------
def _normalize_pairs(pairs) -> tuple[tuple[int, int], ...]:
    out = []
    for u, v in pairs:
        u, v = int(u), int(v)
        if u == v:
            raise ValueError(f"an adjacency needs two distinct nodes, got ({u}, {v})")
        out.append((min(u, v), max(u, v)))
    if not out:
        raise ValueError("at least one adjacency is required")
    if len(set(out)) != len(out):
        raise ValueError(f"duplicate adjacencies in {out}")
    return tuple(sorted(out))


@dataclass(frozen=True)
class LinkFailure(Scenario):
    """Failure of one or more duplex adjacencies (weights unchanged)."""

    kind: ClassVar[str] = "link"
    pairs: tuple[tuple[int, int], ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "pairs", _normalize_pairs(self.pairs))

    @classmethod
    def single(cls, u: int, v: int) -> "LinkFailure":
        """The classic single-adjacency failure."""
        return cls(pairs=((u, v),))

    def failed_adjacencies(self, net: Network) -> tuple[tuple[int, int], ...]:
        return self.pairs

    def describe(self) -> str:
        body = ", ".join(f"{u}-{v}" for u, v in self.pairs)
        label = "link failure" if len(self.pairs) == 1 else "multi-link failure"
        return f"{label} {body}"

    def spec(self) -> str:
        return "link:" + ",".join(f"{u}-{v}" for u, v in self.pairs)


@dataclass(frozen=True)
class NodeFailure(Scenario):
    """Failure of one or more nodes: every incident link is removed.

    The failed nodes stay in the node space (so traffic matrices and
    weight vectors keep their shape) but become isolated; their demand
    pairs surface through the explicit disconnected-demand accounting.
    """

    kind: ClassVar[str] = "node"
    nodes: tuple[int, ...]

    def __post_init__(self) -> None:
        nodes = tuple(sorted(set(int(n) for n in self.nodes)))
        if not nodes:
            raise ValueError("at least one node is required")
        object.__setattr__(self, "nodes", nodes)

    @classmethod
    def single(cls, node: int) -> "NodeFailure":
        return cls(nodes=(node,))

    def failed_nodes(self, net: Network) -> tuple[int, ...]:
        return self.nodes

    def describe(self) -> str:
        return f"node failure {', '.join(str(n) for n in self.nodes)}"

    def spec(self) -> str:
        return "node:" + ",".join(str(n) for n in self.nodes)


@dataclass(frozen=True)
class SrlgFailure(Scenario):
    """A shared-risk link group: adjacencies that fail together.

    Structurally a multi-link failure, but kept as its own class so
    sweep reports can attribute degradation to SRLG events (fiber cuts,
    shared conduits) separately from independent link failures.
    """

    kind: ClassVar[str] = "srlg"
    pairs: tuple[tuple[int, int], ...]
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "pairs", _normalize_pairs(self.pairs))
        # The name is embedded verbatim in the spec string
        # (``srlg:NAME=pairs``), so it must not contain grammar
        # metacharacters — otherwise ``parse_scenario(s.spec()) == s``
        # (the plan cache's keying law) would break.
        if self.name and not re.fullmatch(r"[A-Za-z0-9_.-]+", self.name):
            raise ValueError(
                f"srlg name {self.name!r} must match [A-Za-z0-9_.-]+ "
                "(it is embedded in the scenario spec grammar)"
            )

    def failed_adjacencies(self, net: Network) -> tuple[tuple[int, int], ...]:
        return self.pairs

    def element_keys(self, net: Network) -> frozenset[ElementKey]:
        keys = set(super().element_keys(net))
        if self.name:
            keys.add(("srlg", self.name))
        return frozenset(keys)

    def describe(self) -> str:
        body = ", ".join(f"{u}-{v}" for u, v in self.pairs)
        label = f"srlg {self.name}" if self.name else "srlg"
        return f"{label} failure {body}"

    def spec(self) -> str:
        body = ",".join(f"{u}-{v}" for u, v in self.pairs)
        return f"srlg:{self.name}={body}" if self.name else f"srlg:{body}"


# ----------------------------------------------------------------------
# Traffic scenarios
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TrafficScale(Scenario):
    """Uniform rescale of both traffic classes (the growth/dip scenario)."""

    kind: ClassVar[str] = "scale"
    factor: float

    def __post_init__(self) -> None:
        if self.factor < 0:
            raise ValueError(f"scale factor must be non-negative, got {self.factor}")

    def transform_traffic(self, high, low):
        return high.scaled(self.factor), low.scaled(self.factor)

    def element_keys(self, net: Network) -> frozenset[ElementKey]:
        return frozenset({("traffic", "scale")})

    def describe(self) -> str:
        return f"traffic scaled by {self.factor:g}x"

    def spec(self) -> str:
        return f"scale:{_spec_float(self.factor)}"


@dataclass(frozen=True)
class HotSpotSurge(Scenario):
    """All demand to and from one node scaled by ``factor`` (a flash crowd)."""

    kind: ClassVar[str] = "surge"
    node: int
    factor: float

    def __post_init__(self) -> None:
        if self.factor < 0:
            raise ValueError(f"surge factor must be non-negative, got {self.factor}")

    def transform_traffic(self, high, low):
        def surge(tm: TrafficMatrix) -> TrafficMatrix:
            d = tm.demands.copy()
            d[self.node, :] *= self.factor
            d[:, self.node] *= self.factor
            return TrafficMatrix(d)

        return surge(high), surge(low)

    def element_keys(self, net: Network) -> frozenset[ElementKey]:
        return frozenset({("traffic-node", self.node)})

    def describe(self) -> str:
        return f"hot-spot surge at node {self.node} ({self.factor:g}x)"

    def spec(self) -> str:
        return f"surge:{self.node}x{_spec_float(self.factor)}"


@dataclass(frozen=True)
class TrafficShift(Scenario):
    """A fraction of all demand destined to ``src`` is redirected to ``dst``.

    Models a service migration or anycast re-homing: every origin ``o``
    keeps ``(1 - fraction)`` of its demand toward ``src`` and sends the
    rest toward ``dst``.  The origin ``o == dst`` keeps its full demand
    at ``src`` (a node cannot address traffic to itself) — an explicit
    rule, tested by the property suite.
    """

    kind: ClassVar[str] = "shift"
    src: int
    dst: int
    fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError("shift needs two distinct destination nodes")
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError(
                f"shift fraction must be in [0, 1], got {self.fraction}"
            )

    def transform_traffic(self, high, low):
        def shift(tm: TrafficMatrix) -> TrafficMatrix:
            d = tm.demands.copy()
            moved = d[:, self.src] * self.fraction
            moved[self.dst] = 0.0  # dst cannot address itself
            d[:, self.src] -= moved
            d[:, self.dst] += moved
            return TrafficMatrix(d)

        return shift(high), shift(low)

    def element_keys(self, net: Network) -> frozenset[ElementKey]:
        return frozenset(
            {("traffic-node", self.src), ("traffic-node", self.dst)}
        )

    def describe(self) -> str:
        return (
            f"traffic shift {self.fraction:g} of demand to {self.src} "
            f"-> {self.dst}"
        )

    def spec(self) -> str:
        return f"shift:{self.src}>{self.dst}@{_spec_float(self.fraction)}"


# ----------------------------------------------------------------------
# Composition
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Compose(Scenario):
    """Several scenarios applied together (failures union, traffic chained).

    Nested compositions flatten on construction, so
    ``Compose((Compose((a, b)), c))`` equals ``Compose((a, b, c))``.
    When the parts' element sets are disjoint, the part order does not
    affect the lowered form (the order-insensitivity law).
    """

    kind: ClassVar[str] = "compose"
    parts: tuple[Scenario, ...]

    def __post_init__(self) -> None:
        flat: list[Scenario] = []
        for part in self.parts:
            if isinstance(part, Compose):
                flat.extend(part.parts)
            else:
                flat.append(part)
        if not flat:
            raise ValueError("compose needs at least one scenario")
        object.__setattr__(self, "parts", tuple(flat))

    def failed_adjacencies(self, net: Network) -> tuple[tuple[int, int], ...]:
        pairs: set[tuple[int, int]] = set()
        for part in self.parts:
            pairs.update(part.failed_adjacencies(net))
        return tuple(sorted(pairs))

    def failed_nodes(self, net: Network) -> tuple[int, ...]:
        nodes: set[int] = set()
        for part in self.parts:
            nodes.update(part.failed_nodes(net))
        return tuple(sorted(nodes))

    def transform_traffic(self, high, low):
        for part in self.parts:
            high, low = part.transform_traffic(high, low)
        return high, low

    def element_keys(self, net: Network) -> frozenset[ElementKey]:
        keys: set[ElementKey] = set()
        for part in self.parts:
            keys.update(part.element_keys(net))
        return frozenset(keys)

    def describe(self) -> str:
        return " + ".join(part.describe() for part in self.parts)

    def spec(self) -> str:
        return "+".join(part.spec() for part in self.parts)


def compose(*scenarios: Scenario) -> Scenario:
    """Compose scenarios; a single argument is returned unchanged.

    ``compose(a)`` is ``a`` and ``compose(a, compose(b, c))`` flattens to
    a three-part composition — the algebra's unit and associativity.
    """
    if not scenarios:
        raise ValueError("compose needs at least one scenario")
    if len(scenarios) == 1 and not isinstance(scenarios[0], Compose):
        return scenarios[0]
    return Compose(parts=tuple(scenarios))
