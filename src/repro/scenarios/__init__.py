"""``repro.scenarios`` — the composable scenario algebra and batch evaluator.

The subsystem that turns the reproduction into a general robustness
analysis tool (see ``docs/scenarios.md``):

* :mod:`~repro.scenarios.algebra` — :class:`Scenario` classes
  (:class:`LinkFailure`, :class:`NodeFailure`, :class:`SrlgFailure`,
  :class:`TrafficScale`, :class:`TrafficShift`, :class:`HotSpotSurge`)
  and :func:`compose`, all lowering to one normalized
  :class:`LoweredScenario` with explicit disconnected-demand accounting;
* :mod:`~repro.scenarios.projection` — shared
  :class:`TopologyProjection` of the surviving network;
* :mod:`~repro.scenarios.batch` — the :class:`SweepEngine` /
  :func:`sweep_scenarios` batch evaluator, bit-identical to per-scenario
  full re-evaluation but reusing incremental-SPF state across scenarios;
* :mod:`~repro.scenarios.spec` — the scenario-kind registry behind
  ``repro-dtr whatif --scenario`` and campaign scenario grids.

Quickstart::

    from repro.api import Session
    from repro.scenarios import NodeFailure, HotSpotSurge, ScenarioSet, compose

    session.set_weights(weights)
    print(session.under_scenario(compose(
        NodeFailure.single(3), HotSpotSurge(node=7, factor=2.0)
    )).format())
    result = session.sweep(ScenarioSet.from_kinds(session.network,
                                                  ("link", "node", "srlg")))
    for kind, summary in result.by_class().items():
        print(kind, summary.worst_secondary)
"""

from repro.scenarios.algebra import (
    Compose,
    HotSpotSurge,
    LinkFailure,
    LoweredScenario,
    NodeFailure,
    Scenario,
    SrlgFailure,
    TrafficScale,
    TrafficShift,
    compose,
)
from repro.scenarios.batch import (
    ScenarioClassSummary,
    ScenarioOutcome,
    SweepEngine,
    SweepResult,
    sweep_scenarios,
)
from repro.scenarios.projection import TopologyProjection, project_topology
from repro.scenarios.spec import (
    SCENARIO_KINDS,
    SPACE_KINDS,
    ScenarioKind,
    ScenarioSet,
    SpaceKind,
    available_scenario_kinds,
    available_space_kinds,
    canonical_space_spec,
    canonical_spec,
    enumerate_scenarios,
    parse_scenario,
    parse_space,
    register_scenario_kind,
    register_space_kind,
)
from repro.scenarios.aggregate import (
    MetricAggregate,
    SpaceAggregate,
    StreamingAggregate,
)
from repro.scenarios.spaces import (
    AllLinkFailures,
    AllNodeFailures,
    DominancePruner,
    ScenarioSpace,
    SpaceSweepResult,
    SrlgClosure,
    SurgeSample,
    all_link_failures,
    all_node_failures,
    sweep_scenario_space,
)

__all__ = [
    "Scenario",
    "LinkFailure",
    "NodeFailure",
    "SrlgFailure",
    "TrafficScale",
    "TrafficShift",
    "HotSpotSurge",
    "Compose",
    "compose",
    "LoweredScenario",
    "TopologyProjection",
    "project_topology",
    "SweepEngine",
    "SweepResult",
    "ScenarioOutcome",
    "ScenarioClassSummary",
    "sweep_scenarios",
    "ScenarioSet",
    "ScenarioKind",
    "SCENARIO_KINDS",
    "available_scenario_kinds",
    "canonical_spec",
    "enumerate_scenarios",
    "parse_scenario",
    "register_scenario_kind",
    "ScenarioSpace",
    "AllLinkFailures",
    "AllNodeFailures",
    "SrlgClosure",
    "SurgeSample",
    "all_link_failures",
    "all_node_failures",
    "DominancePruner",
    "SpaceSweepResult",
    "sweep_scenario_space",
    "SpaceKind",
    "SPACE_KINDS",
    "available_space_kinds",
    "canonical_space_spec",
    "parse_space",
    "register_space_kind",
    "StreamingAggregate",
    "SpaceAggregate",
    "MetricAggregate",
]
