"""Combinatorial scenario spaces: lazy enumeration with dominance pruning.

The robustness question behind the paper's R_H claims — "how does this
weight setting hold up under *every* plausible failure?" — ranges over
combinatorial *spaces*, not hand-listed scenarios: all ``k``-adjacency
failures, all node failures, the closure of SRLG groups under pairwise
co-failure, importance-sampled traffic surges.  A
:class:`ScenarioSpace` describes such a space declaratively and
enumerates it lazily; :func:`sweep_scenario_space` streams the space
through a :class:`~repro.scenarios.batch.SweepEngine` in chunks, folds
each outcome into a
:class:`~repro.scenarios.aggregate.StreamingAggregate`, and never
materializes the space — peak memory is the engine's working set, not
the scenario count.

**Dominance pruning.**  Removing links only shrinks reachability, and a
pure failure scenario leaves demand untouched, so once some failed link
set is known to cut off positive demand, *every* pure-failure scenario
whose failed set is a superset is disconnected too — its surviving
network is a subgraph of an already-disconnected one.  The
:class:`DominancePruner` maintains a minimal antichain of such
*cores* (seeded by cheap single-adjacency reachability probes, grown by
every disconnected outcome the sweep evaluates) and skips dominated
scenarios without evaluating them.  Pruning is *exact* for aggregates:
disconnected scenarios contribute only their count — the same
connected-only folding rule as
:class:`~repro.scenarios.batch.ScenarioClassSummary` — so the pruned
streamed sweep is identical to the exhaustive materialized one, the
contract enforced by ``tests/test_spaces_differential.py``.

Spaces have a spec grammar of their own (``space:all-link-2``,
``space:srlg-closure``, ``space:surge-sample:n=64:seed=7``) registered
in :data:`repro.scenarios.spec.SPACE_KINDS`; parsing round-trips
(``parse_space(s.spec()) == s``), so one spec string is a complete
robustness query end to end (CLI ``sweep --space``, ``serve /sweep``,
campaign specs).
"""

from __future__ import annotations

import abc
import itertools
import math
import random
from dataclasses import dataclass
from typing import Callable, ClassVar, Iterator, Optional, Union

from repro import obs
from repro.core.evaluator import Evaluation
from repro.network.graph import Network
from repro.scenarios.aggregate import (
    DEFAULT_CVAR_ALPHA,
    DEFAULT_PERCENTILES,
    SpaceAggregate,
    StreamingAggregate,
)
from repro.scenarios.algebra import (
    HotSpotSurge,
    LinkFailure,
    NodeFailure,
    Scenario,
    SrlgFailure,
)
from repro.scenarios.projection import TopologyProjection
from repro.scenarios.spec import (
    SpaceKind,
    enumerate_scenarios,
    parse_space,
    register_space_kind,
)
from repro.traffic.matrix import TrafficMatrix

DEFAULT_CHUNK_SIZE = 64
"""Scenarios pulled from the lazy generator per engine batch."""

DEFAULT_SURGE_SAMPLES = 64
DEFAULT_SURGE_SEED = 7
_SURGE_FACTOR_RANGE = (1.5, 4.0)

_PRUNABLE = (LinkFailure, NodeFailure, SrlgFailure)
"""Pure-failure scenario classes: identity traffic transform, so the
subgraph-dominance argument applies.  Traffic-bearing scenarios are
never pruned."""


# ----------------------------------------------------------------------
# Space classes
# ----------------------------------------------------------------------
class ScenarioSpace(abc.ABC):
    """A declarative, lazily enumerable set of scenarios.

    Subclasses are frozen dataclasses, so the spec round-trip law
    ``parse_space(s.spec()) == s`` is plain field equality.
    """

    kind: ClassVar[str] = "abstract"

    @abc.abstractmethod
    def scenarios(self, net: Network) -> Iterator[Scenario]:
        """Lazily yield the space's scenarios in deterministic order."""

    @abc.abstractmethod
    def size(self, net: Network) -> int:
        """Exact scenario count, computed without enumeration."""

    @abc.abstractmethod
    def describe(self) -> str:
        """Human-readable one-line space summary."""

    @abc.abstractmethod
    def spec(self) -> str:
        """The canonical spec string (inverse of ``parse_space``)."""

    def __str__(self) -> str:
        return self.spec()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.describe()}>"


@dataclass(frozen=True)
class AllLinkFailures(ScenarioSpace):
    """Every failure of exactly ``k`` duplex adjacencies."""

    kind: ClassVar[str] = "all-link"
    k: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "k", int(self.k))
        if self.k < 1:
            raise ValueError(f"failure size must be >= 1, got {self.k}")

    def scenarios(self, net: Network) -> Iterator[Scenario]:
        for combo in itertools.combinations(net.duplex_pairs(), self.k):
            yield LinkFailure(pairs=combo)

    def size(self, net: Network) -> int:
        return math.comb(len(net.duplex_pairs()), self.k)

    def describe(self) -> str:
        return f"all {self.k}-adjacency failures"

    def spec(self) -> str:
        return f"space:all-link-{self.k}"


@dataclass(frozen=True)
class AllNodeFailures(ScenarioSpace):
    """Every single-node failure."""

    kind: ClassVar[str] = "all-node"

    def scenarios(self, net: Network) -> Iterator[Scenario]:
        for node in net.nodes():
            yield NodeFailure.single(node)

    def size(self, net: Network) -> int:
        return net.num_nodes

    def describe(self) -> str:
        return "all single-node failures"

    def spec(self) -> str:
        return "space:all-node"


@dataclass(frozen=True)
class SrlgClosure(ScenarioSpace):
    """The SRLG grid closed under pairwise co-failure.

    Yields every base group of the deterministic SRLG sweep grid
    (:func:`~repro.scenarios.spec.enumerate_scenarios` with ``"srlg"``),
    then the union of every pair of groups — the two-conduit co-failure
    events.  Singles come first so their disconnected cores are learned
    before the pair phase, where dominance pruning pays off.
    """

    kind: ClassVar[str] = "srlg-closure"

    def scenarios(self, net: Network) -> Iterator[Scenario]:
        groups = enumerate_scenarios(net, "srlg")
        yield from groups
        for a, b in itertools.combinations(groups, 2):
            yield SrlgFailure(
                pairs=tuple(sorted(set(a.pairs) | set(b.pairs))),
                name=f"{a.name}-{b.name}",
            )

    def size(self, net: Network) -> int:
        groups = len(enumerate_scenarios(net, "srlg"))
        return groups + groups * (groups - 1) // 2

    def describe(self) -> str:
        return "SRLG grid plus all pairwise unions"

    def spec(self) -> str:
        return "space:srlg-closure"


@dataclass(frozen=True)
class SurgeSample(ScenarioSpace):
    """``n`` seeded, degree-weighted hot-spot surges (importance sampling).

    High-degree nodes aggregate the most demand, so surges there drive
    the tail of the robustness distribution; sampling nodes with
    probability proportional to degree concentrates the budget where it
    matters.  Each sample is a pure function of ``(seed, index)`` —
    CPython seeds :class:`random.Random` from strings via SHA-512, not
    the per-process hash salt — so the space is deterministic across
    processes and *order-insensitive*: ``sample(net, i)`` does not
    depend on which other samples were drawn.
    """

    kind: ClassVar[str] = "surge-sample"
    n: int = DEFAULT_SURGE_SAMPLES
    seed: int = DEFAULT_SURGE_SEED

    def __post_init__(self) -> None:
        object.__setattr__(self, "n", int(self.n))
        object.__setattr__(self, "seed", int(self.seed))
        if self.n < 1:
            raise ValueError(f"sample count must be >= 1, got {self.n}")

    def sample(self, net: Network, index: int) -> HotSpotSurge:
        """The ``index``-th sample — independent of every other index."""
        rng = random.Random(f"surge-sample:{self.seed}:{index}")
        degrees = [len(net.out_links(node)) for node in net.nodes()]
        pick = rng.random() * sum(degrees)
        node = 0
        for node, degree in enumerate(degrees):
            pick -= degree
            if pick < 0:
                break
        low, high = _SURGE_FACTOR_RANGE
        factor = round(low + (high - low) * rng.random(), 3)
        return HotSpotSurge(node=node, factor=factor)

    def scenarios(self, net: Network) -> Iterator[Scenario]:
        for index in range(self.n):
            yield self.sample(net, index)

    def size(self, net: Network) -> int:
        return self.n

    def describe(self) -> str:
        return f"{self.n} degree-weighted surge samples (seed {self.seed})"

    def spec(self) -> str:
        return f"space:surge-sample:n={self.n}:seed={self.seed}"


def all_link_failures(k: int) -> AllLinkFailures:
    """The space of every ``k``-adjacency failure."""
    return AllLinkFailures(k=k)


def all_node_failures() -> AllNodeFailures:
    """The space of every single-node failure."""
    return AllNodeFailures()


# ----------------------------------------------------------------------
# Dominance pruning
# ----------------------------------------------------------------------
class DominancePruner:
    """Skips pure-failure scenarios dominated by a known disconnection.

    A *core* is a failed directed-link set known to cut off positive
    demand.  Any pure-failure scenario whose failed set contains a core
    has a surviving network that is a subgraph of the core's — strictly
    fewer links, identical demand — so it is disconnected a fortiori and
    contributes only its disconnected count to aggregates.  The core
    list stays a minimal antichain: recording a set drops its supersets
    and is skipped when a subset is already present.

    Cores come from two sources: cheap single-adjacency reachability
    probes (run once per adjacency a candidate touches — within a
    fixed-``k`` space all failed sets have equal size, so singletons are
    the only intra-space lever), and every disconnected outcome the
    sweep actually evaluates (which is what makes the SRLG closure's
    pair phase cheap after its singles phase).
    """

    def __init__(
        self, net: Network, high: TrafficMatrix, low: TrafficMatrix
    ) -> None:
        self._net = net
        self._positive = (high.demands + low.demands) > 0
        self._probed: set[tuple[int, int]] = set()
        self._cores: list[frozenset[int]] = []

    @property
    def cores(self) -> tuple[frozenset[int], ...]:
        """The minimal disconnected cores learned so far."""
        return tuple(self._cores)

    def dominated(self, scenario: Scenario) -> Optional[str]:
        """A witness description if ``scenario`` is dominated, else None."""
        if not isinstance(scenario, _PRUNABLE):
            return None
        failed = frozenset(scenario.failed_link_indices(self._net))
        witness = self._core_witness(failed)
        if witness is not None:
            return witness
        for key in sorted(scenario.element_keys(self._net)):
            if key[0] == "adj":
                self._probe(key[1], key[2])
        return self._core_witness(failed)

    def record(self, scenario: Scenario) -> None:
        """Record an evaluated pure-failure scenario found disconnected."""
        if isinstance(scenario, _PRUNABLE):
            self._record_core(
                frozenset(scenario.failed_link_indices(self._net))
            )

    # -- internals -------------------------------------------------------
    def _core_witness(self, failed: frozenset[int]) -> Optional[str]:
        for core in self._cores:
            if core <= failed:
                return "disconnected core {%s}" % ",".join(
                    str(l) for l in sorted(core)
                )
        return None

    def _probe(self, u: int, v: int) -> None:
        if (u, v) in self._probed:
            return
        self._probed.add((u, v))
        if not (self._net.has_link(u, v) and self._net.has_link(v, u)):
            return
        failed = tuple(
            sorted(
                (
                    self._net.link_between(u, v).index,
                    self._net.link_between(v, u).index,
                )
            )
        )
        projection = TopologyProjection(self._net, failed)
        if projection.is_strongly_connected():
            return
        if bool((self._positive & ~projection.reachable()).any()):
            self._record_core(frozenset(failed))

    def _record_core(self, failed: frozenset[int]) -> None:
        if any(core <= failed for core in self._cores):
            return
        self._cores = [core for core in self._cores if not failed <= core]
        self._cores.append(failed)


# ----------------------------------------------------------------------
# The streamed space sweep
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SpaceSweepResult:
    """Aggregated outcome of one streamed scenario-space sweep.

    Per-scenario outcomes are deliberately absent — the whole point is
    that the space was never materialized.  ``scenarios`` counts the
    space, ``evaluated + pruned == scenarios``, and ``disconnected``
    includes both evaluated-disconnected and pruned scenarios.
    """

    space: str
    scenarios: int
    evaluated: int
    pruned: int
    disconnected: int
    baseline_primary: float
    baseline_secondary: float
    baseline_max_utilization: float
    aggregate: SpaceAggregate
    stats: dict[str, int]


ScoreFn = Callable[[Evaluation, Network], tuple[float, float]]


def _native_score(evaluation: Evaluation, net: Network) -> tuple[float, float]:
    objective = evaluation.objective
    return float(objective.primary), float(objective.secondary)


def sweep_scenario_space(
    engine,
    space: Union[ScenarioSpace, str],
    *,
    prune: bool = True,
    percentiles=DEFAULT_PERCENTILES,
    cvar_alpha: float = DEFAULT_CVAR_ALPHA,
    score: Optional[ScoreFn] = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    on_prune: Optional[Callable[[Scenario, str], None]] = None,
) -> SpaceSweepResult:
    """Stream a scenario space through a sweep engine and aggregate.

    Args:
        engine: A :class:`~repro.scenarios.batch.SweepEngine` pinned to
            the weight setting under test.
        space: A :class:`ScenarioSpace` or its spec string.
        prune: Dominance-prune pure-failure scenarios whose surviving
            network is a subgraph of a known-disconnected one.  Exact
            for aggregates; ``False`` evaluates everything.
        percentiles: Percentile levels folded per metric.
        cvar_alpha: CVaR tail level.
        score: ``(evaluation, surviving network) -> (primary,
            secondary)``; defaults to the evaluation's native
            lexicographic objective.  Sessions pass their cost model.
        chunk_size: Scenarios pulled from the generator per batch.
        on_prune: Observation hook ``(scenario, witness)`` called for
            every pruned scenario (the property suite re-evaluates the
            scenario behind it to assert pruning soundness).
    """
    if isinstance(space, str):
        space = parse_space(space)
    if chunk_size < 1:
        raise ValueError(f"chunk size must be >= 1, got {chunk_size}")
    score_fn = score if score is not None else _native_score
    net = engine.network
    pruner = (
        DominancePruner(net, engine.high_traffic, engine.low_traffic)
        if prune
        else None
    )
    aggregate = StreamingAggregate(
        percentiles=percentiles, cvar_alpha=cvar_alpha
    )
    total = evaluated = pruned = disconnected = 0
    iterator = space.scenarios(net)
    with obs.span("scenarios.space", space=space.spec()):
        while True:
            chunk = list(itertools.islice(iterator, chunk_size))
            if not chunk:
                break
            for scenario in chunk:
                total += 1
                witness = (
                    pruner.dominated(scenario) if pruner is not None else None
                )
                if witness is not None:
                    pruned += 1
                    disconnected += 1
                    aggregate.add_disconnected()
                    if on_prune is not None:
                        on_prune(scenario, witness)
                    continue
                outcome = engine.evaluate_streaming(scenario)
                evaluated += 1
                if outcome.disconnected:
                    disconnected += 1
                    aggregate.add_disconnected()
                    if pruner is not None:
                        pruner.record(scenario)
                else:
                    primary, secondary = score_fn(
                        outcome.evaluation, outcome.lowered.network
                    )
                    aggregate.add(
                        primary, secondary, outcome.evaluation.max_utilization
                    )
    baseline_primary, baseline_secondary = score_fn(engine.baseline, net)
    baseline_max_utilization = engine.baseline.max_utilization
    _events = "repro_spaces_scenarios_total"
    _help = "Space-sweep scenario outcomes by disposition."
    obs.counter(_events, _help, {"disposition": "evaluated"}).inc(evaluated)
    obs.counter(_events, _help, {"disposition": "pruned"}).inc(pruned)
    obs.counter(_events, _help, {"disposition": "disconnected"}).inc(disconnected)
    return SpaceSweepResult(
        space=space.spec(),
        scenarios=total,
        evaluated=evaluated,
        pruned=pruned,
        disconnected=disconnected,
        baseline_primary=baseline_primary,
        baseline_secondary=baseline_secondary,
        baseline_max_utilization=baseline_max_utilization,
        aggregate=aggregate.finalize(
            baseline_primary, baseline_secondary, baseline_max_utilization
        ),
        stats=dict(engine.stats),
    )


# ----------------------------------------------------------------------
# Spec-grammar registration
# ----------------------------------------------------------------------
def _parse_all_link(arg: str) -> ScenarioSpace:
    if not arg:
        raise ValueError("expected a failure size K (e.g. space:all-link-2)")
    try:
        k = int(arg)
    except ValueError:
        raise ValueError(
            f"bad failure size {arg!r}: expected an integer"
        ) from None
    return AllLinkFailures(k=k)


def _parse_all_node(arg: str) -> ScenarioSpace:
    if arg:
        raise ValueError(f"unexpected argument {arg!r}")
    return AllNodeFailures()


def _parse_srlg_closure(arg: str) -> ScenarioSpace:
    if arg:
        raise ValueError(f"unexpected argument {arg!r}")
    return SrlgClosure()


def _parse_surge_sample(arg: str) -> ScenarioSpace:
    n, seed = DEFAULT_SURGE_SAMPLES, DEFAULT_SURGE_SEED
    if arg:
        for token in arg.split(":"):
            key, sep, value = token.partition("=")
            if not sep:
                raise ValueError(
                    f"bad option {token.strip()!r}: expected key=value"
                )
            key = key.strip()
            try:
                parsed = int(value)
            except ValueError:
                raise ValueError(
                    f"bad value {value.strip()!r} for {key!r}: expected an integer"
                ) from None
            if key == "n":
                n = parsed
            elif key == "seed":
                seed = parsed
            else:
                raise ValueError(
                    f"unknown option {key!r}: expected n= or seed="
                )
    return SurgeSample(n=n, seed=seed)


for _kind in (
    SpaceKind("all-link", _parse_all_link,
              "space:all-link-K — every failure of K duplex adjacencies"),
    SpaceKind("all-node", _parse_all_node,
              "space:all-node — every single-node failure"),
    SpaceKind("srlg-closure", _parse_srlg_closure,
              "space:srlg-closure — the SRLG grid plus all pairwise unions"),
    SpaceKind("surge-sample", _parse_surge_sample,
              "space:surge-sample[:n=N][:seed=S] — N seeded degree-weighted "
              "hot-spot surges"),
):
    register_space_kind(_kind)
