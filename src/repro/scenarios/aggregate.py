"""Streaming robustness aggregation over scenario-space sweeps.

A combinatorial scenario space ("all 2-link failures") is far too large
to keep its per-scenario outcomes around: each
:class:`~repro.scenarios.batch.ScenarioOutcome` holds a lowered network,
a projection, and full load arrays.  The :class:`StreamingAggregate`
folds outcomes as they stream past, retaining only three scalars per
*connected* scenario (primary cost, secondary cost, max utilization) —
the irreducible retention for *exact* percentiles — plus a disconnected
counter.  Peak memory is therefore dominated by the evaluation working
set, not by the space.

The guarantee stated by ``tests/test_spaces_properties.py``: the
finalized percentiles, CVaR, worst, and mean are **bit-equal** to
calling numpy on the materialized list of the same values in the same
order.  That holds by construction — finalization runs the very same
``np.percentile`` / ``mean`` / ``max`` reductions over the same float64
buffer.

CVaR (conditional value at risk) at level ``alpha`` is the mean of the
values at or above the ``alpha``-percentile — the expected cost of the
worst ``(1 - alpha)`` tail, the robustness statistic a percentile alone
understates.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass

import numpy as np

DEFAULT_PERCENTILES = (50.0, 90.0, 99.0)
"""Percentile levels reported when the caller does not choose."""

DEFAULT_CVAR_ALPHA = 0.95
"""Tail level of the CVaR statistic (mean of the worst 5%)."""


@dataclass(frozen=True)
class MetricAggregate:
    """Summary of one scalar metric over the connected scenarios.

    Attributes:
        worst: Maximum observed value.
        mean: Arithmetic mean.
        percentiles: ``(level, value)`` pairs, in the requested order.
        cvar: Mean of the values at or above the ``cvar_alpha``
            percentile (the expected tail cost).
    """

    worst: float
    mean: float
    percentiles: tuple[tuple[float, float], ...]
    cvar: float

    def percentile(self, level: float) -> float:
        """The value at one requested percentile level.

        Raises:
            KeyError: if ``level`` was not requested at fold time.
        """
        for q, value in self.percentiles:
            if q == level:
                return value
        levels = ", ".join(f"{q:g}" for q, _ in self.percentiles)
        raise KeyError(f"percentile {level:g} not folded (have: {levels})")


@dataclass(frozen=True)
class SpaceAggregate:
    """Robustness summary of one scenario-space sweep.

    Cost statistics fold the *connected* scenarios only — mirroring
    :class:`~repro.scenarios.batch.ScenarioClassSummary`, a scenario
    that cut demand off routes less traffic, so its cost is not
    comparable — while ``disconnected`` counts how many scenarios were
    flagged (whether evaluated or dominance-pruned).
    """

    connected: int
    disconnected: int
    primary: MetricAggregate
    secondary: MetricAggregate
    max_utilization: MetricAggregate


class StreamingAggregate:
    """Folds per-scenario results into a :class:`SpaceAggregate`.

    Args:
        percentiles: Percentile levels to report, each in ``[0, 100]``.
        cvar_alpha: CVaR tail level, in ``(0, 1)``.
    """

    def __init__(
        self,
        percentiles=DEFAULT_PERCENTILES,
        cvar_alpha: float = DEFAULT_CVAR_ALPHA,
    ) -> None:
        self.percentiles = tuple(float(p) for p in percentiles)
        if any(not 0.0 <= p <= 100.0 for p in self.percentiles):
            raise ValueError(
                f"percentile levels must be in [0, 100], got {self.percentiles}"
            )
        self.cvar_alpha = float(cvar_alpha)
        if not 0.0 < self.cvar_alpha < 1.0:
            raise ValueError(
                f"cvar_alpha must be in (0, 1), got {self.cvar_alpha}"
            )
        self._primary = array("d")
        self._secondary = array("d")
        self._max_utilization = array("d")
        self._disconnected = 0

    @property
    def connected(self) -> int:
        """Connected scenarios folded so far."""
        return len(self._primary)

    @property
    def disconnected(self) -> int:
        """Disconnected scenarios counted so far."""
        return self._disconnected

    def add(
        self, primary: float, secondary: float, max_utilization: float
    ) -> None:
        """Fold one connected scenario's scalars."""
        self._primary.append(float(primary))
        self._secondary.append(float(secondary))
        self._max_utilization.append(float(max_utilization))

    def add_disconnected(self) -> None:
        """Count one disconnected scenario (evaluated or pruned)."""
        self._disconnected += 1

    def _metric(self, values: array, baseline: float) -> MetricAggregate:
        if not len(values):
            # No connected scenario: every statistic degenerates to the
            # baseline, the same fallback ScenarioClassSummary uses.
            return MetricAggregate(
                worst=baseline,
                mean=baseline,
                percentiles=tuple((p, baseline) for p in self.percentiles),
                cvar=baseline,
            )
        folded = np.asarray(values, dtype=np.float64)
        var = np.percentile(folded, self.cvar_alpha * 100.0)
        return MetricAggregate(
            worst=float(folded.max()),
            mean=float(folded.mean()),
            percentiles=tuple(
                (p, float(np.percentile(folded, p))) for p in self.percentiles
            ),
            cvar=float(folded[folded >= var].mean()),
        )

    def finalize(
        self,
        baseline_primary: float,
        baseline_secondary: float,
        baseline_max_utilization: float,
    ) -> SpaceAggregate:
        """The folded summary; baselines back the empty-metric fallback."""
        return SpaceAggregate(
            connected=self.connected,
            disconnected=self._disconnected,
            primary=self._metric(self._primary, baseline_primary),
            secondary=self._metric(self._secondary, baseline_secondary),
            max_utilization=self._metric(
                self._max_utilization, baseline_max_utilization
            ),
        )
