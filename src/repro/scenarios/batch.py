"""Batched scenario evaluation with incremental-SPF reuse.

Evaluating a :class:`~repro.scenarios.algebra.Scenario` from scratch
costs two all-destination Dijkstras plus a per-destination ECMP load
pass — the same work a fresh :class:`~repro.routing.state.Routing` does.
A sweep over hundreds of scenarios repeats almost all of it: scenarios
share the intact baseline, most failures leave most destinations'
shortest paths untouched, and traffic-only scenarios change no routing
at all.  The :class:`SweepEngine` exploits exactly that structure:

* **Shared projections** — scenarios failing the same elements share one
  :class:`~repro.scenarios.projection.TopologyProjection` (and its
  reachability analysis).
* **Derived routings** — a degraded network's routing is derived from
  the intact baseline: only destinations whose SP DAG used a failed link
  (:func:`repro.routing.incremental.destinations_using_links`) get a
  restricted Dijkstra over the survivors; every other distance row, SP
  DAG, and per-destination load row is reused.  When the affected set is
  large (more than ``fallback_fraction`` of the nodes) the engine falls
  back to a full SPF — pruning would cost more than it saves.
* **Shared load rows** — per-destination load rows are reused whenever
  the destination is unaffected *and* its demand column is unchanged by
  the scenario's traffic transform.

The reuse is exact, not approximate: load rows are summed in the same
fixed order as :class:`~repro.core.evaluator.DualTopologyEvaluator`'s
``_ordered_row_sum`` and priced through the shared
:func:`~repro.costs.load_cost.load_cost_from_loads` /
:func:`~repro.costs.sla.sla_cost_from_loads` costing passes, so a
batched sweep is **bit-identical** to building every degraded network
from scratch and running the full evaluator on it — the contract
enforced by ``tests/test_scenarios_differential.py`` and the
``benchmarks/test_bench_scenarios.py`` speedup benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from repro import obs
from repro.core.evaluator import LOAD_MODE, SLA_MODE, Evaluation
from repro.core.lexicographic import LexCost
from repro.costs.load_cost import load_cost_from_loads
from repro.costs.sla import SlaParams, sla_cost_from_loads
from repro.network.graph import Network
from repro.routing.incremental import destinations_using_links
from repro.routing.spf import distances_to_subset, distances_to_subsets_batched
from repro.routing.state import Routing
from repro.routing.weights import weights_key
from repro.scenarios.algebra import LoweredScenario, Scenario
from repro.scenarios.projection import TopologyProjection
from repro.traffic.matrix import TrafficMatrix

# Out-of-band telemetry (rule RL006): the engine's deterministic reuse
# counters mirrored as process-wide instruments, plus batch occupancy.
_OBS_SWEEP_EVENTS = {
    key: obs.counter(
        "repro_scenarios_engine_events_total",
        "SweepEngine reuse/recompute events by kind.",
        {"event": key},
    )
    for key in (
        "scenarios", "shared_projections", "shared_routings",
        "derived_routings", "full_routings", "reused_rows", "recomputed_rows",
    )
}
_OBS_SWEEP_BATCH = obs.histogram(
    "repro_scenarios_sweep_batch_size",
    "Scenarios per SweepEngine.sweep call.",
    buckets=obs.SIZE_BUCKETS,
)

DEFAULT_FALLBACK_FRACTION = 0.5
"""Affected-destination fraction above which a full SPF beats pruning."""

ROUTING_MEMO_CAP = 256
"""Degraded routings kept per engine.  Each entry holds an ``n x n``
distance matrix plus lazy DAG state, and a Session caches its engine for
the lifetime of a baseline — an unbounded memo would grow with every
distinct failure ever queried.  FIFO eviction keeps repeated interactive
queries fast without letting long-lived sessions accumulate memory."""


def _ordered_row_sum(rows: np.ndarray, num_links: int) -> np.ndarray:
    """Sum per-destination load rows left to right.

    Mirrors the evaluator's fixed summation order so batched loads are
    bit-identical to a full evaluator run over the same network.
    """
    loads = np.zeros(num_links)
    for row in rows:
        loads += row
    return loads


class _ClassState:
    """Intact baseline state of one traffic class (the derivation parent)."""

    def __init__(
        self,
        net: Network,
        weights: np.ndarray,
        routing: Routing,
        traffic: TrafficMatrix,
    ) -> None:
        self.weights = np.asarray(weights, dtype=np.int64)
        self.key = weights_key(self.weights)
        self.routing = routing
        self.demands = traffic.demands
        self.active = np.flatnonzero(self.demands.sum(axis=0) > 0)
        self.index = {int(t): i for i, t in enumerate(self.active)}
        if self.active.size:
            self.rows = routing.destination_rows(
                self.active, self.demands[:, self.active].T
            )
        else:
            self.rows = np.empty((0, net.num_links))
        self.loads = _ordered_row_sum(self.rows, net.num_links)


@dataclass(frozen=True)
class ScenarioOutcome:
    """Evaluation of one scenario within a sweep."""

    scenario: Scenario
    lowered: LoweredScenario
    evaluation: Evaluation

    @property
    def kind(self) -> str:
        """The scenario's class (``"link"``, ``"node"``, ...)."""
        return self.scenario.kind

    @property
    def description(self) -> str:
        return self.lowered.description

    @property
    def disconnected(self) -> bool:
        """Whether the scenario cut off positive demand (see ``lowered``)."""
        return self.lowered.disconnected

    @property
    def lost_demand(self) -> float:
        """Demand volume (Mb/s) the surviving network cannot route."""
        return self.lowered.lost_demand

    @property
    def objective(self) -> LexCost:
        """The evaluation's native lexicographic objective."""
        return self.evaluation.objective


@dataclass(frozen=True)
class ScenarioClassSummary:
    """Worst/mean degradation of one scenario class within a sweep.

    Cost statistics fold the *connected* outcomes only — a scenario that
    cut demand off routes less traffic, so its cost is not comparable —
    while ``disconnected`` counts how many outcomes were flagged.
    """

    kind: str
    scenarios: int
    disconnected: int
    worst_primary: float
    mean_primary: float
    worst_secondary: float
    mean_secondary: float
    worst_max_utilization: float


@dataclass(frozen=True)
class SweepResult:
    """Outcome of one batched scenario sweep."""

    baseline: Evaluation
    outcomes: tuple[ScenarioOutcome, ...]
    stats: dict[str, int]

    @property
    def disconnected_count(self) -> int:
        """Number of outcomes that cut off positive demand."""
        return sum(1 for o in self.outcomes if o.disconnected)

    def by_class(self) -> dict[str, ScenarioClassSummary]:
        """Per-scenario-class worst/mean degradation, keyed by kind."""
        grouped: dict[str, list[ScenarioOutcome]] = {}
        for outcome in self.outcomes:
            grouped.setdefault(outcome.kind, []).append(outcome)
        summaries = {}
        for kind in sorted(grouped):
            outcomes = grouped[kind]
            connected = [o for o in outcomes if not o.disconnected]
            primaries = [o.objective.primary for o in connected]
            secondaries = [o.objective.secondary for o in connected]
            base = self.baseline.objective
            summaries[kind] = ScenarioClassSummary(
                kind=kind,
                scenarios=len(outcomes),
                disconnected=len(outcomes) - len(connected),
                worst_primary=max(primaries) if primaries else base.primary,
                mean_primary=(
                    float(np.mean(primaries)) if primaries else base.primary
                ),
                worst_secondary=max(secondaries) if secondaries else base.secondary,
                mean_secondary=(
                    float(np.mean(secondaries)) if secondaries else base.secondary
                ),
                worst_max_utilization=max(
                    (o.evaluation.max_utilization for o in connected),
                    default=self.baseline.max_utilization,
                ),
            )
        return summaries


class SweepEngine:
    """Evaluates scenarios against one pinned weight setting, with reuse.

    Args:
        net: The intact network.
        high_weights: Baseline high-priority weights.
        low_weights: Baseline low-priority weights (may equal
            ``high_weights`` — the STR deployment — in which case the
            two classes share one routing).
        high_traffic: Intact high-priority traffic.
        low_traffic: Intact low-priority traffic.
        mode: ``"load"`` or ``"sla"``.
        sla_params: SLA parameters (SLA mode only).
        batched: ``False`` disables every reuse path — each scenario is
            rebuilt from scratch exactly as a naive per-scenario loop
            would.  The differential tests and the benchmark compare the
            two settings bit for bit.
        fallback_fraction: Affected-destination fraction above which a
            derived routing falls back to a full SPF.
        vectorized: Whether routings accumulate loads on the SoA kernels
            or the scalar reference loop (bit-identical either way).
    """

    def __init__(
        self,
        net: Network,
        high_weights,
        low_weights,
        high_traffic: TrafficMatrix,
        low_traffic: TrafficMatrix,
        *,
        mode: str = LOAD_MODE,
        sla_params: Optional[SlaParams] = None,
        batched: bool = True,
        fallback_fraction: float = DEFAULT_FALLBACK_FRACTION,
        vectorized: bool = True,
    ) -> None:
        if mode not in (LOAD_MODE, SLA_MODE):
            raise ValueError(f"mode must be '{LOAD_MODE}' or '{SLA_MODE}', got {mode!r}")
        self._net = net
        self._high_tm = high_traffic
        self._low_tm = low_traffic
        self.mode = mode
        self.sla_params = sla_params or SlaParams()
        self.batched = bool(batched)
        self.fallback_fraction = float(fallback_fraction)
        self.vectorized = bool(vectorized)
        wh = np.asarray(high_weights, dtype=np.int64)
        wl = np.asarray(low_weights, dtype=np.int64)
        high_routing = Routing(net, wh, vectorized=self.vectorized)
        low_routing = (
            high_routing
            if np.array_equal(wh, wl)
            else Routing(net, wl, vectorized=self.vectorized)
        )
        self._high = _ClassState(net, wh, high_routing, high_traffic)
        self._low = _ClassState(net, wl, low_routing, low_traffic)
        self._projections: dict[tuple[int, ...], TopologyProjection] = {}
        # (failed-links, weights-key) -> the derived/rebuilt degraded routing
        self._routings: dict[tuple[tuple[int, ...], bytes], Routing] = {}
        self.stats = {
            "scenarios": 0,
            "shared_projections": 0,
            "shared_routings": 0,
            "derived_routings": 0,
            "full_routings": 0,
            "reused_rows": 0,
            "recomputed_rows": 0,
        }
        self.baseline: Evaluation = self._cost(
            net, self._high.loads, self._low.loads, high_traffic, high_routing
        )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def network(self) -> Network:
        """The intact network the engine was built over."""
        return self._net

    @property
    def high_traffic(self) -> TrafficMatrix:
        """The intact high-priority traffic."""
        return self._high_tm

    @property
    def low_traffic(self) -> TrafficMatrix:
        """The intact low-priority traffic."""
        return self._low_tm

    def _mirror_stats(self, before: dict) -> None:
        """Mirror the stat deltas since ``before`` into obs counters."""
        for key, value in self.stats.items():
            delta = value - before[key]
            if delta:
                _OBS_SWEEP_EVENTS[key].inc(delta)

    def evaluate(self, scenario: Scenario) -> ScenarioOutcome:
        """Evaluate one scenario (reusing whatever earlier queries built)."""
        before = dict(self.stats)
        outcome = self._evaluate_lowered(scenario, self._lower(scenario))
        self._mirror_stats(before)
        return outcome

    def evaluate_streaming(self, scenario: Scenario) -> ScenarioOutcome:
        """Evaluate one scenario without growing any engine cache.

        Identical outcome to :meth:`evaluate` — derived-routing and
        load-row reuse against the intact parent still apply — but the
        per-scenario :class:`TopologyProjection` and degraded routing
        are transient: existing routing-memo entries are consulted,
        none are inserted.  Space sweeps stream millions of *distinct*
        failure sets through one engine; retaining per-scenario state
        would peak at the memo cap for reuse that combinatorial
        enumeration never exhibits, and would evict the entries a
        long-lived session's interactive queries actually revisit.
        """
        lowered = scenario.lower(
            self._net, self._high_tm, self._low_tm, projections=None
        )
        return self._evaluate_lowered(scenario, lowered, memoize=False)

    def sweep(self, scenarios: Iterable[Scenario]) -> SweepResult:
        """Evaluate every scenario and fold the outcomes into a result.

        In batched mode the sweep lowers every scenario first and
        prefetches the degraded routings the batch will need, so their
        restricted Dijkstras run blocked
        (:func:`repro.routing.spf.distances_to_subsets_batched`) instead
        of one scipy call per scenario.  Outcomes and stats are
        bit-identical to evaluating the scenarios one by one.
        """
        before = dict(self.stats)
        pairs = [(scenario, self._lower(scenario)) for scenario in scenarios]
        with obs.span("scenarios.sweep", scenarios=len(pairs)):
            _OBS_SWEEP_BATCH.observe(len(pairs))
            if self.batched:
                self._prefetch_routings(lowered for _, lowered in pairs)
            outcomes = tuple(
                self._evaluate_lowered(scenario, lowered) for scenario, lowered in pairs
            )
        self._mirror_stats(before)
        return SweepResult(
            baseline=self.baseline, outcomes=outcomes, stats=dict(self.stats)
        )

    def sweep_space(self, space, **kwargs):
        """Stream a combinatorial scenario space through this engine.

        Delegates to
        :func:`repro.scenarios.spaces.sweep_scenario_space`; ``space``
        is a :class:`~repro.scenarios.spaces.ScenarioSpace` or a spec
        string (``"space:all-link-2"``), and keyword arguments
        (``prune``, ``percentiles``, ``cvar_alpha``, ...) pass through.
        """
        from repro.scenarios.spaces import sweep_scenario_space

        return sweep_scenario_space(self, space, **kwargs)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _lower(self, scenario: Scenario) -> LoweredScenario:
        """Lower one scenario, sharing projections and counting the hit."""
        before = len(self._projections)
        lowered = scenario.lower(
            self._net,
            self._high_tm,
            self._low_tm,
            projections=self._projections if self.batched else None,
        )
        if self.batched and len(self._projections) == before:
            self.stats["shared_projections"] += 1
        return lowered

    _PREFETCH_CHUNK = 32
    """Degraded routings resolved per blocked-Dijkstra call.  Bounds the
    block-diagonal matrix (``chunk * num_nodes`` rows) while still
    amortizing the scipy call overhead across many scenarios."""

    def _prefetch_routings(self, lowereds: Iterable[LoweredScenario]) -> None:
        """Build the degraded routings a sweep needs with blocked Dijkstra.

        Collects the distinct ``(failed_links, weights_key)`` routing-memo
        misses the batch will incur — in first-need order, so the FIFO
        memo evolves exactly as under sequential evaluation — and resolves
        them chunk-wise through one
        :func:`~repro.routing.spf.distances_to_subsets_batched` call per
        chunk.  The derive-vs-full decision, the resulting routings, and
        the ``derived_routings``/``full_routings`` stats are identical to
        what :meth:`_class_routing` would have produced on demand; at most
        :data:`ROUTING_MEMO_CAP` keys are prefetched (more would only
        evict each other) — any overflow falls back to on-demand builds.
        """
        classes = [self._high]
        if self._low.key != self._high.key:
            classes.append(self._low)
        pending: dict[tuple[tuple[int, ...], bytes], TopologyProjection] = {}
        for lowered in lowereds:
            projection = lowered.projection
            if projection.is_identity:
                continue
            for cls in classes:
                key = (projection.failed_links, cls.key)
                if key not in self._routings and key not in pending:
                    pending[key] = projection
            if len(pending) >= ROUTING_MEMO_CAP:
                break
        keys = list(pending)[:ROUTING_MEMO_CAP]
        by_key = {self._high.key: self._high, self._low.key: self._low}
        num_nodes = self._net.num_nodes
        for start in range(0, len(keys), self._PREFETCH_CHUNK):
            chunk = keys[start : start + self._PREFETCH_CHUNK]
            tasks = []
            plans = []
            for key in chunk:
                projection = pending[key]
                cls = by_key[key[1]]
                projected = projection.project_weights(cls.weights)
                affected = destinations_using_links(
                    self._net,
                    cls.routing.distance_matrix,
                    cls.weights,
                    self._flow_relevant_links(projection),
                )
                full = affected.size > self.fallback_fraction * num_nodes
                dests = np.arange(num_nodes) if full else affected
                tasks.append((projection.network, projected, dests))
                plans.append((key, cls, projection, projected, affected, full))
            blocks = distances_to_subsets_batched(tasks)
            for plan, rows in zip(plans, blocks):
                key, cls, projection, projected, affected, full = plan
                if full:
                    # Exact-integer path sums make the blocked rows equal
                    # a from-scratch distances_to_all bit for bit.
                    dist = rows
                    self.stats["full_routings"] += 1
                else:
                    dist = cls.routing.distance_matrix.copy()
                    if affected.size:
                        dist[affected] = rows
                    self.stats["derived_routings"] += 1
                routing = Routing.from_precomputed(
                    projection.network, projected, dist, vectorized=self.vectorized
                )
                while len(self._routings) >= ROUTING_MEMO_CAP:
                    self._routings.pop(next(iter(self._routings)))
                self._routings[key] = routing

    def _evaluate_lowered(
        self,
        scenario: Scenario,
        lowered: LoweredScenario,
        memoize: bool = True,
    ) -> ScenarioOutcome:
        self.stats["scenarios"] += 1
        projection = lowered.projection
        high_routing = self._class_routing(self._high, projection, memoize)
        if self._low.key == self._high.key:
            low_routing = high_routing
        else:
            low_routing = self._class_routing(self._low, projection, memoize)
        high_loads = self._class_loads(
            self._high, projection, high_routing, lowered.high_traffic
        )
        low_loads = self._class_loads(
            self._low, projection, low_routing, lowered.low_traffic
        )
        evaluation = self._cost(
            projection.network, high_loads, low_loads,
            lowered.high_traffic, high_routing,
        )
        return ScenarioOutcome(
            scenario=scenario, lowered=lowered, evaluation=evaluation
        )

    def _cost(
        self,
        net: Network,
        high_loads: np.ndarray,
        low_loads: np.ndarray,
        high_traffic: TrafficMatrix,
        high_routing: Routing,
    ) -> Evaluation:
        if self.mode == LOAD_MODE:
            return load_cost_from_loads(net, high_loads, low_loads)
        return sla_cost_from_loads(
            net,
            high_loads,
            low_loads,
            high_traffic,
            high_routing.pair_link_fractions,
            params=self.sla_params,
        )

    def _class_routing(
        self,
        cls: _ClassState,
        projection: TopologyProjection,
        memoize: bool = True,
    ) -> Routing:
        """The degraded routing of one class: shared, derived, or rebuilt."""
        if projection.is_identity:
            if not self.batched:
                self.stats["full_routings"] += 1
                return Routing(
                    projection.network, cls.weights, vectorized=self.vectorized
                )
            self.stats["shared_routings"] += 1
            return cls.routing
        key = (projection.failed_links, cls.key)
        hit = self._routings.get(key)
        if hit is not None:
            return hit
        projected = projection.project_weights(cls.weights)
        if not self.batched:
            self.stats["full_routings"] += 1
            # No memo: naive mode repeats all work by design.
            return Routing(projection.network, projected, vectorized=self.vectorized)
        affected = destinations_using_links(
            self._net,
            cls.routing.distance_matrix,
            cls.weights,
            self._flow_relevant_links(projection),
        )
        if affected.size > self.fallback_fraction * self._net.num_nodes:
            # Pruned Dijkstra would recompute most rows anyway: rebuild
            # the distances outright.  Load-row reuse is unaffected — it
            # runs on the parent rows' failed-link flow, not on this set.
            routing = Routing(
                projection.network, projected, vectorized=self.vectorized
            )
            self.stats["full_routings"] += 1
        else:
            routing = self._derive_routing(cls, projection, projected, affected)
            self.stats["derived_routings"] += 1
        if memoize:
            while len(self._routings) >= ROUTING_MEMO_CAP:
                self._routings.pop(next(iter(self._routings)))
            self._routings[key] = routing
        return routing

    def _flow_relevant_links(self, projection: TopologyProjection) -> tuple[int, ...]:
        """Failed links whose removal can change some survivor's load row.

        Out-links of a fully *isolated* node (a node failure) are always
        on that node's own shortest paths, so the plain used-link test
        would flag every destination — yet the node carries no routable
        traffic (its demand pairs are zeroed by lowering), so its own
        path usage moves no load.  Transit by other nodes *through* the
        failed node always uses one of its in-links, which stay in the
        test.  Excluding the out-links is therefore exact for load rows;
        the only distance entries left stale by the narrower set are the
        failed node's own, which no surviving flow ever consults.
        """
        isolated = projection.isolated_nodes()
        if not isolated:
            return projection.failed_links
        iso = set(isolated)
        srcs = self._net.link_sources()
        return tuple(
            l for l in projection.failed_links if int(srcs[l]) not in iso
        )

    def _derive_routing(
        self,
        cls: _ClassState,
        projection: TopologyProjection,
        projected_weights: np.ndarray,
        affected: np.ndarray,
    ) -> Routing:
        """Degraded routing sharing all unaffected state with the parent.

        Distance rows of unaffected destinations are copied verbatim
        (removal cannot change a survivor's distance there — integer
        weights make the copies exact); affected rows get a restricted
        Dijkstra over the survivors.  Copied rows may keep a stale finite
        entry for an *isolated* node, which is deliberate: no surviving
        flow ever consults it (see :meth:`_flow_relevant_links`), so
        every evaluated quantity stays bit-identical to a from-scratch
        build.  SP DAGs are left to the routing's lazy per-destination
        build: unaffected destinations have their whole load row reused,
        so their DAGs are never needed, and eagerly translating them into
        the surviving link space would cost more than it saves.
        """
        dist = cls.routing.distance_matrix.copy()
        if affected.size:
            dist[affected] = distances_to_subset(
                projection.network, projected_weights, affected
            )
        return Routing.from_precomputed(
            projection.network, projected_weights, dist, vectorized=self.vectorized
        )

    def _class_loads(
        self,
        cls: _ClassState,
        projection: TopologyProjection,
        routing: Routing,
        traffic: TrafficMatrix,
    ) -> np.ndarray:
        """Per-link loads of one class under the scenario.

        A destination's intact load row is reused (restricted to the
        surviving links) iff its demand column is unchanged and the
        parent row puts **zero flow on every failed link**.  The flow
        test is exact, not a heuristic: ECMP assigns positive flow to
        every DAG edge reachable from an injecting source, so zero flow
        on the failed links means the destination's entire flow pattern
        avoids them — its flow-carrying nodes keep their distances and
        DAG out-sets, and the degraded row equals the intact one on the
        survivors bit for bit.  (This is strictly sharper than the SP-DAG
        slack test for sparse traffic: a failed link on some *unloaded*
        shortest path disturbs nothing.)  Rows are summed in
        active-destination order, matching both
        :meth:`Routing.link_loads` and the evaluator.
        """
        demands = traffic.demands
        active = np.flatnonzero(demands.sum(axis=0) > 0)
        num_links = routing.network.num_links
        rows = np.empty((active.size, num_links))
        surviving = None if projection.is_identity else projection.surviving_index_array()
        failed = (
            np.asarray(projection.failed_links, dtype=np.int64)
            if projection.failed_links
            else None
        )
        untouched = demands is cls.demands  # no transform, nothing disconnected
        recompute: list[int] = []
        for i, t in enumerate(active):
            t = int(t)
            j = cls.index.get(t)
            if (
                self.batched
                and j is not None
                and (failed is None or not cls.rows[j][failed].any())
                and (untouched or np.array_equal(demands[:, t], cls.demands[:, t]))
            ):
                rows[i] = cls.rows[j] if surviving is None else cls.rows[j][surviving]
                self.stats["reused_rows"] += 1
            else:
                recompute.append(i)
        if recompute:
            # One batched kernel call covers every row the reuse test
            # rejected; rows land in active-destination order, so the
            # fixed summation below is unchanged.
            ts = active[recompute]
            rows[recompute] = routing.destination_rows(ts, demands[:, ts].T)
            self.stats["recomputed_rows"] += len(recompute)
        return _ordered_row_sum(rows, num_links)


def sweep_scenarios(
    net: Network,
    high_weights,
    low_weights,
    high_traffic: TrafficMatrix,
    low_traffic: TrafficMatrix,
    scenarios: Iterable[Scenario],
    *,
    mode: str = LOAD_MODE,
    sla_params: Optional[SlaParams] = None,
    batched: bool = True,
    fallback_fraction: float = DEFAULT_FALLBACK_FRACTION,
    vectorized: bool = True,
) -> SweepResult:
    """Evaluate a weight setting under every scenario, sharing state.

    The functional entry point over :class:`SweepEngine`; see the module
    docstring for the reuse structure and the bit-identity contract.
    """
    engine = SweepEngine(
        net,
        high_weights,
        low_weights,
        high_traffic,
        low_traffic,
        mode=mode,
        sla_params=sla_params,
        batched=batched,
        fallback_fraction=fallback_fraction,
        vectorized=vectorized,
    )
    return engine.sweep(scenarios)
