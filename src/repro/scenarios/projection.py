"""Topology projections: the surviving network after a set of links fail.

Every scenario class that removes capacity — single/multi-link failures,
node failures, SRLGs, and compositions of them — ultimately fails a
*set of directed link indices* of the intact network.  A
:class:`TopologyProjection` is the reusable artifact of that set: the
surviving :class:`~repro.network.graph.Network`, the index maps between
intact and surviving link spaces, and the (lazily computed) pairwise
reachability of the survivors.  Scenarios that fail the same elements
share one projection, which is what lets the batch evaluator
(:mod:`repro.scenarios.batch`) amortize network construction and
reachability analysis across a whole :class:`~repro.scenarios.ScenarioSet`.

Surviving links keep the *relative order* of their intact indices — the
same convention as :func:`repro.network.failures.remove_adjacency` — so
per-link arrays project between the two spaces with a single fancy
index, and routing computations over the surviving network are
bit-identical to those over a degraded network built from scratch.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import shortest_path

from repro.network.graph import Network


class TopologyProjection:
    """The surviving network after failing a set of directed links.

    Args:
        net: The intact network.
        failed_links: Directed link indices of ``net`` that fail.  An
            empty set yields the *identity projection*, which shares the
            intact network object (no copy) so routing state computed on
            it can be reused verbatim.

    Attributes:
        failed_links: The failed directed link indices, sorted.
        network: The surviving network (the intact one for the identity
            projection).
        surviving_links: Intact indices of the surviving links, in the
            order they appear in the surviving network.
    """

    def __init__(self, net: Network, failed_links: Iterable[int] = ()) -> None:
        failed = sorted(set(int(l) for l in failed_links))
        for l in failed:
            if not 0 <= l < net.num_links:
                raise ValueError(
                    f"failed link index {l} out of range [0, {net.num_links})"
                )
        self._intact = net
        self.failed_links: tuple[int, ...] = tuple(failed)
        if not failed:
            self.network = net
            self.surviving_links: tuple[int, ...] = tuple(range(net.num_links))
        else:
            failed_set = set(failed)
            degraded = Network(
                net.num_nodes,
                name=f"{net.name}-minus-{len(failed)}-links",
            )
            surviving = []
            for link in net.links:
                if link.index in failed_set:
                    continue
                degraded.add_link(
                    link.src, link.dst, link.capacity_mbps, link.prop_delay_ms
                )
                surviving.append(link.index)
            self.network = degraded
            self.surviving_links = tuple(surviving)
        self._link_map: Optional[np.ndarray] = None
        self._surviving_array: Optional[np.ndarray] = None
        self._reachable: Optional[np.ndarray] = None
        self._strongly_connected: Optional[bool] = None
        self._isolated: Optional[tuple[int, ...]] = None

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def intact_network(self) -> Network:
        """The intact network the projection was built from."""
        return self._intact

    @property
    def is_identity(self) -> bool:
        """Whether no links fail (the surviving network *is* the intact one)."""
        return not self.failed_links

    @property
    def num_failed(self) -> int:
        """Number of failed directed links."""
        return len(self.failed_links)

    def link_map(self) -> np.ndarray:
        """Intact-to-surviving link index map (``-1`` for failed links)."""
        if self._link_map is None:
            mapping = np.full(self._intact.num_links, -1, dtype=np.int64)
            mapping[list(self.surviving_links)] = np.arange(
                len(self.surviving_links), dtype=np.int64
            )
            self._link_map = mapping
        return self._link_map

    def surviving_index_array(self) -> np.ndarray:
        """Surviving intact link indices as an array (for fancy indexing)."""
        if self._surviving_array is None:
            self._surviving_array = np.asarray(self.surviving_links, dtype=np.int64)
        return self._surviving_array

    # ------------------------------------------------------------------
    # Per-link projections
    # ------------------------------------------------------------------
    def project_weights(self, weights) -> np.ndarray:
        """Restrict a full per-link vector to the surviving links.

        Survivors keep their values — exactly the deployed OSPF/MT-OSPF
        behavior where weights are *not* re-optimized after a failure.
        """
        weights = np.asarray(weights)
        if weights.shape != (self._intact.num_links,):
            raise ValueError(
                f"expected a vector of length {self._intact.num_links}, "
                f"got shape {weights.shape}"
            )
        if self.is_identity:
            return weights
        return weights[self.surviving_index_array()]

    def project_loads_back(self, loads: np.ndarray) -> np.ndarray:
        """Expand surviving-link loads to intact indexing (failed links = 0)."""
        loads = np.asarray(loads, dtype=float)
        if loads.shape != (len(self.surviving_links),):
            raise ValueError(
                f"expected {len(self.surviving_links)} loads, got shape {loads.shape}"
            )
        full = np.zeros(self._intact.num_links)
        full[self.surviving_index_array()] = loads
        return full

    # ------------------------------------------------------------------
    # Reachability
    # ------------------------------------------------------------------
    def isolated_nodes(self) -> tuple[int, ...]:
        """Nodes with no surviving links at all (failed nodes), cached.

        An isolated node can neither originate nor transit traffic in
        the surviving network — the property the batch evaluator's
        row-reuse test exploits.
        """
        if self._isolated is None:
            net = self.network
            self._isolated = tuple(
                n
                for n in net.nodes()
                if not net.out_link_indices(n) and not net.in_link_indices(n)
            )
        return self._isolated

    def is_strongly_connected(self) -> bool:
        """Whether every survivor reaches every other (cached).

        The cheap O(n + m) pre-check the disconnection filter runs before
        paying for the full reachability matrix — most single-element
        failures leave the network connected.
        """
        if self._strongly_connected is None:
            self._strongly_connected = self.network.is_strongly_connected()
        return self._strongly_connected

    def reachable(self) -> np.ndarray:
        """Boolean ``(n, n)`` matrix: ``R[s, t]`` iff ``t`` is reachable from ``s``.

        Weight-independent; computed once per projection (unweighted
        all-pairs BFS via scipy) and cached.  The diagonal is ``True``.
        """
        if self._reachable is None:
            net = self.network
            n = net.num_nodes
            if self.is_strongly_connected():
                reach = np.ones((n, n), dtype=bool)
            elif net.num_links == 0:
                reach = np.eye(n, dtype=bool)
            else:
                graph = csr_matrix(
                    (
                        np.ones(net.num_links),
                        (net.link_sources(), net.link_destinations()),
                    ),
                    shape=(n, n),
                )
                hops = shortest_path(graph, method="D", unweighted=True)
                reach = np.isfinite(hops)
                np.fill_diagonal(reach, True)
            self._reachable = reach
        return self._reachable

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TopologyProjection):
            return NotImplemented
        return (
            self.failed_links == other.failed_links
            and self._intact == other._intact
        )

    def __repr__(self) -> str:
        return (
            f"TopologyProjection(net={self._intact.name!r}, "
            f"failed={len(self.failed_links)}, "
            f"surviving={len(self.surviving_links)})"
        )


def project_topology(net: Network, failed_links: Iterable[int]) -> TopologyProjection:
    """Build (or trivially pass through) the projection failing ``failed_links``."""
    return TopologyProjection(net, failed_links)
