"""Scenario kind registry: text specs and sweep-grid enumeration.

The CLI (``repro-dtr whatif --scenario``) and the campaign runner both
name scenarios by *kind*.  Kinds live in a
:class:`~repro.api.registry.Registry`, so an unknown kind fails exactly
like an unknown strategy does — a loud
:class:`~repro.api.registry.UnknownNameError` listing the registered
alternatives, which the CLI surfaces verbatim and exits 2 on.

Text grammar (``parse_scenario``)::

    link:0-4            one adjacency failure
    link:0-4,2-5        multi-link failure
    node:3              node failure (node:3,5 for several)
    srlg:0-4,2-5        shared-risk link group (srlg:west=0-4,2-5 to name it)
    scale:1.25          both classes scaled 1.25x
    surge:3x2.0         demand to/from node 3 doubled
    shift:2>5@0.3       30% of demand destined to 2 redirected to 5
    link:0-4+surge:3x2  composition (any kinds joined with '+')

``enumerate_scenarios`` expands one kind into the deterministic grid of
its instances over a network (every adjacency, every node, ...), which
is what campaign specs and robustness sweeps iterate.

Combinatorial scenario *spaces* have a grammar of their own
(``parse_space``), kept in a separate registry so space names never leak
into the scenario-kind listing::

    space:all-link-2                every 2-adjacency failure
    space:all-node                  every single-node failure
    space:srlg-closure              SRLG grid plus all pairwise unions
    space:surge-sample:n=64:seed=7  seeded degree-weighted surges

Spaces enumerate lazily and sweep through the streaming aggregator — see
:mod:`repro.scenarios.spaces`, which registers the built-in kinds on
import (``parse_space`` imports it on first use).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from repro.api.registry import Registry, UnknownNameError  # noqa: F401  (re-export)
from repro.network.graph import Network
from repro.scenarios.algebra import (
    HotSpotSurge,
    LinkFailure,
    NodeFailure,
    Scenario,
    SrlgFailure,
    TrafficScale,
    TrafficShift,
    compose,
)

DEFAULT_SURGE_FACTOR = 2.0
DEFAULT_SCALE_GRID = (0.75, 1.25, 1.5)


@dataclass(frozen=True)
class ScenarioKind:
    """One registered scenario kind.

    Attributes:
        name: The kind string (``"link"``, ``"node"``, ...).
        parse: Parser of the text after ``kind:`` into a scenario.
        enumerate: Expansion of the kind into its sweep grid over a
            network, or ``None`` for parse-only kinds.
        help: One-line spec syntax summary (CLI error messages).
    """

    name: str
    parse: Callable[[str], Scenario]
    enumerate: Optional[Callable[[Network], list[Scenario]]]
    help: str


SCENARIO_KINDS = Registry("scenario kind")


@dataclass(frozen=True)
class SpaceKind:
    """One registered scenario-space kind.

    Attributes:
        name: The space name (``"all-link"``, ``"srlg-closure"``, ...).
        parse: Parser of the argument text (the ``-K`` suffix and any
            ``:key=value`` options, colon-joined) into a
            :class:`~repro.scenarios.spaces.ScenarioSpace`.
        help: One-line spec syntax summary (CLI/HTTP error messages).
    """

    name: str
    parse: Callable[[str], object]
    help: str


SPACE_KINDS = Registry("scenario space")


def available_scenario_kinds() -> tuple[str, ...]:
    """All registered scenario kind names, sorted."""
    return SCENARIO_KINDS.names()


def register_scenario_kind(kind: ScenarioKind, replace: bool = False) -> ScenarioKind:
    """Register a scenario kind (plugins use this like strategies)."""
    return SCENARIO_KINDS.register(kind.name, kind, replace=replace)


def available_space_kinds() -> tuple[str, ...]:
    """All registered scenario-space kind names, sorted."""
    _load_builtin_spaces()
    return SPACE_KINDS.names()


def register_space_kind(kind: SpaceKind, replace: bool = False) -> SpaceKind:
    """Register a scenario-space kind (plugins use this like strategies)."""
    return SPACE_KINDS.register(kind.name, kind, replace=replace)


def _load_builtin_spaces() -> None:
    """Import the built-in spaces (they register themselves on import).

    Lazy because :mod:`repro.scenarios.spaces` imports this module for
    :class:`SpaceKind`; a top-level import would be circular.
    """
    import repro.scenarios.spaces  # noqa: F401


# ----------------------------------------------------------------------
# Parsers
# ----------------------------------------------------------------------
def _parse_pairs(text: str, what: str) -> tuple[tuple[int, int], ...]:
    pairs = []
    for token in text.split(","):
        token = token.strip()
        u, sep, v = token.partition("-")
        if not sep:
            raise ValueError(
                f"bad {what} spec {token!r}: expected U-V (e.g. 0-4)"
            )
        pairs.append((int(u), int(v)))
    return tuple(pairs)


def _parse_link(arg: str) -> Scenario:
    return LinkFailure(pairs=_parse_pairs(arg, "link"))


def _parse_node(arg: str) -> Scenario:
    try:
        nodes = tuple(int(token) for token in arg.split(","))
    except ValueError:
        raise ValueError(
            f"bad node spec {arg!r}: expected N or N1,N2 (e.g. node:3)"
        ) from None
    return NodeFailure(nodes=nodes)


def _parse_srlg(arg: str) -> Scenario:
    name, sep, pairs_text = arg.partition("=")
    if not sep:
        name, pairs_text = "", arg
    return SrlgFailure(pairs=_parse_pairs(pairs_text, "srlg"), name=name.strip())


def _parse_scale(arg: str) -> Scenario:
    try:
        factor = float(arg)
    except ValueError:
        raise ValueError(
            f"bad scale spec {arg!r}: expected a factor (e.g. scale:1.25)"
        ) from None
    return TrafficScale(factor=factor)


def _parse_surge(arg: str) -> Scenario:
    node, sep, factor = arg.partition("x")
    if not sep:
        raise ValueError(
            f"bad surge spec {arg!r}: expected NODExFACTOR (e.g. surge:3x2.0)"
        )
    return HotSpotSurge(node=int(node), factor=float(factor))


def _parse_shift(arg: str) -> Scenario:
    route, _, fraction = arg.partition("@")
    src, sep, dst = route.partition(">")
    if not sep:
        raise ValueError(
            f"bad shift spec {arg!r}: expected S>D[@FRACTION] (e.g. shift:2>5@0.3)"
        )
    return TrafficShift(
        src=int(src),
        dst=int(dst),
        fraction=float(fraction) if fraction else 0.5,
    )


# ----------------------------------------------------------------------
# Enumerators
# ----------------------------------------------------------------------
def _enumerate_link(net: Network) -> list[Scenario]:
    return [LinkFailure.single(u, v) for u, v in net.duplex_pairs()]


def _enumerate_node(net: Network) -> list[Scenario]:
    return [NodeFailure.single(n) for n in net.nodes()]


def _enumerate_srlg(net: Network) -> list[Scenario]:
    """Synthetic SRLGs: consecutive duplex adjacencies grouped in pairs.

    Real deployments know their shared conduits; for sweep grids we
    derive a deterministic stand-in by chunking the sorted adjacency
    list, which still exercises correlated multi-link failures.
    """
    pairs = net.duplex_pairs()
    groups = [tuple(pairs[i : i + 2]) for i in range(0, len(pairs) - 1, 2)]
    return [
        SrlgFailure(pairs=group, name=f"g{i}") for i, group in enumerate(groups)
    ]


def _enumerate_surge(net: Network) -> list[Scenario]:
    return [HotSpotSurge(node=n, factor=DEFAULT_SURGE_FACTOR) for n in net.nodes()]


def _enumerate_scale(net: Network) -> list[Scenario]:
    return [TrafficScale(factor=f) for f in DEFAULT_SCALE_GRID]


for _kind in (
    ScenarioKind("link", _parse_link, _enumerate_link,
                 "link:U-V[,U2-V2...] — duplex adjacency failure(s)"),
    ScenarioKind("node", _parse_node, _enumerate_node,
                 "node:N[,N2...] — node failure(s)"),
    ScenarioKind("srlg", _parse_srlg, _enumerate_srlg,
                 "srlg:[NAME=]U-V,U2-V2 — shared-risk link group failure"),
    ScenarioKind("scale", _parse_scale, _enumerate_scale,
                 "scale:F — both traffic classes scaled by F"),
    ScenarioKind("surge", _parse_surge, _enumerate_surge,
                 "surge:NxF — demand to/from node N scaled by F"),
    ScenarioKind("shift", _parse_shift, None,
                 "shift:S>D[@F] — fraction F of demand for S redirected to D"),
):
    register_scenario_kind(_kind)


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def parse_scenario(text: str) -> Scenario:
    """Parse a scenario spec string (``kind:args``, composed with ``+``).

    Raises:
        UnknownNameError: for an unregistered kind, listing the
            registered alternatives (the CLI prints this and exits 2).
        ValueError: for a malformed argument, naming the expected syntax.
    """
    parts = [part.strip() for part in text.split("+") if part.strip()]
    if not parts:
        raise ValueError("empty scenario spec")
    scenarios = []
    for part in parts:
        name, _, arg = part.partition(":")
        kind: ScenarioKind = SCENARIO_KINDS.get(name.strip())
        try:
            scenarios.append(kind.parse(arg.strip()))
        except ValueError as exc:
            raise ValueError(f"scenario {part!r}: {exc} (syntax: {kind.help})") from None
    return compose(*scenarios)


def canonical_spec(scenario) -> str:
    """The canonical spec string of a scenario (or spec text).

    Strings are parsed first, so every spelling of one scenario —
    reordered pairs, whitespace, redundant floats — maps to one
    canonical key: ``canonical_spec("link:2-5, 0-4")`` is
    ``"link:0-4,2-5"``.  ``parse_scenario(canonical_spec(x))`` equals
    ``parse_scenario(x)`` (the round-trip law of
    ``tests/test_scenarios_spec_roundtrip.py``); the serving layer's
    plan cache keys on this string.
    """
    if isinstance(scenario, str):
        scenario = parse_scenario(scenario)
    return scenario.spec()


def parse_space(text: str):
    """Parse a scenario-space spec string (``space:kind[-ARG][:opts]``).

    The leading ``space:`` prefix is accepted but optional, so the CLI's
    ``--space all-link-2`` and a canonical ``space:all-link-2`` name the
    same space.  Kind resolution tries the full head first, then splits
    a trailing ``-ARG`` (``all-link-2`` is the ``all-link`` kind with
    argument ``2``); remaining ``:``-separated text is handed to the
    kind's parser (``surge-sample:n=64:seed=7``).

    Raises:
        UnknownNameError: for an unregistered space kind, listing the
            registered alternatives (the CLI prints this and exits 2,
            the HTTP frontend answers 400 with it).
        ValueError: for a malformed argument, naming the expected syntax.
    """
    _load_builtin_spaces()
    body = text.strip()
    prefix, sep, rest = body.partition(":")
    if sep and prefix.strip() == "space":
        body = rest.strip()
    if not body:
        raise ValueError("empty space spec")
    head, _, tail = body.partition(":")
    name = head.strip()
    registered = set(SPACE_KINDS.names())
    if name in registered:
        kind: SpaceKind = SPACE_KINDS.get(name)
        arg = tail.strip()
    else:
        stem, dash, suffix = name.rpartition("-")
        if dash and stem in registered:
            kind = SPACE_KINDS.get(stem)
            arg = suffix if not tail else f"{suffix}:{tail.strip()}"
        else:
            # Unknown either way: raise the registry's listing error.
            kind = SPACE_KINDS.get(name)
            raise AssertionError("unreachable")  # pragma: no cover
    try:
        return kind.parse(arg)
    except ValueError as exc:
        raise ValueError(
            f"space {text!r}: {exc} (syntax: {kind.help})"
        ) from None


def canonical_space_spec(space) -> str:
    """The canonical spec string of a scenario space (or spec text).

    Strings are parsed first, so every spelling of one space maps to one
    canonical key, and ``parse_space(canonical_space_spec(x))`` equals
    ``parse_space(x)`` — the round-trip law the property suite states.
    """
    if isinstance(space, str):
        space = parse_space(space)
    return space.spec()


def require_enumerable(kind_name: str) -> ScenarioKind:
    """Look up a kind that must have a sweep grid (campaigns, grids).

    Raises:
        UnknownNameError: for an unregistered kind, listing the
            registered alternatives.
        ValueError: for a parse-only kind with no grid (e.g. ``shift``),
            listing the enumerable kinds.
    """
    kind: ScenarioKind = SCENARIO_KINDS.get(kind_name)
    if kind.enumerate is None:
        enumerable = sorted(
            name for name in SCENARIO_KINDS
            if SCENARIO_KINDS.get(name).enumerate is not None
        )
        raise ValueError(
            f"scenario kind {kind_name!r} has no sweep grid; "
            f"enumerable kinds: {', '.join(enumerable)}"
        )
    return kind


def enumerate_scenarios(net: Network, kind_name: str) -> list[Scenario]:
    """The deterministic sweep grid of one kind over ``net``.

    Raises:
        UnknownNameError: for an unregistered kind.
        ValueError: for a parse-only kind with no grid (e.g. ``shift``).
    """
    return require_enumerable(kind_name).enumerate(net)


class ScenarioSet:
    """An ordered batch of scenarios for one sweep."""

    def __init__(self, scenarios) -> None:
        self.scenarios: tuple[Scenario, ...] = tuple(scenarios)
        if not self.scenarios:
            raise ValueError("a scenario set needs at least one scenario")

    @classmethod
    def from_kinds(cls, net: Network, kinds) -> "ScenarioSet":
        """The concatenated grids of several kinds (deterministic order)."""
        scenarios: list[Scenario] = []
        for kind in kinds:
            scenarios.extend(enumerate_scenarios(net, kind))
        return cls(scenarios)

    def kinds(self) -> tuple[str, ...]:
        """The distinct scenario kinds present, sorted."""
        return tuple(sorted({s.kind for s in self.scenarios}))

    def __iter__(self) -> Iterator[Scenario]:
        return iter(self.scenarios)

    def __len__(self) -> int:
        return len(self.scenarios)

    def __repr__(self) -> str:
        return f"ScenarioSet({len(self.scenarios)} scenarios, kinds={self.kinds()})"
