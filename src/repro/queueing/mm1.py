"""Analytic M/M/1 and two-class priority-queue formulas.

All formulas assume Poisson arrivals and exponential service with a common
rate ``mu`` for both classes (the paper's links serve fixed-capacity
traffic where both classes share the packet-size distribution).
"""

from __future__ import annotations


def mm1_utilization(arrival_rate: float, service_rate: float) -> float:
    """Utilization ``rho = lambda / mu``."""
    _check_rates(arrival_rate, service_rate)
    return arrival_rate / service_rate


def mm1_mean_response_time(arrival_rate: float, service_rate: float) -> float:
    """Mean sojourn time ``1 / (mu - lambda)`` of a stable M/M/1 queue.

    Raises:
        ValueError: if the queue is unstable (``lambda >= mu``).
    """
    _check_rates(arrival_rate, service_rate)
    if arrival_rate >= service_rate:
        raise ValueError(f"unstable queue: lambda={arrival_rate} >= mu={service_rate}")
    return 1.0 / (service_rate - arrival_rate)


def preemptive_priority_response_times(
    high_rate: float, low_rate: float, service_rate: float
) -> tuple[float, float]:
    """Mean response times (high, low) under preemptive-resume priority.

    The high-priority class sees a private M/M/1 queue,
    ``T_H = 1 / (mu - lambda_H)``.  The low-priority class sees
    ``T_L = (1/mu) / ((1 - rho_H) (1 - rho_H - rho_L))`` — it is served
    only in the *residual* capacity the high class leaves, which is the
    queueing-theoretic basis of the paper's ``C~ = max(C - H, 0)`` model.

    Raises:
        ValueError: if either class (cumulatively) saturates the server.
    """
    _check_rates(high_rate, service_rate)
    _check_rates(low_rate, service_rate)
    rho_h = high_rate / service_rate
    rho_l = low_rate / service_rate
    if rho_h >= 1.0:
        raise ValueError(f"high class saturates the server: rho_H={rho_h}")
    if rho_h + rho_l >= 1.0:
        raise ValueError(f"total load saturates the server: rho={rho_h + rho_l}")
    t_high = 1.0 / (service_rate - high_rate)
    t_low = (1.0 / service_rate) / ((1.0 - rho_h) * (1.0 - rho_h - rho_l))
    return t_high, t_low


def nonpreemptive_priority_response_times(
    high_rate: float, low_rate: float, service_rate: float
) -> tuple[float, float]:
    """Mean response times (high, low) under non-preemptive (head-of-line) priority.

    With exponential service the mean residual work an arrival finds is
    ``R = rho / mu``; the classic head-of-line formulas give waiting times
    ``W_H = R / (1 - rho_H)`` and ``W_L = R / ((1 - rho_H)(1 - rho_H - rho_L))``.

    Raises:
        ValueError: if the total load saturates the server.
    """
    _check_rates(high_rate, service_rate)
    _check_rates(low_rate, service_rate)
    rho_h = high_rate / service_rate
    rho_l = low_rate / service_rate
    rho = rho_h + rho_l
    if rho >= 1.0:
        raise ValueError(f"total load saturates the server: rho={rho}")
    residual = rho / service_rate
    wait_high = residual / (1.0 - rho_h)
    wait_low = residual / ((1.0 - rho_h) * (1.0 - rho_h - rho_l))
    service = 1.0 / service_rate
    return wait_high + service, wait_low + service


def _check_rates(arrival_rate: float, service_rate: float) -> None:
    if arrival_rate < 0:
        raise ValueError(f"arrival rate must be non-negative, got {arrival_rate}")
    if service_rate <= 0:
        raise ValueError(f"service rate must be positive, got {service_rate}")
