"""Discrete-event simulator of a two-class strict-priority M/M/1 queue.

Simulates the per-link contention-resolution mechanism the paper assumes:
a single server, two FIFO queues, the high-priority queue always served
first, optionally preempting a low-priority packet in service
(preemptive-resume).  Exponential service is memoryless, so resuming a
preempted packet is statistically equivalent to redrawing its remaining
service time; the simulator tracks remaining work explicitly anyway, which
keeps it valid for future non-exponential service extensions.
"""

from __future__ import annotations

import math
import random
from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.determinism import default_rng

HIGH = 0
LOW = 1


@dataclass(frozen=True)
class PrioritySimResult:
    """Per-class sojourn statistics of one simulation run.

    Attributes:
        mean_response: Mean sojourn (wait + service) per class, ``(high, low)``.
        completed: Packets counted per class, ``(high, low)``.
        sim_time: Simulated time span after warm-up.
    """

    mean_response: tuple[float, float]
    completed: tuple[int, int]
    sim_time: float


@dataclass
class _Packet:
    arrival: float
    remaining: float


class _ClassState:
    def __init__(self, rate: float, rng: random.Random) -> None:
        self.rate = rate
        self.rng = rng
        self.queue: deque[_Packet] = deque()
        self.next_arrival = self._draw() if rate > 0 else math.inf
        self.total_sojourn = 0.0
        self.completed = 0

    def _draw(self) -> float:
        return self.rng.expovariate(self.rate)

    def schedule_next(self, now: float) -> None:
        self.next_arrival = now + self._draw() if self.rate > 0 else math.inf


def simulate_two_class_queue(
    high_rate: float,
    low_rate: float,
    service_rate: float,
    num_packets: int = 50_000,
    preemptive: bool = True,
    warmup_fraction: float = 0.1,
    rng: Optional[random.Random] = None,
) -> PrioritySimResult:
    """Simulate a strict-priority two-class M/M/1 queue.

    Args:
        high_rate: Poisson arrival rate of the high-priority class.
        low_rate: Poisson arrival rate of the low-priority class.
        service_rate: Exponential service rate ``mu`` (shared by both classes).
        num_packets: Total packets to complete (both classes, incl. warm-up).
        preemptive: Whether a high-priority arrival preempts a low-priority
            packet in service (preemptive-resume); otherwise head-of-line.
        warmup_fraction: Fraction of completions discarded before measuring.
        rng: Source of randomness; a fresh unseeded one is created if omitted.

    Returns:
        A :class:`PrioritySimResult` with per-class mean sojourn times.

    Raises:
        ValueError: on non-positive service rate, negative arrival rates,
            or an unstable total load.
    """
    if service_rate <= 0:
        raise ValueError(f"service rate must be positive, got {service_rate}")
    if high_rate < 0 or low_rate < 0:
        raise ValueError("arrival rates must be non-negative")
    if high_rate + low_rate <= 0:
        raise ValueError("at least one class must have a positive arrival rate")
    if (high_rate + low_rate) / service_rate >= 1.0:
        raise ValueError("total utilization must be < 1 for a steady state")
    if num_packets < 1:
        raise ValueError("num_packets must be >= 1")
    if not 0 <= warmup_fraction < 1:
        raise ValueError("warmup_fraction must be in [0, 1)")

    rng = rng or default_rng("queueing/simulator")
    classes = (_ClassState(high_rate, rng), _ClassState(low_rate, rng))
    warmup_count = int(num_packets * warmup_fraction)
    now = 0.0
    in_service: Optional[tuple[int, _Packet]] = None
    service_ends = math.inf
    measure_start: Optional[float] = None
    total_completed = 0

    def start_service(cls_idx: int) -> None:
        nonlocal in_service, service_ends
        packet = classes[cls_idx].queue.popleft()
        in_service = (cls_idx, packet)
        service_ends = now + packet.remaining

    while total_completed < num_packets:
        next_event = min(classes[HIGH].next_arrival, classes[LOW].next_arrival, service_ends)
        if in_service is not None and next_event < service_ends:
            in_service[1].remaining = service_ends - next_event
        now = next_event

        if now == service_ends and in_service is not None:
            cls_idx, packet = in_service
            state = classes[cls_idx]
            total_completed += 1
            if total_completed == warmup_count + 1:
                measure_start = now
            if total_completed > warmup_count:
                state.total_sojourn += now - packet.arrival
                state.completed += 1
            in_service = None
            service_ends = math.inf
        else:
            cls_idx = HIGH if now == classes[HIGH].next_arrival else LOW
            state = classes[cls_idx]
            state.queue.append(_Packet(arrival=now, remaining=rng.expovariate(service_rate)))
            state.schedule_next(now)
            if (
                preemptive
                and cls_idx == HIGH
                and in_service is not None
                and in_service[0] == LOW
            ):
                classes[LOW].queue.appendleft(in_service[1])
                in_service = None
                service_ends = math.inf

        if in_service is None:
            if classes[HIGH].queue:
                start_service(HIGH)
            elif classes[LOW].queue:
                start_service(LOW)

    means = tuple(
        state.total_sojourn / state.completed if state.completed else float("nan")
        for state in classes
    )
    return PrioritySimResult(
        mean_response=(means[0], means[1]),
        completed=(classes[HIGH].completed, classes[LOW].completed),
        sim_time=now - (measure_start or 0.0),
    )
