"""Network-wide per-class delay estimates from exact priority-queue formulas.

The paper's Eq. 3 approximates the high-priority queueing term with the
Fortz cost (``Phi_H/C ~ H/(C-H)``).  This module computes per-link and
end-to-end delays for *both* classes from the exact two-class preemptive
M/M/1 formulas instead, converting link loads (Mb/s) into packet rates.
It quantifies the modeling gap and gives the low-priority class a
delay estimate the paper's cost functions never needed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.costs.sla import PACKET_SIZE_BITS
from repro.network.graph import Network
from repro.routing.state import Routing
from repro.traffic.matrix import TrafficMatrix

SATURATED_DELAY_MS = 1e6
"""Delay assigned to links whose class load saturates the server."""


@dataclass(frozen=True)
class ClassDelays:
    """Per-link mean sojourn times (ms) for the two classes."""

    high_ms: np.ndarray
    low_ms: np.ndarray

    def saturated_links(self) -> np.ndarray:
        """Indices of links where the low-priority class saturates."""
        return np.flatnonzero(self.low_ms >= SATURATED_DELAY_MS)


def link_class_delays(
    net: Network,
    high_loads: np.ndarray,
    low_loads: np.ndarray,
    packet_size_bits: float = PACKET_SIZE_BITS,
) -> ClassDelays:
    """Exact preemptive-priority M/M/1 sojourn times per link.

    Rates are derived from loads: a link of capacity ``C`` Mb/s serves
    ``mu = C*1e6/packet_size_bits`` packets/s; class loads map to arrival
    rates the same way.  Links where a class saturates get
    :data:`SATURATED_DELAY_MS` (propagation still added).

    Args:
        net: The network.
        high_loads: Per-link high-priority loads (Mb/s).
        low_loads: Per-link low-priority loads (Mb/s).
        packet_size_bits: Mean packet size.

    Returns:
        A :class:`ClassDelays` with per-link delays in milliseconds.
    """
    high_loads = np.asarray(high_loads, dtype=float)
    low_loads = np.asarray(low_loads, dtype=float)
    caps = net.capacities()
    if high_loads.shape != caps.shape or low_loads.shape != caps.shape:
        raise ValueError("load vectors must match the network's link count")

    rho_h = high_loads / caps
    rho_l = low_loads / caps
    service_ms = packet_size_bits / (caps * 1e6) * 1e3

    high_ms = np.where(
        rho_h < 1.0, service_ms / np.maximum(1.0 - rho_h, 1e-12), SATURATED_DELAY_MS
    )
    total = rho_h + rho_l
    low_ms = np.where(
        (rho_h < 1.0) & (total < 1.0),
        service_ms
        / np.maximum((1.0 - rho_h) * np.maximum(1.0 - total, 1e-12), 1e-12),
        SATURATED_DELAY_MS,
    )
    prop = net.prop_delays()
    return ClassDelays(high_ms=high_ms + prop, low_ms=low_ms + prop)


def pair_delay_ms(
    routing: Routing, link_delays_ms: np.ndarray, src: int, dst: int
) -> float:
    """Mean end-to-end delay of a pair: flow-fraction-weighted link delays."""
    return float(routing.pair_link_fractions(src, dst) @ link_delays_ms)


@dataclass(frozen=True)
class NetworkDelayReport:
    """End-to-end delay summary for both classes over their own routings."""

    mean_high_ms: float
    mean_low_ms: float
    worst_high_ms: float
    worst_low_ms: float
    high_pairs: int
    low_pairs: int


def network_delay_report(
    net: Network,
    high_routing: Routing,
    low_routing: Routing,
    high_traffic: TrafficMatrix,
    low_traffic: TrafficMatrix,
    packet_size_bits: float = PACKET_SIZE_BITS,
) -> NetworkDelayReport:
    """Volume-weighted end-to-end delay for every demand of both classes.

    Args:
        net: The network.
        high_routing: Routing of the high-priority class.
        low_routing: Routing of the low-priority class.
        high_traffic: High-priority traffic matrix.
        low_traffic: Low-priority traffic matrix.
        packet_size_bits: Mean packet size.

    Returns:
        A :class:`NetworkDelayReport` (means are volume-weighted).
    """
    delays = link_class_delays(
        net,
        high_routing.link_loads(high_traffic),
        low_routing.link_loads(low_traffic),
        packet_size_bits,
    )

    def summarize(routing: Routing, traffic: TrafficMatrix, link_ms: np.ndarray):
        weighted = 0.0
        volume = 0.0
        worst = 0.0
        count = 0
        for s, t, rate in traffic.pairs():
            xi = pair_delay_ms(routing, link_ms, s, t)
            weighted += xi * rate
            volume += rate
            worst = max(worst, xi)
            count += 1
        mean = weighted / volume if volume > 0 else 0.0
        return mean, worst, count

    mean_h, worst_h, n_h = summarize(high_routing, high_traffic, delays.high_ms)
    mean_l, worst_l, n_l = summarize(low_routing, low_traffic, delays.low_ms)
    return NetworkDelayReport(
        mean_high_ms=mean_h,
        mean_low_ms=mean_l,
        worst_high_ms=worst_h,
        worst_low_ms=worst_l,
        high_pairs=n_h,
        low_pairs=n_l,
    )
