"""Priority-queueing substrate.

The paper's contention-resolution model is a strict two-priority queue per
link whose classes it approximates with M/M/1 formulas (Eq. 1's piecewise
cost and Eq. 3's delay).  This package provides the analytic two-class
M/M/1 priority formulas and a discrete-event simulator of the same system,
used to validate the modeling assumptions (residual capacity, the
``Phi_H/C`` approximation of ``H/(C-H)``).
"""

from repro.queueing.mm1 import (
    mm1_mean_response_time,
    mm1_utilization,
    nonpreemptive_priority_response_times,
    preemptive_priority_response_times,
)
from repro.queueing.simulator import PrioritySimResult, simulate_two_class_queue
from repro.queueing.network_delay import (
    ClassDelays,
    NetworkDelayReport,
    link_class_delays,
    network_delay_report,
    pair_delay_ms,
)

__all__ = [
    "ClassDelays",
    "link_class_delays",
    "pair_delay_ms",
    "NetworkDelayReport",
    "network_delay_report",
    "mm1_utilization",
    "mm1_mean_response_time",
    "preemptive_priority_response_times",
    "nonpreemptive_priority_response_times",
    "simulate_two_class_queue",
    "PrioritySimResult",
]
