"""Command-line interface: ``repro-dtr``.

Subcommands::

    repro-dtr topology  --family isp --out isp.json
    repro-dtr figure    --id fig2a --scale 0.2 --seed 1 [--json out.json]
    repro-dtr compare   --topology random --mode load --utilization 0.6 \
                        [--incremental | --full]
    repro-dtr optimize  --strategy dtr --topology isp --scale 0.1 \
                        [--alpha 2.0] [--json out.json]
    repro-dtr whatif    --topology isp --link 3 --new-weight 17
    repro-dtr whatif    --topology isp --failure 0 4
    repro-dtr whatif    --topology isp --traffic-scale 1.2
    repro-dtr whatif    --topology isp --scenario node:3
    repro-dtr whatif    --topology isp --scenario link:0-4+surge:3x2.0
    repro-dtr sweep     --topology isp --space space:all-link-2 [--no-prune]
    repro-dtr campaign run       --out DIR [--spec spec.json] [--workers 4] ...
    repro-dtr campaign run       --out DIR --scenarios link node srlg ...
    repro-dtr campaign run       --out DIR --spaces space:all-link-2 ...
    repro-dtr campaign status    --out DIR
    repro-dtr campaign aggregate --out DIR [--json agg.json]
    repro-dtr serve     --port 8093 --topology isp --utilization 0.5 \
                        [--log serve.jsonl] [--pool-size 4] [--window-ms 5] \
                        [--trace spans.jsonl]
    repro-dtr query     --url http://127.0.0.1:8093 --scenario node:3
    repro-dtr query     --url ... --sweep link node [--metrics]
    repro-dtr query     --url ... --space space:all-link-2
    repro-dtr obs snapshot      [--url http://127.0.0.1:8093] \
                        [--format json|prometheus]
    repro-dtr obs dump          --trace spans.jsonl [--limit 20]
    repro-dtr obs trace-summary --trace spans.jsonl
    repro-dtr lint      [PATH ...] [--strict] [--format json] \
                        [--baseline .repro-lint-baseline.json] \
                        [--update-baseline] [--select RL001,RL004] [--list-rules]
    repro-dtr bench compare         --current-dir bench-trends [--strict] \
                        [--baseline-dir benchmarks/baselines] [--json out.json]
    repro-dtr bench baseline-update --current-dir bench-trends \
                        [--baseline-dir benchmarks/baselines] [--no-new]
    repro-dtr bench trends          [--baseline-dir ...] [--current-dir ...]
    repro-dtr results render --out results/ [--campaign DIR] \
                        [--trends bench-trends] [--baselines DIR] \
                        [--figures fig2c fig9 ...] [--scale 0.05] [--seed 1]

``figure`` accepts: fig2a..fig2f, fig3a..fig3c, fig4, fig5a, fig5b, fig6,
fig7, fig8a, fig8b, fig9, table1.  ``compare`` evaluates neighbor moves
via incremental SPF by default; ``--full`` forces the from-scratch
verification fallback.  ``optimize`` runs any strategy registered in the
``repro.api`` registry (``str``, ``dtr``, ``joint``, ``anneal`` built
in) on a session built from the experiment flags; an unknown strategy
name lists the registered alternatives.  ``whatif`` answers incremental
queries — a one-link weight move, an adjacency failure, a traffic
rescale, or any composable ``--scenario`` spec (link/node/SRLG failures,
traffic surges and shifts; see :mod:`repro.scenarios`) — against a
baseline weight setting (``--weights`` JSON, or hop-count weights by
default) without a full re-evaluation; an unknown scenario kind lists
the registered ones, exactly like an unknown strategy.
``sweep`` streams a whole combinatorial scenario space
(:mod:`repro.scenarios.spaces`) through the dominance-pruned lazy
sweeper and prints the streaming robustness aggregate — worst case,
mean, percentiles, CVaR — without ever materializing the space; an
unknown or malformed ``--space`` exits 2 listing the registered space
names, exactly like an unknown scenario kind.
``campaign`` expands a declarative sweep spec into experiment configs,
fans them out across a worker pool into a content-addressed result
store, and aggregates the stored records; re-running a partially
completed campaign executes only the missing configs.
``serve`` starts the online what-if service (:mod:`repro.serve`): a
stdlib threaded HTTP frontend over a warm-session pool, micro-batch
scheduler, and plan cache.  ``query`` is its client — it validates the
scenario spec locally (a malformed spec or unknown kind exits 2 with
the registry listing, before any network traffic) and prints the
server's answer.
``bench`` consumes the ``BENCH_*.json`` perf-trend artifacts
(:mod:`repro.eval.trends`): ``compare`` classifies every committed
baseline metric as improved/within-band/regressed under the tolerance
policy and exits 0 when clean, 2 on a schema or coverage mismatch (a
bench or metric present in the baselines but missing from the run —
gating cannot silently narrow), and 3 with ``--strict`` when any
metric regressed beyond its band; ``baseline-update`` refreshes the
committed baselines all-or-nothing, keeping a bounded per-metric
history; ``trends`` prints the per-metric sparklines.
``results render`` is the raw → table → figure pipeline
(:mod:`repro.eval.pipeline`): campaign store + bench trends in, CSV
tables, ASCII figures 2–9, and trend sparklines out.
``obs`` is the telemetry inspector (:mod:`repro.obs`): ``snapshot``
prints a metrics snapshot — from a running service's ``/metrics`` when
``--url`` is given, from this process's registry otherwise — as JSON or
Prometheus text; ``dump`` prints the tail of a span-trace JSONL file;
``trace-summary`` aggregates a trace by span name (count, total/mean/max
duration).  ``serve --trace PATH`` enables span tracing into ``PATH``.
``lint`` runs the AST invariant linter (:mod:`repro.analysis`) over the
given paths (default ``src/repro``) with the same CI-grade exit-code
contract as ``bench compare``: 0 clean, 1 unsuppressed findings, 2 on a
usage/config error (unknown rule id — listed alternatives verbatim —
bad path, malformed baseline).  ``--strict`` additionally fails on
stale baseline entries; ``--update-baseline`` grandfathers the current
findings atomically.

Every usage error — unknown strategy, unknown scenario kind, malformed
spec, bad campaign grid — exits 2 through one shared helper, with the
registry's "registered names: ..." listing verbatim where applicable;
argparse's own unknown-subcommand error exits 2 with the subcommand
listing the same way.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional, Sequence

from repro.core.evaluator import LOAD_MODE, SLA_MODE
from repro.eval import figures
from repro.eval.campaign import (
    CampaignSpec,
    CampaignStore,
    aggregate_campaign,
    run_campaign,
)
from repro.eval.experiment import ExperimentConfig, run_comparison, scaled_config
from repro.eval.results import save_result
from repro.ioutil import atomic_write_json
from repro.network.io import save_network
from repro.network.topology_isp import isp_topology
from repro.network.topology_powerlaw import powerlaw_topology
from repro.network.topology_random import random_topology

DEFAULT_BASELINE_DIR = "benchmarks/baselines"

_FIGURE_RUNNERS = {
    "fig2a": lambda scale, seed: figures.fig2("random", LOAD_MODE, scale=scale, seed=seed),
    "fig2b": lambda scale, seed: figures.fig2("powerlaw", LOAD_MODE, scale=scale, seed=seed),
    "fig2c": lambda scale, seed: figures.fig2("isp", LOAD_MODE, scale=scale, seed=seed),
    "fig2d": lambda scale, seed: figures.fig2("random", SLA_MODE, scale=scale, seed=seed),
    "fig2e": lambda scale, seed: figures.fig2("powerlaw", SLA_MODE, scale=scale, seed=seed),
    "fig2f": lambda scale, seed: figures.fig2("isp", SLA_MODE, scale=scale, seed=seed),
    "fig3a": lambda scale, seed: figures.fig3("a", scale=scale, seed=seed),
    "fig3b": lambda scale, seed: figures.fig3("b", scale=scale, seed=seed),
    "fig3c": lambda scale, seed: figures.fig3("c", scale=scale, seed=seed),
    "fig4": lambda scale, seed: figures.fig4(scale=scale, seed=seed),
    "fig5a": lambda scale, seed: figures.fig5(LOAD_MODE, scale=scale, seed=seed),
    "fig5b": lambda scale, seed: figures.fig5(SLA_MODE, scale=scale, seed=seed),
    "fig6": lambda scale, seed: figures.fig6(scale=scale, seed=seed),
    "fig7": lambda scale, seed: figures.fig7(scale=scale, seed=seed),
    "fig8a": lambda scale, seed: figures.fig8(LOAD_MODE, scale=scale, seed=seed),
    "fig8b": lambda scale, seed: figures.fig8(SLA_MODE, scale=scale, seed=seed),
    "fig9": lambda scale, seed: figures.fig9(scale=scale, seed=seed),
    "table1": lambda scale, seed: figures.table1(scale=scale, seed=seed),
    "scenarios": lambda scale, seed: figures.fig_scenarios(scale=scale, seed=seed),
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-dtr",
        description="Dual Topology Routing reproduction (Kwong et al., CoNEXT 2007)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    topo = sub.add_parser("topology", help="generate a topology and save it as JSON")
    topo.add_argument("--family", choices=["random", "powerlaw", "isp"], default="isp")
    topo.add_argument("--seed", type=int, default=1)
    topo.add_argument("--out", required=True, help="output JSON path")

    fig = sub.add_parser("figure", help="reproduce a figure or table from the paper")
    fig.add_argument("--id", dest="figure_id", choices=sorted(_FIGURE_RUNNERS), required=True)
    fig.add_argument("--scale", type=float, default=1.0, help="search budget scale")
    fig.add_argument("--seed", type=int, default=1)
    fig.add_argument("--json", dest="json_out", default=None, help="also save JSON here")

    cmp_ = sub.add_parser("compare", help="run one STR vs DTR comparison")
    cmp_.add_argument("--topology", choices=["random", "powerlaw", "isp"], default="random")
    cmp_.add_argument("--mode", choices=[LOAD_MODE, SLA_MODE], default=LOAD_MODE)
    cmp_.add_argument("--utilization", type=float, default=0.6)
    cmp_.add_argument("--fraction", type=float, default=0.30, help="high-priority volume fraction f")
    cmp_.add_argument("--density", type=float, default=0.10, help="high-priority SD-pair density k")
    cmp_.add_argument("--scale", type=float, default=1.0)
    cmp_.add_argument("--seed", type=int, default=1)
    spf = cmp_.add_mutually_exclusive_group()
    spf.add_argument(
        "--incremental",
        dest="incremental",
        action="store_true",
        default=True,
        help="evaluate single-weight-delta moves via incremental SPF (default)",
    )
    spf.add_argument(
        "--full",
        dest="incremental",
        action="store_false",
        help="recompute every neighbor evaluation from scratch (verification fallback)",
    )

    opt = sub.add_parser(
        "optimize", help="run one registered strategy via the repro.api facade"
    )
    opt.add_argument(
        "--strategy",
        default="dtr",
        help="registered strategy name (str, dtr, joint, anneal, or a plugin)",
    )
    opt.add_argument("--topology", choices=["random", "powerlaw", "isp"], default="random")
    opt.add_argument("--mode", choices=[LOAD_MODE, SLA_MODE], default=LOAD_MODE)
    opt.add_argument("--utilization", type=float, default=0.6)
    opt.add_argument("--fraction", type=float, default=0.30, help="high-priority volume fraction f")
    opt.add_argument("--density", type=float, default=0.10, help="high-priority SD-pair density k")
    opt.add_argument("--scale", type=float, default=1.0, help="search budget scale")
    opt.add_argument("--seed", type=int, default=1)
    opt.add_argument("--alpha", type=float, default=None,
                     help="joint-cost trade-off (joint strategy only)")
    opt.add_argument("--json", dest="json_out", default=None, help="also save JSON here")

    wif = sub.add_parser(
        "whatif", help="incremental what-if query against a baseline weight setting"
    )
    wif.add_argument("--topology", choices=["random", "powerlaw", "isp"], default="random")
    wif.add_argument("--mode", choices=[LOAD_MODE, SLA_MODE], default=LOAD_MODE)
    wif.add_argument("--utilization", type=float, default=0.6)
    wif.add_argument("--fraction", type=float, default=0.30)
    wif.add_argument("--density", type=float, default=0.10)
    wif.add_argument("--seed", type=int, default=1)
    wif.add_argument(
        "--weights", default=None,
        help="baseline weights JSON: a list (both classes) or "
             '{"high": [...], "low": [...]}; hop-count weights if omitted',
    )
    query = wif.add_mutually_exclusive_group(required=True)
    query.add_argument("--link", type=int, default=None, help="link index of a weight move")
    query.add_argument("--failure", type=int, nargs=2, metavar=("U", "V"),
                       help="fail the duplex adjacency between nodes U and V")
    query.add_argument("--traffic-scale", type=float, default=None,
                       help="rescale both traffic classes by this factor")
    query.add_argument("--scenario", default=None, metavar="SPEC",
                       help="evaluate a scenario spec, e.g. node:3, srlg:0-4,2-5, "
                            "surge:3x2.0, or link:0-4+surge:3x2.0 (composition); "
                            "an unknown kind lists the registered ones")
    wif.add_argument("--new-weight", type=int, default=None,
                     help="new weight of --link")
    wif.add_argument("--apply-to", choices=["high", "low", "both"], default=None,
                     help="which class's weight vector the move applies to "
                          "(default: both)")

    swp = sub.add_parser(
        "sweep",
        help="stream a combinatorial scenario space and print its "
             "robustness aggregate",
    )
    swp.add_argument("--topology", choices=["random", "powerlaw", "isp"], default="random")
    swp.add_argument("--mode", choices=[LOAD_MODE, SLA_MODE], default=LOAD_MODE)
    swp.add_argument("--utilization", type=float, default=0.6)
    swp.add_argument("--fraction", type=float, default=0.30)
    swp.add_argument("--density", type=float, default=0.10)
    swp.add_argument("--seed", type=int, default=1)
    swp.add_argument(
        "--weights", default=None,
        help="baseline weights JSON: a list (both classes) or "
             '{"high": [...], "low": [...]}; hop-count weights if omitted',
    )
    swp.add_argument(
        "--space", required=True, metavar="SPEC",
        help="scenario-space spec, e.g. space:all-link-2, space:all-node, "
             "space:srlg-closure, space:surge-sample:n=64:seed=7; an "
             "unknown name exits 2 listing the registered spaces",
    )
    swp.add_argument(
        "--no-prune", dest="prune", action="store_false", default=True,
        help="disable dominance pruning (evaluate every scenario)",
    )

    camp = sub.add_parser(
        "campaign", help="run, inspect, or aggregate an experiment campaign"
    )
    camp_sub = camp.add_subparsers(dest="campaign_command", required=True)

    run_p = camp_sub.add_parser("run", help="execute (or resume) a sweep into a store")
    run_p.add_argument("--out", required=True, help="campaign directory")
    run_p.add_argument("--spec", default=None, help="JSON CampaignSpec file (overrides grid flags)")
    run_p.add_argument("--workers", type=int, default=1, help="worker processes")
    run_p.add_argument("--topologies", nargs="+", default=["random"],
                       choices=["random", "powerlaw", "isp"])
    run_p.add_argument("--modes", nargs="+", default=[LOAD_MODE],
                       choices=[LOAD_MODE, SLA_MODE])
    run_p.add_argument("--fractions", nargs="+", type=float, default=[0.30],
                       help="high-priority volume fractions f")
    run_p.add_argument("--densities", nargs="+", type=float, default=[0.10],
                       help="high-priority SD-pair densities k")
    run_p.add_argument("--utilizations", nargs="+", type=float, default=[0.6],
                       help="target utilization grid")
    run_p.add_argument("--seeds", nargs="+", type=int, default=[1])
    run_p.add_argument("--scale", type=float, default=1.0, help="search budget scale")
    run_p.add_argument("--failures", action="store_true",
                       help="also sweep single-adjacency failures per record")
    run_p.add_argument("--scenarios", nargs="+", default=[], metavar="KIND",
                       help="scenario kinds to sweep per record (link, node, "
                            "srlg, surge, scale); an unknown kind lists the "
                            "registered ones")
    run_p.add_argument("--spaces", nargs="+", default=[], metavar="SPEC",
                       help="scenario spaces to stream per record (e.g. "
                            "space:all-link-2); only the streaming aggregate "
                            "is stored")
    run_p.add_argument("--quiet", action="store_true", help="suppress per-config lines")

    status_p = camp_sub.add_parser("status", help="completion state of a store")
    status_p.add_argument("--out", required=True, help="campaign directory")

    agg_p = camp_sub.add_parser("aggregate", help="seed-averaged metrics of a store")
    agg_p.add_argument("--out", required=True, help="campaign directory")
    agg_p.add_argument("--json", dest="json_out", default=None, help="also save JSON here")

    srv = sub.add_parser(
        "serve", help="run the online what-if query service (HTTP, stdlib only)"
    )
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=8093)
    srv.add_argument("--topology", choices=["random", "powerlaw", "isp"], default="random")
    srv.add_argument("--mode", choices=[LOAD_MODE, SLA_MODE], default=LOAD_MODE)
    srv.add_argument("--utilization", type=float, default=0.6)
    srv.add_argument("--fraction", type=float, default=0.30)
    srv.add_argument("--density", type=float, default=0.10)
    srv.add_argument("--seed", type=int, default=1)
    srv.add_argument(
        "--weights", default=None,
        help="baseline weights JSON file (list or {'high': [...], 'low': [...]});"
             " hop-count weights if omitted",
    )
    srv.add_argument("--pool-size", type=int, default=4,
                     help="warm sessions kept (LRU)")
    srv.add_argument("--window-ms", type=float, default=5.0,
                     help="micro-batch coalescing window")
    srv.add_argument("--log", dest="log_path", default=None,
                     help="JSONL request log path")
    srv.add_argument("--trace", dest="trace_path", default=None,
                     help="span-trace JSONL path (enables tracing)")

    bench = sub.add_parser(
        "bench", help="compare, refresh, or plot the perf-trend baselines"
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)

    bcmp = bench_sub.add_parser(
        "compare",
        help="gate a bench-trends directory against the committed baselines",
    )
    bcmp.add_argument("--current-dir", required=True,
                      help="directory of BENCH_*.json artifacts from this run")
    bcmp.add_argument("--baseline-dir", default=DEFAULT_BASELINE_DIR,
                      help="committed baseline store (with policy.json)")
    bcmp.add_argument("--strict", action="store_true",
                      help="exit 3 when any metric regressed beyond its band")
    bcmp.add_argument("--json", dest="json_out", default=None,
                      help="also save the machine-readable verdict here")

    bupd = bench_sub.add_parser(
        "baseline-update",
        help="refresh the committed baselines from a bench-trends directory",
    )
    bupd.add_argument("--current-dir", required=True,
                      help="directory of BENCH_*.json artifacts to commit")
    bupd.add_argument("--baseline-dir", default=DEFAULT_BASELINE_DIR,
                      help="committed baseline store to refresh")
    bupd.add_argument("--no-new", dest="allow_new", action="store_false",
                      default=True,
                      help="refuse benches that have no baseline yet")

    btr = bench_sub.add_parser(
        "trends", help="print per-metric sparklines over the baseline history"
    )
    btr.add_argument("--baseline-dir", default=DEFAULT_BASELINE_DIR,
                     help="committed baseline store")
    btr.add_argument("--current-dir", default=None,
                     help="optionally append this run's artifacts as the last point")

    res = sub.add_parser(
        "results", help="the raw -> table -> figure results pipeline"
    )
    res_sub = res.add_subparsers(dest="results_command", required=True)
    render = res_sub.add_parser(
        "render", help="render CSV tables, ASCII figures, and trend sparklines"
    )
    render.add_argument("--out", required=True, help="output directory")
    render.add_argument("--campaign", default=None,
                        help="campaign store backing figures 2/4/5")
    render.add_argument("--trends", dest="trends_dir", default=None,
                        help="BENCH_*.json directory (current perf point)")
    render.add_argument("--baselines", dest="baselines_dir", default=None,
                        help="baseline store providing the trend history")
    render.add_argument("--figures", nargs="+", default=None, metavar="ID",
                        help="subset of figure ids (default: all)")
    render.add_argument("--scale", type=float, default=0.05,
                        help="search-budget scale for recomputed figures")
    render.add_argument("--seed", type=int, default=1)
    render.add_argument("--echo", action="store_true",
                        help="print each figure's text as it completes")

    lint = sub.add_parser(
        "lint", help="run the AST invariant linter (repro.analysis)"
    )
    lint.add_argument("paths", nargs="*", default=["src/repro"],
                      help="files/directories to lint (default: src/repro)")
    lint.add_argument("--format", choices=["text", "json"], default="text",
                      help="output format")
    lint.add_argument("--baseline", default=None,
                      help="grandfather baseline file (default: "
                           ".repro-lint-baseline.json when present)")
    lint.add_argument("--no-baseline", action="store_true",
                      help="ignore any baseline file")
    lint.add_argument("--update-baseline", action="store_true",
                      help="rewrite the baseline from the current findings "
                           "(atomic) and exit 0")
    lint.add_argument("--strict", action="store_true",
                      help="also fail (exit 1) on stale baseline entries")
    lint.add_argument("--select", default=None, metavar="RULES",
                      help="comma-separated rule ids (default: all); an "
                           "unknown id exits 2 listing the registered rules")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalog and exit")

    obs_p = sub.add_parser(
        "obs", help="inspect telemetry: metrics snapshots and span traces"
    )
    obs_sub = obs_p.add_subparsers(dest="obs_command", required=True)

    snap_p = obs_sub.add_parser(
        "snapshot", help="print a metrics snapshot (local or from a server)"
    )
    snap_p.add_argument("--url", default=None,
                        help="base URL of a running `repro-dtr serve`; "
                             "omitted: this process's own registry")
    snap_p.add_argument("--format", dest="obs_format",
                        choices=["json", "prometheus"], default="json",
                        help="output format")

    dump_p = obs_sub.add_parser(
        "dump", help="print the tail of a span-trace JSONL file"
    )
    dump_p.add_argument("--trace", required=True, help="span-trace JSONL file")
    dump_p.add_argument("--limit", type=int, default=20,
                        help="records from the end (0: all)")

    tsum_p = obs_sub.add_parser(
        "trace-summary", help="aggregate a span trace by span name"
    )
    tsum_p.add_argument("--trace", required=True, help="span-trace JSONL file")

    qry = sub.add_parser(
        "query", help="query a running what-if service (validates specs locally)"
    )
    qry.add_argument("--url", default="http://127.0.0.1:8093",
                     help="base URL of a running `repro-dtr serve`")
    what = qry.add_mutually_exclusive_group(required=True)
    what.add_argument("--scenario", default=None, metavar="SPEC",
                      help="what-if scenario spec, e.g. node:3 or "
                           "link:0-4+surge:3x2.0; an unknown kind exits 2 "
                           "listing the registered ones")
    what.add_argument("--sweep", nargs="+", default=None, metavar="KIND",
                      help="sweep whole scenario kinds (link, node, srlg, ...)")
    what.add_argument("--space", default=None, metavar="SPEC",
                      help="stream a scenario space server-side (e.g. "
                           "space:all-link-2); the answer is its streaming "
                           "robustness aggregate")
    what.add_argument("--metrics", action="store_true",
                      help="print the server's /metrics counters")
    return parser


def _usage_error(exc: object) -> int:
    """Report a usage error and return the conventional exit status 2.

    One path for every bad-input failure — unknown strategy, unknown or
    malformed scenario spec, bad campaign grid, bad query flags — so all
    subcommands fail the same way: ``error: <message>`` on stderr (with
    the registry's "registered names: ..." listing verbatim where the
    message carries one) and exit code 2, matching argparse's own
    unknown-subcommand behavior.
    """
    print(f"error: {exc}", file=sys.stderr)
    return 2


def _run_topology(args: argparse.Namespace) -> int:
    from repro.determinism import derive_rng

    rng = derive_rng(args.seed, "cli/topology")
    if args.family == "random":
        net = random_topology(rng=rng)
    elif args.family == "powerlaw":
        net = powerlaw_topology(rng=rng)
    else:
        net = isp_topology()
    save_network(net, args.out)
    print(f"wrote {net!r} to {args.out}")
    return 0


def _run_figure(args: argparse.Namespace) -> int:
    result = _FIGURE_RUNNERS[args.figure_id](args.scale, args.seed)
    print(result.format())
    if args.json_out:
        save_result(result, args.json_out)
        print(f"saved JSON to {args.json_out}")
    return 0


def _run_compare(args: argparse.Namespace) -> int:
    config = scaled_config(
        ExperimentConfig(
            topology=args.topology,
            mode=args.mode,
            target_utilization=args.utilization,
            high_fraction=args.fraction,
            high_density=args.density,
            seed=args.seed,
            incremental=args.incremental,
        ),
        args.scale,
    )
    result = run_comparison(config)
    print(f"topology={args.topology} mode={args.mode} AD={result.average_utilization:.3f}")
    print(f"STR objective: {result.str_evaluation.objective}")
    print(f"DTR objective: {result.dtr_evaluation.objective}")
    print(f"R_H={result.ratio_high:.3f}  R_L={result.ratio_low:.3f}")
    return 0


def _session_from_args(args: argparse.Namespace, scale: float = 1.0):
    """Build a ``repro.api`` session from the shared experiment flags."""
    from repro.api import Session

    config = scaled_config(
        ExperimentConfig(
            topology=args.topology,
            mode=args.mode,
            target_utilization=args.utilization,
            high_fraction=args.fraction,
            high_density=args.density,
            seed=args.seed,
        ),
        scale,
    )
    return Session.from_config(config), config


def _run_optimize(args: argparse.Namespace) -> int:
    from repro.api import UnknownNameError, get_strategy, optimize
    from repro.core.annealing import AnnealingParams

    try:
        get_strategy(args.strategy)  # fail fast, before building the session
    except UnknownNameError as exc:
        return _usage_error(exc)
    session, config = _session_from_args(args, args.scale)
    options = {}
    if args.alpha is not None:
        options["alpha"] = args.alpha
    if args.strategy == "anneal":
        # Scale the annealing budget like the local searches' budgets.
        options["annealing_params"] = AnnealingParams(
            iterations=max(1, round(AnnealingParams().iterations * args.scale))
        )
    try:
        result = optimize(
            session, strategy=args.strategy, params=config.search_params, **options
        )
    except (UnknownNameError, ValueError) as exc:
        return _usage_error(exc)
    print(
        f"strategy={result.strategy} topology={args.topology} mode={args.mode} "
        f"seed={args.seed}"
    )
    print(f"objective: {result.objective}")
    print(
        f"evaluations={result.evaluations} wall_time={result.wall_time_s:.2f}s "
        f"dual={result.dual}"
    )
    if args.json_out:
        payload = {
            "strategy": result.strategy,
            "objective": list(result.objective.values),
            "high_weights": result.high_weights.tolist(),
            "low_weights": result.low_weights.tolist(),
            "evaluations": result.evaluations,
            "wall_time_s": result.wall_time_s,
            "metadata": result.metadata,
        }
        atomic_write_json(args.json_out, payload, indent=2, sort_keys=True)
        print(f"saved JSON to {args.json_out}")
    return 0


def _run_whatif(args: argparse.Namespace) -> int:
    from repro.routing.weights import unit_weights

    if args.link is None and (args.new_weight is not None or args.apply_to is not None):
        return _usage_error("--new-weight/--apply-to only apply to --link queries")
    if args.link is not None and args.new_weight is None:
        return _usage_error("--link requires --new-weight")

    try:
        session, _config = _session_from_args(args)
        if args.weights:
            with open(args.weights) as handle:
                data = json.load(handle)
            if isinstance(data, dict):
                session.set_weights(data["high"], data.get("low"))
            else:
                session.set_weights(data)
        else:
            session.set_weights(unit_weights(session.network.num_links))

        if args.link is not None:
            result = session.what_if(
                (args.link, args.new_weight), topology=args.apply_to or "both"
            )
        elif args.failure is not None:
            result = session.under_failure(tuple(args.failure))
        elif args.scenario is not None:
            result = session.under_scenario(args.scenario)
        else:
            result = session.scaled_traffic(args.traffic_scale)
    except (KeyError, OSError, ValueError) as exc:
        return _usage_error(exc)
    print(result.format())
    return 0


def _run_sweep(args: argparse.Namespace) -> int:
    from repro.eval.robustness import space_sweep_session
    from repro.routing.weights import unit_weights
    from repro.scenarios.spec import parse_space

    try:
        # Validate the space spec before paying for a session build.
        space = parse_space(args.space)
    except ValueError as exc:
        return _usage_error(exc)
    try:
        session, _config = _session_from_args(args)
        if args.weights:
            with open(args.weights) as handle:
                data = json.load(handle)
            if isinstance(data, dict):
                session.set_weights(data["high"], data.get("low"))
            else:
                session.set_weights(data)
        else:
            session.set_weights(unit_weights(session.network.num_links))
        report = space_sweep_session(session, space, prune=args.prune)
    except (KeyError, OSError, ValueError) as exc:
        return _usage_error(exc)
    print(report.format())
    return 0


def _spec_from_args(args: argparse.Namespace) -> CampaignSpec:
    if args.spec:
        with open(args.spec) as handle:
            return CampaignSpec.from_jsonable(json.load(handle))
    return CampaignSpec(
        topologies=tuple(args.topologies),
        modes=tuple(args.modes),
        high_fractions=tuple(args.fractions),
        high_densities=tuple(args.densities),
        target_utilizations=tuple(args.utilizations),
        seeds=tuple(args.seeds),
        scale=args.scale,
        failure_scenarios=args.failures,
        scenario_kinds=tuple(args.scenarios),
        scenario_spaces=tuple(args.spaces),
    )


def _run_campaign_run(args: argparse.Namespace) -> int:
    try:
        spec = _spec_from_args(args)
    except (OSError, ValueError) as exc:
        # Covers unknown/non-enumerable scenario kinds (the registry error
        # lists the registered alternatives) and malformed spec files.
        return _usage_error(exc)
    progress = None
    if not args.quiet:

        def progress(event: str, key: str) -> None:
            print(f"[{event:>4}] {key}", flush=True)

    summary = run_campaign(spec, args.out, workers=args.workers, progress=progress)
    print(
        f"campaign {summary.root}: {summary.total} configs, "
        f"{summary.skipped} already stored, {summary.executed} executed "
        f"(workers={summary.workers})"
    )
    return 0


def _run_campaign_status(args: argparse.Namespace) -> int:
    try:
        status = CampaignStore(args.out).status()
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(status.format())
    return 0


def _run_campaign_aggregate(args: argparse.Namespace) -> int:
    try:
        aggregate = aggregate_campaign(args.out)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(aggregate.format())
    if args.json_out:
        save_result(aggregate, args.json_out)
        print(f"saved JSON to {args.json_out}")
    return 0


def _run_bench_compare(args: argparse.Namespace) -> int:
    from repro.eval.results import to_jsonable
    from repro.eval.trends import BenchFormatError, compare_dirs

    try:
        report = compare_dirs(args.current_dir, args.baseline_dir)
    except (FileNotFoundError, BenchFormatError) as exc:
        return _usage_error(exc)
    print(report.format())
    if args.json_out:
        payload = {
            "metrics": to_jsonable(report.metrics),
            "problems": list(report.problems),
            "new_benches": list(report.new_benches),
            "regressions": [m.path for m in report.regressions],
            "exit_code": report.exit_code(strict=args.strict),
            "strict": args.strict,
        }
        atomic_write_json(args.json_out, payload, indent=2, sort_keys=True)
        print(f"saved JSON to {args.json_out}")
    code = report.exit_code(strict=args.strict)
    if code == 2:
        print("error: schema/coverage mismatch between run and baselines",
              file=sys.stderr)
    elif code == 3:
        names = ", ".join(m.path for m in report.regressions)
        print(f"error: perf regression beyond tolerance band: {names}",
              file=sys.stderr)
    return code


def _run_bench_baseline_update(args: argparse.Namespace) -> int:
    from repro.eval.trends import BenchFormatError, load_policy, update_baselines

    try:
        # Surface a malformed policy now: a baseline refresh that the
        # comparator cannot consume afterwards is a partial update too.
        load_policy(args.baseline_dir)
        update = update_baselines(
            args.current_dir, args.baseline_dir, allow_new=args.allow_new
        )
    except (FileNotFoundError, BenchFormatError) as exc:
        return _usage_error(exc)
    print(update.format())
    return 0


def _run_bench_trends(args: argparse.Namespace) -> int:
    from repro.eval.trends import BenchFormatError, trend_lines

    try:
        blocks = trend_lines(args.baseline_dir, args.current_dir)
    except (FileNotFoundError, BenchFormatError) as exc:
        return _usage_error(exc)
    for name, block in blocks.items():
        print(f"== {name}")
        print(block)
        print()
    return 0


def _run_results_render(args: argparse.Namespace) -> int:
    from repro.eval.pipeline import render_results
    from repro.eval.trends import BenchFormatError

    try:
        summary = render_results(
            args.out,
            campaign_dir=args.campaign,
            trends_dir=args.trends_dir,
            baseline_dir=args.baselines_dir,
            figure_ids=args.figures,
            scale=args.scale,
            seed=args.seed,
            echo=args.echo,
        )
    except (KeyError, FileNotFoundError, BenchFormatError, ValueError) as exc:
        return _usage_error(exc)
    print(summary.format())
    return 0


def _run_lint(args: argparse.Namespace) -> int:
    from repro.analysis import (
        DEFAULT_BASELINE,
        Baseline,
        BaselineError,
        LintConfigError,
        UnknownRuleError,
        lint_paths,
        render_rule_catalog,
    )

    if args.list_rules:
        print(render_rule_catalog())
        return 0
    rules = None
    if args.select is not None:
        rules = [part.strip() for part in args.select.split(",") if part.strip()]
        if not rules:
            return _usage_error("--select needs at least one rule id")

    baseline_path = args.baseline if args.baseline is not None else DEFAULT_BASELINE
    baseline = None
    try:
        if args.no_baseline:
            if args.baseline is not None:
                return _usage_error("--baseline and --no-baseline are exclusive")
        elif args.update_baseline:
            pass  # rewriting from scratch: the old content is irrelevant
        elif args.baseline is not None or os.path.exists(baseline_path):
            baseline = Baseline.load(baseline_path)
        report = lint_paths(args.paths, rules=rules, baseline=baseline)
    except (UnknownRuleError, BaselineError, LintConfigError) as exc:
        return _usage_error(exc)

    if args.update_baseline:
        updated = Baseline.from_findings(report.findings + report.grandfathered)
        updated.save(baseline_path)
        print(
            f"baseline {baseline_path}: grandfathered "
            f"{len(updated.entries)} entr(y/ies) covering "
            f"{len(report.findings) + len(report.grandfathered)} finding(s)"
        )
        return 0
    if args.format == "json":
        payload = report.to_jsonable()
        payload["exit_code"] = report.exit_code(strict=args.strict)
        payload["strict"] = args.strict
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(report.format(strict=args.strict))
    code = report.exit_code(strict=args.strict)
    if code == 1 and report.findings:
        print(
            f"error: {len(report.findings)} unsuppressed lint finding(s)",
            file=sys.stderr,
        )
    elif code == 1:
        print(
            "error: stale baseline entries under --strict: prune them with "
            "--update-baseline",
            file=sys.stderr,
        )
    return code


def _run_serve(args: argparse.Namespace) -> int:
    from repro import obs
    from repro.serve import ServeService, SessionPool, SessionSpec, serve_forever

    if args.trace_path:
        obs.enable_tracing(args.trace_path)
    weights = "unit"
    try:
        if args.weights:
            with open(args.weights) as handle:
                weights = json.load(handle)
        spec = SessionSpec(
            topology=args.topology,
            mode=args.mode,
            utilization=args.utilization,
            fraction=args.fraction,
            density=args.density,
            seed=args.seed,
            weights=weights,
        )
        service = ServeService(
            spec,
            pool=SessionPool(capacity=args.pool_size),
            window_s=args.window_ms / 1e3,
        )
        service.pool.get(spec)  # warm the default baseline before binding
    except (OSError, ValueError) as exc:
        return _usage_error(exc)
    try:
        serve_forever(service, host=args.host, port=args.port, log_path=args.log_path)
    except OSError as exc:
        # Bind failures (port in use, privileged port) are environment
        # errors, not usage errors: clean message, exit 1.
        print(f"error: cannot serve on {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 1
    return 0


def _read_trace(path: str) -> list[dict]:
    """Parse a span-trace JSONL file (one record per line)."""
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def _run_obs(args: argparse.Namespace) -> int:
    from urllib.error import URLError

    from repro import obs

    if args.obs_command == "snapshot":
        prometheus = args.obs_format == "prometheus"
        if args.url:
            import urllib.request

            url = args.url.rstrip("/") + "/metrics"
            if prometheus:
                url += "?format=prometheus"
            try:
                with urllib.request.urlopen(url) as response:
                    body = response.read().decode("utf-8")
            except (URLError, OSError) as exc:
                print(f"error: cannot reach {args.url}: {exc}", file=sys.stderr)
                return 1
            if prometheus:
                print(body, end="" if body.endswith("\n") else "\n")
            else:
                print(json.dumps(json.loads(body), indent=2, sort_keys=True))
        else:
            samples = obs.snapshot()
            if prometheus:
                print(obs.render_prometheus(samples), end="")
            else:
                print(json.dumps(samples, indent=2, sort_keys=True))
        return 0

    try:
        records = _read_trace(args.trace)
    except (OSError, json.JSONDecodeError) as exc:
        return _usage_error(exc)
    if args.obs_command == "dump":
        tail = records[-args.limit:] if args.limit > 0 else records
        for record in tail:
            print(json.dumps(record, sort_keys=True))
        return 0
    # trace-summary: aggregate by span name, heaviest first.
    totals: dict = {}
    for record in records:
        entry = totals.setdefault(
            record["name"], {"count": 0, "total_ms": 0.0, "max_ms": 0.0}
        )
        entry["count"] += 1
        entry["total_ms"] += record["dur_ms"]
        entry["max_ms"] = max(entry["max_ms"], record["dur_ms"])
    print(f"{len(records)} span(s), {len(totals)} name(s)")
    for name, entry in sorted(
        totals.items(), key=lambda item: -item[1]["total_ms"]
    ):
        mean = entry["total_ms"] / entry["count"]
        print(
            f"  {name:>24}: n={entry['count']} total={entry['total_ms']:.2f}ms "
            f"mean={mean:.3f}ms max={entry['max_ms']:.3f}ms"
        )
    return 0


def _http_json(url: str, payload: Optional[dict] = None) -> dict:
    """One JSON round trip to the service (POST when a payload is given)."""
    import urllib.request

    data = None if payload is None else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request) as response:
        return json.loads(response.read())


def _run_query(args: argparse.Namespace) -> int:
    from urllib.error import HTTPError, URLError

    from repro.scenarios.spec import (
        canonical_space_spec,
        canonical_spec,
        require_enumerable,
    )

    base = args.url.rstrip("/")
    try:
        # Validate locally first: malformed specs, unknown kinds or
        # spaces, and kinds without a sweep grid (e.g. shift) exit 2
        # with the registry listing without any network traffic.
        if args.scenario is not None:
            request = ("/whatif", {"scenario": canonical_spec(args.scenario)})
        elif args.sweep is not None:
            for kind in args.sweep:
                require_enumerable(kind)
            request = ("/sweep", {"kinds": list(args.sweep)})
        elif args.space is not None:
            request = ("/sweep", {"space": canonical_space_spec(args.space)})
        else:
            request = ("/metrics", None)
    except ValueError as exc:
        return _usage_error(exc)

    try:
        answer = _http_json(base + request[0], request[1])
    except HTTPError as exc:
        body = exc.read().decode("utf-8", "replace")
        try:
            message = json.loads(body).get("error", body)
        except json.JSONDecodeError:
            message = body
        print(f"error: server answered {exc.code}: {message}", file=sys.stderr)
        return 1
    except (URLError, OSError) as exc:
        print(f"error: cannot reach {base}: {exc}", file=sys.stderr)
        return 1

    if args.metrics:
        print(json.dumps(answer, indent=2, sort_keys=True))
    elif args.scenario is not None:
        print(f"what-if [{answer['kind']}] {answer['description']}")
        if answer["disconnected"]:
            print(
                f"  disconnected: {answer['lost_demand']:.2f} Mb/s of demand "
                "is unroutable and was excluded"
            )
        print(
            f"  objective: {answer['baseline_objective']} -> "
            f"{answer['variant_objective']}  "
            f"(primary {answer['primary_delta']:+.4f}, "
            f"secondary {answer['secondary_delta']:+.4f})"
        )
        print(
            f"  max utilization: {answer['baseline_max_utilization']:.4f} -> "
            f"{answer['variant_max_utilization']:.4f} "
            f"({answer['max_utilization_delta']:+.4f})"
        )
        print(f"  served: cache_hit={answer['served']['cache_hit']}")
    elif args.space is not None:
        print(
            f"space {answer['space']}: {answer['scenarios']} scenarios, "
            f"{answer['evaluated']} evaluated, {answer['pruned']} pruned, "
            f"{answer['disconnected']} disconnected"
        )
        for metric in ("primary", "secondary", "max_utilization"):
            summary = answer[metric]
            levels = " ".join(
                f"p{level:g}={value:.4f}" for level, value in summary["percentiles"]
            )
            print(
                f"  {metric:>15}: worst={summary['worst']:.4f} "
                f"mean={summary['mean']:.4f} {levels} cvar={summary['cvar']:.4f}"
            )
    else:
        print(
            f"sweep: {answer['scenarios']} scenarios, "
            f"{answer['disconnected_count']} disconnected, "
            f"baseline objective {answer['baseline_objective']}"
        )
        for kind, summary in sorted(answer["by_class"].items()):
            print(
                f"  {kind:>6}: {summary['scenarios']} scenarios, "
                f"worst primary {summary['worst_primary']:.4f}, "
                f"worst max utilization {summary['worst_max_utilization']:.4f}"
            )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.command == "topology":
        return _run_topology(args)
    if args.command == "figure":
        return _run_figure(args)
    if args.command == "compare":
        return _run_compare(args)
    if args.command == "optimize":
        return _run_optimize(args)
    if args.command == "whatif":
        return _run_whatif(args)
    if args.command == "sweep":
        return _run_sweep(args)
    if args.command == "lint":
        return _run_lint(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "query":
        return _run_query(args)
    if args.command == "obs":
        return _run_obs(args)
    if args.command == "campaign":
        if args.campaign_command == "run":
            return _run_campaign_run(args)
        if args.campaign_command == "status":
            return _run_campaign_status(args)
        if args.campaign_command == "aggregate":
            return _run_campaign_aggregate(args)
    if args.command == "bench":
        if args.bench_command == "compare":
            return _run_bench_compare(args)
        if args.bench_command == "baseline-update":
            return _run_bench_baseline_update(args)
        if args.bench_command == "trends":
            return _run_bench_trends(args)
    if args.command == "results":
        if args.results_command == "render":
            return _run_results_render(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
