"""Scaling traffic matrices to a target average link utilization.

The paper varies "the total traffic demand (represented by the average link
utilization) ... by scaling the traffic matrix" (Section 5.2).  Average
link utilization depends on the routing in force, so scaling uses a
reference weight setting (hop-count routing by default), mirroring the
paper's use of average utilization as a load *reference* rather than an
exact invariant.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.network.graph import Network
from repro.traffic.matrix import TrafficMatrix


def average_utilization(net: Network, loads: np.ndarray) -> float:
    """Mean of per-link ``load / capacity`` over all links."""
    loads = np.asarray(loads, dtype=float)
    if loads.shape != (net.num_links,):
        raise ValueError(f"expected {net.num_links} loads, got shape {loads.shape}")
    return float(np.mean(loads / net.capacities()))


def scale_to_utilization(
    net: Network,
    high: TrafficMatrix,
    low: TrafficMatrix,
    target_utilization: float,
    reference_weights: Optional[np.ndarray] = None,
) -> tuple[TrafficMatrix, TrafficMatrix]:
    """Scale both classes jointly so average utilization hits a target.

    Both matrices are multiplied by the same factor, preserving the
    high-priority volume fraction ``f``.

    Args:
        net: The network.
        high: High-priority matrix ``T_H``.
        low: Low-priority matrix ``T_L``.
        target_utilization: Desired mean link utilization under the
            reference routing (must be positive).
        reference_weights: Weights defining the reference routing;
            hop-count (all ones) if omitted.

    Returns:
        The scaled ``(high, low)`` matrices.

    Raises:
        ValueError: if the target is non-positive or total demand is zero.
    """
    from repro.routing.state import Routing
    from repro.routing.weights import unit_weights

    if target_utilization <= 0:
        raise ValueError(f"target utilization must be positive, got {target_utilization}")
    total = high + low
    if total.total() <= 0:
        raise ValueError("cannot scale an all-zero traffic matrix")
    weights = reference_weights if reference_weights is not None else unit_weights(net.num_links)
    routing = Routing(net, weights)
    current = average_utilization(net, routing.link_loads(total))
    factor = target_utilization / current
    return high.scaled(factor), low.scaled(factor)
