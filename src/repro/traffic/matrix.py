"""Traffic matrix container."""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np


class TrafficMatrix:
    """A ``|V| x |V|`` demand matrix ``[r(s, t)]`` in Mb/s.

    The diagonal is always zero (``r(s, s) = 0`` per the paper's problem
    formulation).  Instances are immutable from the outside: mutating
    operations return new matrices.
    """

    def __init__(self, demands: np.ndarray) -> None:
        demands = np.asarray(demands, dtype=float)
        if demands.ndim != 2 or demands.shape[0] != demands.shape[1]:
            raise ValueError(f"demands must be square, got shape {demands.shape}")
        if np.any(demands < 0):
            raise ValueError("demands must be non-negative")
        if np.any(np.diag(demands) != 0):
            raise ValueError("diagonal demands r(s, s) must be zero")
        self._demands = demands.copy()
        self._demands.setflags(write=False)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def zeros(cls, num_nodes: int) -> "TrafficMatrix":
        """An all-zero demand matrix."""
        return cls(np.zeros((num_nodes, num_nodes)))

    @classmethod
    def from_pairs(
        cls, num_nodes: int, entries: Iterable[tuple[int, int, float]]
    ) -> "TrafficMatrix":
        """Build from ``(src, dst, rate)`` triples; repeated pairs accumulate."""
        demands = np.zeros((num_nodes, num_nodes))
        for src, dst, rate in entries:
            if src == dst:
                raise ValueError(f"demand from node {src} to itself is not allowed")
            demands[src, dst] += rate
        return cls(demands)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes the matrix spans."""
        return self._demands.shape[0]

    @property
    def demands(self) -> np.ndarray:
        """Read-only view of the demand array."""
        return self._demands

    def rate(self, src: int, dst: int) -> float:
        """Demand from ``src`` to ``dst`` in Mb/s."""
        return float(self._demands[src, dst])

    def total(self) -> float:
        """Total demand volume (the paper's η)."""
        return float(self._demands.sum())

    def pairs(self) -> Iterator[tuple[int, int, float]]:
        """Iterate non-zero ``(src, dst, rate)`` entries."""
        srcs, dsts = np.nonzero(self._demands)
        for s, t in zip(srcs.tolist(), dsts.tolist()):
            yield s, t, float(self._demands[s, t])

    def pair_count(self) -> int:
        """Number of source-destination pairs with non-zero demand."""
        return int(np.count_nonzero(self._demands))

    def density(self) -> float:
        """Fraction of the ``n(n-1)`` ordered pairs carrying demand."""
        n = self.num_nodes
        return self.pair_count() / (n * (n - 1))

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def scaled(self, factor: float) -> "TrafficMatrix":
        """A copy with every demand multiplied by ``factor`` (>= 0)."""
        if factor < 0:
            raise ValueError(f"scale factor must be non-negative, got {factor}")
        return TrafficMatrix(self._demands * factor)

    def __add__(self, other: "TrafficMatrix") -> "TrafficMatrix":
        if not isinstance(other, TrafficMatrix):
            return NotImplemented
        if other.num_nodes != self.num_nodes:
            raise ValueError("cannot add traffic matrices of different sizes")
        return TrafficMatrix(self._demands + other._demands)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TrafficMatrix):
            return NotImplemented
        return self.num_nodes == other.num_nodes and np.array_equal(
            self._demands, other._demands
        )

    def __repr__(self) -> str:
        return (
            f"TrafficMatrix(nodes={self.num_nodes}, pairs={self.pair_count()}, "
            f"total={self.total():.2f} Mbps)"
        )
