"""Traffic-matrix statistics used to characterize experiment workloads."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.traffic.matrix import TrafficMatrix


@dataclass(frozen=True)
class TrafficStats:
    """Summary of one traffic matrix.

    Attributes:
        total_mbps: Total demand volume (the paper's eta).
        pair_count: Source-destination pairs with demand.
        density: Fraction of ordered pairs with demand (the paper's k for
            high-priority matrices).
        max_pair_mbps: Largest single demand.
        mean_pair_mbps: Mean non-zero demand.
        hotspot_share: Fraction of volume originated by the top 5 % of nodes.
        gini: Gini coefficient of per-pair volumes (0 = uniform).
    """

    total_mbps: float
    pair_count: int
    density: float
    max_pair_mbps: float
    mean_pair_mbps: float
    hotspot_share: float
    gini: float


def gini_coefficient(values: np.ndarray) -> float:
    """Gini coefficient of non-negative values (0 = equal, -> 1 = concentrated)."""
    values = np.asarray(values, dtype=float)
    if np.any(values < 0):
        raise ValueError("gini coefficient requires non-negative values")
    values = np.sort(values)
    if len(values) == 0 or values.sum() == 0:
        return 0.0
    n = len(values)
    ranks = np.arange(1, n + 1)
    return float((2 * ranks - n - 1) @ values / (n * values.sum()))


def traffic_stats(tm: TrafficMatrix) -> TrafficStats:
    """Compute a :class:`TrafficStats` summary of one matrix."""
    rates = np.array([rate for _, _, rate in tm.pairs()])
    per_source = tm.demands.sum(axis=1)
    top = max(1, round(0.05 * tm.num_nodes))
    hotspot = float(np.sort(per_source)[::-1][:top].sum())
    total = tm.total()
    return TrafficStats(
        total_mbps=total,
        pair_count=tm.pair_count(),
        density=tm.density(),
        max_pair_mbps=float(rates.max()) if len(rates) else 0.0,
        mean_pair_mbps=float(rates.mean()) if len(rates) else 0.0,
        hotspot_share=hotspot / total if total > 0 else 0.0,
        gini=gini_coefficient(rates) if len(rates) else 0.0,
    )


def class_mix(high: TrafficMatrix, low: TrafficMatrix) -> float:
    """The volume fraction f = eta_H / (eta_H + eta_L) of a class pair."""
    eta_h = high.total()
    eta_l = low.total()
    if eta_h + eta_l == 0:
        raise ValueError("both matrices are empty")
    return eta_h / (eta_h + eta_l)
