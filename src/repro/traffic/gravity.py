"""Gravity model for the low-priority traffic matrix (paper Eqs. 6-7)."""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.determinism import default_rng
from repro.traffic.matrix import TrafficMatrix


@dataclass(frozen=True)
class GravityParams:
    """Parameters of the heterogeneous gravity model.

    The per-node originated volume ``d_s`` follows the paper's three-level
    mixture (Eq. 7): low-volume nodes with probability 0.6 drawing from
    Uniform(10, 50), medium with probability 0.35 from Uniform(80, 130),
    and "hot spot" nodes with probability 0.05 from Uniform(150, 200).
    Node mass ``V_t`` is Uniform(1, 1.5); destination attraction is
    proportional to ``exp(V_t)`` (Eq. 6).
    """

    low_range: tuple[float, float] = (10.0, 50.0)
    medium_range: tuple[float, float] = (80.0, 130.0)
    high_range: tuple[float, float] = (150.0, 200.0)
    low_prob: float = 0.60
    medium_prob: float = 0.35
    mass_range: tuple[float, float] = (1.0, 1.5)

    def __post_init__(self) -> None:
        if not 0 <= self.low_prob <= 1 or not 0 <= self.medium_prob <= 1:
            raise ValueError("mixture probabilities must lie in [0, 1]")
        if self.low_prob + self.medium_prob > 1:
            raise ValueError("low_prob + medium_prob must not exceed 1")
        for name in ("low_range", "medium_range", "high_range", "mass_range"):
            lo, hi = getattr(self, name)
            if hi < lo:
                raise ValueError(f"{name} must be (lo, hi) with hi >= lo")

    @property
    def high_prob(self) -> float:
        """Probability of a hot-spot node (0.05 with paper defaults)."""
        return 1.0 - self.low_prob - self.medium_prob


def node_volumes(
    num_nodes: int, rng: random.Random, params: Optional[GravityParams] = None
) -> np.ndarray:
    """Draw the per-node originated volumes ``d_s`` (Eq. 7)."""
    params = params or GravityParams()
    volumes = np.empty(num_nodes)
    for node in range(num_nodes):
        u = rng.random()
        if u < params.low_prob:
            lo, hi = params.low_range
        elif u < params.low_prob + params.medium_prob:
            lo, hi = params.medium_range
        else:
            lo, hi = params.high_range
        volumes[node] = rng.uniform(lo, hi)
    return volumes


def node_masses(
    num_nodes: int, rng: random.Random, params: Optional[GravityParams] = None
) -> np.ndarray:
    """Draw the per-node masses ``V_t`` (Uniform(1, 1.5) with paper defaults)."""
    params = params or GravityParams()
    lo, hi = params.mass_range
    return np.array([rng.uniform(lo, hi) for _ in range(num_nodes)])


def gravity_traffic_matrix(
    num_nodes: int,
    rng: Optional[random.Random] = None,
    params: Optional[GravityParams] = None,
) -> TrafficMatrix:
    """Generate a low-priority traffic matrix with the paper's gravity model.

    Implements Eq. 6: ``r_L(s, t) = d_s * exp(V_t) / sum_{i != s} exp(V_i)``,
    so each source's originated volume ``d_s`` is split across destinations
    proportionally to their attraction ``exp(V_t)``.

    Args:
        num_nodes: Number of nodes.
        rng: Source of randomness; a fresh unseeded one is created if omitted.
        params: Model parameters; paper defaults if omitted.

    Returns:
        A :class:`TrafficMatrix` with every off-diagonal entry positive and
        each row summing to its node's ``d_s``.
    """
    if num_nodes < 2:
        raise ValueError(f"gravity model needs at least 2 nodes, got {num_nodes}")
    rng = rng or default_rng("traffic/gravity")
    volumes = node_volumes(num_nodes, rng, params)
    masses = node_masses(num_nodes, rng, params)
    attraction = np.array([math.exp(v) for v in masses])

    demands = np.zeros((num_nodes, num_nodes))
    for s in range(num_nodes):
        denom = attraction.sum() - attraction[s]
        demands[s, :] = volumes[s] * attraction / denom
        demands[s, s] = 0.0
    return TrafficMatrix(demands)
