"""High-priority traffic models: random-pair and sink (paper Section 5.1.2).

Both models normalize the high-priority volume so that it represents a
fraction ``f`` of the total network traffic: with low-priority volume
``eta_L``, the high-priority volume is ``eta_L * f / (1 - f)``, distributed
across the selected pairs proportionally to per-pair multipliers
``m(s, t) ~ Uniform(1, 4)``.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.determinism import default_rng
from repro.network.graph import Network
from repro.traffic.matrix import TrafficMatrix

MULTIPLIER_RANGE = (1.0, 4.0)
"""Range of the per-pair heterogeneity multiplier ``m(s, t)``."""


@dataclass(frozen=True)
class HighPriorityTraffic:
    """A generated high-priority demand set.

    Attributes:
        matrix: The high-priority traffic matrix ``T_H``.
        pairs: The selected source-destination pairs.
        fraction: The volume fraction ``f`` the matrix was normalized to.
        sinks: Sink nodes (empty for the random model).
        clients: Client nodes (empty for the random model).
    """

    matrix: TrafficMatrix
    pairs: tuple[tuple[int, int], ...]
    fraction: float
    sinks: tuple[int, ...] = field(default=())
    clients: tuple[int, ...] = field(default=())

    @property
    def density(self) -> float:
        """Fraction ``k`` of the ordered node pairs carrying high-priority traffic."""
        n = self.matrix.num_nodes
        return len(self.pairs) / (n * (n - 1))


def _normalized_matrix(
    num_nodes: int,
    pairs: list[tuple[int, int]],
    low_total: float,
    fraction: float,
    rng: random.Random,
) -> TrafficMatrix:
    """Spread ``eta_L * f / (1 - f)`` over ``pairs`` with Uniform(1, 4) multipliers."""
    if not pairs:
        return TrafficMatrix.zeros(num_nodes)
    lo, hi = MULTIPLIER_RANGE
    multipliers = np.array([rng.uniform(lo, hi) for _ in pairs])
    volume = low_total * fraction / (1.0 - fraction)
    rates = volume * multipliers / multipliers.sum()
    demands = np.zeros((num_nodes, num_nodes))
    for (s, t), rate in zip(pairs, rates):
        demands[s, t] = rate
    return TrafficMatrix(demands)


def _check_fraction(fraction: float) -> None:
    if not 0.0 < fraction < 1.0:
        raise ValueError(f"high-priority fraction f must be in (0, 1), got {fraction}")


def random_high_priority(
    low_matrix: TrafficMatrix,
    density: float,
    fraction: float,
    rng: Optional[random.Random] = None,
) -> HighPriorityTraffic:
    """Generate high-priority traffic with the *random* model.

    A fraction ``density`` (the paper's ``k``) of the ``n(n-1)`` ordered
    pairs is selected uniformly at random to carry high-priority traffic.

    Args:
        low_matrix: The low-priority matrix ``T_L`` (sets ``eta_L``).
        density: Fraction ``k`` of SD pairs that carry high-priority traffic.
        fraction: Volume fraction ``f`` of total traffic that is high priority.
        rng: Source of randomness; a fresh unseeded one is created if omitted.

    Returns:
        A :class:`HighPriorityTraffic` whose matrix volume satisfies
        ``eta_H / (eta_H + eta_L) == fraction``.
    """
    _check_fraction(fraction)
    if not 0.0 < density <= 1.0:
        raise ValueError(f"SD-pair density k must be in (0, 1], got {density}")
    rng = rng or default_rng("traffic/highpriority")
    n = low_matrix.num_nodes
    all_pairs = [(s, t) for s in range(n) for t in range(n) if s != t]
    count = max(1, round(density * len(all_pairs)))
    pairs = rng.sample(all_pairs, count)
    matrix = _normalized_matrix(n, pairs, low_matrix.total(), fraction, rng)
    return HighPriorityTraffic(matrix=matrix, pairs=tuple(sorted(pairs)), fraction=fraction)


def sink_high_priority(
    net: Network,
    low_matrix: TrafficMatrix,
    fraction: float,
    num_sinks: int = 3,
    num_clients: int = 9,
    placement: str = "uniform",
    rng: Optional[random.Random] = None,
) -> HighPriorityTraffic:
    """Generate high-priority traffic with the *sink* model.

    Emulates popular servers (e.g. data centers): ``num_sinks`` nodes with
    the highest degree are sinks, ``num_clients`` client nodes exchange
    bidirectional high-priority traffic with every sink.  Clients are drawn
    uniformly at random (``placement="uniform"``) or from the nodes closest
    to the sinks in hop count (``placement="local"``), the two scenarios of
    the paper's Fig. 8.

    Args:
        net: Topology; degrees and hop distances are read from it.
        low_matrix: The low-priority matrix ``T_L`` (sets ``eta_L``).
        fraction: Volume fraction ``f`` of total traffic that is high priority.
        num_sinks: Number of sink nodes (paper: 3).
        num_clients: Number of client nodes.
        placement: ``"uniform"`` or ``"local"``.
        rng: Source of randomness; a fresh unseeded one is created if omitted.

    Returns:
        A :class:`HighPriorityTraffic` with ``2 * num_sinks * num_clients``
        demand pairs.
    """
    _check_fraction(fraction)
    if placement not in ("uniform", "local"):
        raise ValueError(f"placement must be 'uniform' or 'local', got {placement!r}")
    n = net.num_nodes
    if low_matrix.num_nodes != n:
        raise ValueError("low-priority matrix size does not match the network")
    if num_sinks < 1 or num_clients < 1:
        raise ValueError("need at least one sink and one client")
    if num_sinks + num_clients > n:
        raise ValueError(
            f"{num_sinks} sinks + {num_clients} clients exceed {n} nodes"
        )
    rng = rng or default_rng("traffic/highpriority")

    by_degree = sorted(net.nodes(), key=lambda v: (-net.degree(v), v))
    sinks = by_degree[:num_sinks]
    candidates = [v for v in net.nodes() if v not in sinks]
    if placement == "uniform":
        clients = rng.sample(candidates, num_clients)
    else:
        hop_to_sinks = {v: min(_hop_distances(net, s)[v] for s in sinks) for v in candidates}
        candidates.sort(key=lambda v: (hop_to_sinks[v], rng.random()))
        clients = candidates[:num_clients]

    pairs = []
    for sink in sinks:
        for client in clients:
            pairs.append((client, sink))
            pairs.append((sink, client))
    matrix = _normalized_matrix(n, pairs, low_matrix.total(), fraction, rng)
    return HighPriorityTraffic(
        matrix=matrix,
        pairs=tuple(sorted(pairs)),
        fraction=fraction,
        sinks=tuple(sinks),
        clients=tuple(sorted(clients)),
    )


def _hop_distances(net: Network, source: int) -> list[int]:
    """BFS hop count from ``source`` to every node (directed links)."""
    dist = [-1] * net.num_nodes
    dist[source] = 0
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for nxt in net.neighbors(node):
            if dist[nxt] < 0:
                dist[nxt] = dist[node] + 1
                queue.append(nxt)
    return dist
