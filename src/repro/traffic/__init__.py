"""Traffic-matrix substrate: gravity model and high-priority traffic models.

Implements the paper's traffic generation (Section 5.1.2): a gravity model
with a three-level heterogeneous per-node demand for the low-priority class
(Eqs. 6-7), plus two high-priority models — a *random* model that picks a
fraction ``k`` of source-destination pairs, and a *sink* model emulating
popular servers with uniformly or locally placed clients.  The high-priority
volume is normalized so that it makes up a fraction ``f`` of total traffic.
"""

from repro.traffic.matrix import TrafficMatrix
from repro.traffic.gravity import GravityParams, gravity_traffic_matrix
from repro.traffic.highpriority import (
    HighPriorityTraffic,
    random_high_priority,
    sink_high_priority,
)
from repro.traffic.scaling import average_utilization, scale_to_utilization
from repro.traffic.stats import TrafficStats, class_mix, gini_coefficient, traffic_stats

__all__ = [
    "TrafficStats",
    "traffic_stats",
    "gini_coefficient",
    "class_mix",
    "TrafficMatrix",
    "GravityParams",
    "gravity_traffic_matrix",
    "HighPriorityTraffic",
    "random_high_priority",
    "sink_high_priority",
    "average_utilization",
    "scale_to_utilization",
]
