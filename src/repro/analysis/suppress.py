"""Suppression: inline disable comments and the committed baseline.

Two mechanisms, two intents:

* **Inline** — ``# repro-lint: disable=RL001`` (or ``disable=RL001,RL004``,
  or ``disable=all``) on the finding's line or the line directly above
  marks a *permanently legitimate* exception, reviewed at the call site
  (e.g. building a fresh, unshared session without its lock).
  ``# repro-lint: disable-file=RL005`` anywhere in a file suppresses a
  rule file-wide (lint fixtures use this).
* **Baseline** — a committed JSON file of *grandfathered* findings:
  real violations consciously deferred.  Entries match on
  ``(rule, path, context line)`` rather than line numbers, so they
  survive unrelated edits and go stale exactly when the offending code
  changes.  ``--strict`` (the CI mode) fails on stale entries, keeping
  the baseline tight; ``--update-baseline`` rewrites it atomically.
"""

from __future__ import annotations

import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.analysis.findings import Finding
from repro.ioutil import atomic_write_text

DEFAULT_BASELINE = ".repro-lint-baseline.json"
"""Where the committed baseline lives, relative to the invocation root."""

_DIRECTIVE = re.compile(
    r"#\s*repro-lint:\s*(disable(?:-file)?)\s*=\s*([A-Za-z0-9_,\s]+)"
)


class BaselineError(ValueError):
    """A malformed baseline file (usage/config error: exit 2)."""


@dataclass
class Suppressions:
    """Per-file inline directives, parsed from comment tokens."""

    by_line: dict[int, set[str]] = field(default_factory=dict)
    file_wide: set[str] = field(default_factory=set)

    def covers(self, finding: Finding) -> bool:
        """Whether an inline directive silences ``finding``.

        A directive on line N covers findings on N and N+1, so both the
        trailing-comment and comment-line-above styles work.
        """
        wanted = {finding.rule, "all"}
        if self.file_wide & wanted:
            return True
        for line in (finding.line, finding.line - 1):
            if self.by_line.get(line, set()) & wanted:
                return True
        return False


def parse_suppressions(source: str) -> Suppressions:
    """Extract ``repro-lint`` directives from one file's comments.

    Uses :mod:`tokenize` rather than line regexes so directives inside
    string literals do not count.
    """
    result = Suppressions()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (tok.start[0], tok.string)
            for tok in tokens
            if tok.type == tokenize.COMMENT
        ]
    except tokenize.TokenizeError:  # the AST parse will report it
        return result
    for line, text in comments:
        match = _DIRECTIVE.search(text)
        if match is None:
            continue
        rules = {part.strip() for part in match.group(2).split(",") if part.strip()}
        if match.group(1) == "disable-file":
            result.file_wide |= rules
        else:
            result.by_line.setdefault(line, set()).update(rules)
    return result


@dataclass
class BaselineEntry:
    """One grandfathered finding: ``count`` occurrences are tolerated."""

    rule: str
    path: str
    context: str
    count: int = 1
    reason: str = ""

    def key(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.context)

    def to_jsonable(self) -> dict:
        record = {
            "rule": self.rule,
            "path": self.path,
            "context": self.context,
            "count": self.count,
        }
        if self.reason:
            record["reason"] = self.reason
        return record


@dataclass
class Baseline:
    """The committed set of grandfathered findings."""

    entries: list[BaselineEntry] = field(default_factory=list)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Baseline":
        """Read a baseline file.

        Raises:
            BaselineError: on unreadable or malformed content — a CI
                gate must never silently lint without its baseline.
        """
        try:
            data = json.loads(Path(path).read_text())
        except OSError as exc:
            raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise BaselineError(f"malformed baseline {path}: {exc}") from exc
        if not isinstance(data, dict) or not isinstance(data.get("findings"), list):
            raise BaselineError(
                f"malformed baseline {path}: expected "
                '{"version": 1, "findings": [...]}'
            )
        entries = []
        for record in data["findings"]:
            try:
                entries.append(
                    BaselineEntry(
                        rule=str(record["rule"]),
                        path=str(record["path"]),
                        context=str(record["context"]),
                        count=int(record.get("count", 1)),
                        reason=str(record.get("reason", "")),
                    )
                )
            except (TypeError, KeyError) as exc:
                raise BaselineError(
                    f"malformed baseline entry in {path}: {record!r}"
                ) from exc
        return cls(entries)

    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        """Grandfather ``findings`` (the ``--update-baseline`` path)."""
        counts: dict[tuple[str, str, str], BaselineEntry] = {}
        for finding in sorted(findings):
            key = finding.baseline_key()
            if key in counts:
                counts[key].count += 1
            else:
                counts[key] = BaselineEntry(
                    rule=finding.rule, path=finding.path, context=finding.context
                )
        return cls(sorted(counts.values(), key=lambda e: (e.path, e.rule, e.context)))

    def save(self, path: Union[str, Path]) -> None:
        """Write the baseline atomically (it is itself a gated artifact)."""
        payload = {
            "version": 1,
            "findings": [entry.to_jsonable() for entry in self.entries],
        }
        atomic_write_text(path, json.dumps(payload, indent=2, sort_keys=True) + "\n")

    def partition(
        self, findings: Sequence[Finding]
    ) -> tuple[list[Finding], list[Finding], list[BaselineEntry]]:
        """Split findings into (fresh, grandfathered) and report stale entries.

        Each entry absorbs up to ``count`` matching findings; entries
        that absorb none are *stale* — the code they grandfathered has
        changed or gone, and ``--strict`` insists they be pruned.
        """
        budget = {entry.key(): entry.count for entry in self.entries}
        matched: dict[tuple[str, str, str], int] = {}
        fresh: list[Finding] = []
        grandfathered: list[Finding] = []
        for finding in findings:
            key = finding.baseline_key()
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                matched[key] = matched.get(key, 0) + 1
                grandfathered.append(finding)
            else:
                fresh.append(finding)
        stale = [e for e in self.entries if matched.get(e.key(), 0) == 0]
        return fresh, grandfathered, stale
