"""The rule registry: one :class:`Rule` per machine-checked contract.

Mirrors the strategy/cost-model registries of :mod:`repro.api`: rules
register under a stable id (``RL001``, ...) via :func:`register_rule`,
an unknown id raises listing the registered alternatives verbatim (the
CLI ships that message on exit 2), and plugins can register additional
rules before invoking the runner.

A rule is an AST checker bound to a contract prose statement: ``check``
receives the parsed module, its source lines, and the (as-reported)
path, and yields :class:`~repro.analysis.findings.Finding` objects.
``applies_to`` scopes path-specific rules (RL004 only patrols the serve
tier); everything else runs on every linted file.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional, Sequence

from repro.analysis.findings import Finding


class UnknownRuleError(ValueError):
    """Raised for an unregistered rule id; lists registered ids."""


class Rule:
    """Base class of one lint rule.

    Subclasses set the class attributes and implement :meth:`check`;
    instantiating happens once, at registration.

    Attributes:
        id: Stable rule id (``RL001`` ...), the suppression handle.
        name: Short kebab-case name shown in ``--list-rules``.
        contract: One-sentence statement of the invariant the rule
            protects — shown in ``--list-rules`` and the docs catalog.
    """

    id: str = ""
    name: str = ""
    contract: str = ""

    def applies_to(self, path: str) -> bool:
        """Whether the rule patrols ``path`` (default: every file)."""
        return True

    def check(
        self, tree: ast.Module, lines: Sequence[str], path: str
    ) -> Iterable[Finding]:
        """Yield findings for one parsed module."""
        raise NotImplementedError

    def finding(
        self, node: ast.AST, message: str, lines: Sequence[str], path: str
    ) -> Finding:
        """Build a finding anchored at ``node`` with its context line."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        context = lines[line - 1].strip() if 0 < line <= len(lines) else ""
        return Finding(
            path=path, line=line, col=col, rule=self.id,
            message=message, context=context,
        )


_RULES: dict[str, Rule] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and register one rule by id.

    Raises:
        ValueError: on a duplicate or malformed id — registration bugs
            fail at import, not at first lint.
    """
    rule = cls()
    if not rule.id or not rule.id.startswith("RL"):
        raise ValueError(f"rule id must look like 'RL###', got {rule.id!r}")
    if rule.id in _RULES:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    _RULES[rule.id] = rule
    return cls


def get_rule(rule_id: str) -> Rule:
    """Look up one registered rule.

    Raises:
        UnknownRuleError: listing the registered ids verbatim.
    """
    try:
        return _RULES[rule_id]
    except KeyError:
        raise UnknownRuleError(
            f"unknown rule {rule_id!r}; registered rules: "
            + ", ".join(sorted(_RULES))
        ) from None


def all_rules() -> list[Rule]:
    """Every registered rule, in id order."""
    return [_RULES[rule_id] for rule_id in sorted(_RULES)]


def select_rules(ids: Optional[Sequence[str]]) -> list[Rule]:
    """Resolve an id list (``None`` -> all rules), erroring on unknowns."""
    if ids is None:
        return all_rules()
    return [get_rule(rule_id) for rule_id in ids]
