"""The lint driver: files in, a :class:`LintReport` out.

Walks the requested paths, parses each module once, runs every selected
rule over the shared AST, then applies the two suppression layers
(inline directives, then the baseline).  Rendering (text or JSON) lives
here too, so the CLI verb stays a thin argument shim with the exit-code
contract:

* ``0`` — clean (no unsuppressed findings; ``--strict`` additionally
  requires no stale baseline entries),
* ``1`` — findings,
* ``2`` — usage/config error (bad path, unknown rule, malformed
  baseline, unparseable source).
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, select_rules
from repro.analysis.suppress import Baseline, BaselineEntry, parse_suppressions


class LintConfigError(ValueError):
    """A usage/config problem (exit 2): bad path, unparseable file, ..."""


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    grandfathered: list[Finding] = field(default_factory=list)
    stale_baseline: list[BaselineEntry] = field(default_factory=list)
    files: int = 0

    def exit_code(self, strict: bool = False) -> int:
        """The CI contract: 0 clean, 1 findings (or stale under strict)."""
        if self.findings:
            return 1
        if strict and self.stale_baseline:
            return 1
        return 0

    def format(self, strict: bool = False) -> str:
        """The human rendering: one line per finding plus a summary."""
        lines = [finding.format() for finding in self.findings]
        for entry in self.stale_baseline:
            marker = "error" if strict else "note"
            lines.append(
                f"{entry.path}: {marker}: stale baseline entry "
                f"[{entry.rule}] no longer matches: {entry.context!r}"
            )
        lines.append(
            f"{len(self.findings)} finding(s) in {self.files} file(s) "
            f"({len(self.suppressed)} suppressed inline, "
            f"{len(self.grandfathered)} grandfathered, "
            f"{len(self.stale_baseline)} stale baseline entr(y/ies))"
        )
        return "\n".join(lines)

    def to_jsonable(self) -> dict:
        """The ``--format json`` document."""
        return {
            "findings": [f.to_jsonable() for f in self.findings],
            "suppressed": [f.to_jsonable() for f in self.suppressed],
            "grandfathered": [f.to_jsonable() for f in self.grandfathered],
            "stale_baseline": [e.to_jsonable() for e in self.stale_baseline],
            "files": self.files,
        }


def _collect_files(paths: Sequence[Union[str, Path]]) -> list[Path]:
    """Expand files/directories into the sorted ``*.py`` worklist."""
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.update(
                p for p in path.rglob("*.py") if "__pycache__" not in p.parts
            )
        elif path.is_file():
            files.add(path)
        else:
            raise LintConfigError(f"no such file or directory: {raw}")
    return sorted(files)


def lint_paths(
    paths: Sequence[Union[str, Path]],
    *,
    rules: Optional[Sequence[str]] = None,
    baseline: Optional[Baseline] = None,
) -> LintReport:
    """Run the selected rules over every ``*.py`` under ``paths``.

    Args:
        paths: Files and/or directories (directories recurse).
        rules: Rule ids to run (default: all registered rules); an
            unknown id raises :class:`~repro.analysis.registry.UnknownRuleError`.
        baseline: Grandfathered findings to absorb, if any.

    Raises:
        LintConfigError: on a missing path or an unparseable file —
            config problems, distinct from findings.
    """
    selected: list[Rule] = select_rules(rules)
    report = LintReport()
    raw_findings: list[Finding] = []
    for file_path in _collect_files(paths):
        report.files += 1
        path_label = file_path.as_posix()
        try:
            source = file_path.read_text()
            tree = ast.parse(source, filename=path_label)
        except (OSError, SyntaxError, ValueError) as exc:
            raise LintConfigError(f"cannot lint {path_label}: {exc}") from exc
        lines = source.splitlines()
        suppressions = parse_suppressions(source)
        for rule in selected:
            if not rule.applies_to(path_label):
                continue
            for finding in rule.check(tree, lines, path_label):
                if suppressions.covers(finding):
                    report.suppressed.append(finding)
                else:
                    raw_findings.append(finding)
    raw_findings.sort()
    if baseline is not None:
        fresh, grandfathered, stale = baseline.partition(raw_findings)
        report.findings = fresh
        report.grandfathered = grandfathered
        report.stale_baseline = stale
    else:
        report.findings = raw_findings
    return report


def render_rule_catalog() -> str:
    """The ``--list-rules`` text: id, name, and contract per rule."""
    lines = []
    for rule in select_rules(None):
        lines.append(f"{rule.id}  {rule.name}")
        lines.append(f"       {rule.contract}")
    return "\n".join(lines)
