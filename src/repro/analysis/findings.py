"""The linter's unit of output: one :class:`Finding` per violation.

A finding is a ``(rule, location, message)`` triple plus the *context*
line — the stripped source text of the line the finding anchors to.
The context is what the suppression baseline matches on (see
:mod:`repro.analysis.suppress`): baselines keyed by line numbers rot on
every unrelated edit, while ``(rule, path, context)`` keys survive code
motion and go stale exactly when the offending code itself changes —
which is when a human should re-look anyway.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    context: str = ""

    def format(self) -> str:
        """The one-line human rendering: ``path:line:col: RULE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_jsonable(self) -> dict:
        """The ``--format json`` record."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "context": self.context,
        }

    def baseline_key(self) -> tuple[str, str, str]:
        """The (rule, path, context) key baseline entries match on."""
        return (self.rule, self.path, self.context)
