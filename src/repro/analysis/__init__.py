"""``repro.analysis`` — the repo's AST invariant linter ("repro-lint").

The reproduction's proofs (bit-identical incremental vs. full
evaluation, parallel-campaign byte-identity, serve responses byte-equal
to direct Session calls) rest on conventions: seeded
:func:`repro.determinism.derive_rng` streams, canonical JSON, the
``session.lock`` discipline, tmp + ``os.replace`` writes.  This package
machine-checks those conventions *before* a refactor lands instead of
relying on the differential suites to catch violations after the fact.

Layout:

* :mod:`~repro.analysis.registry` — the rule registry (``RL###`` ids,
  unknown id lists the registered alternatives, plugin-extensible);
* :mod:`~repro.analysis.rules` — the built-in rules RL001–RL005;
* :mod:`~repro.analysis.suppress` — inline ``# repro-lint:
  disable=<rule>`` directives and the committed grandfather baseline;
* :mod:`~repro.analysis.findings` / :mod:`~repro.analysis.runner` —
  the :class:`Finding` model and the driving/rendering layer behind
  the ``repro-dtr lint`` verb (exit contract: 0 clean, 1 findings,
  2 usage/config error).

See ``docs/static-analysis.md`` for the rule catalog and the policy on
suppressions.
"""

from repro.analysis import rules  # noqa: F401  (registers the built-ins)
from repro.analysis.findings import Finding
from repro.analysis.registry import (
    Rule,
    UnknownRuleError,
    all_rules,
    get_rule,
    register_rule,
)
from repro.analysis.runner import (
    LintConfigError,
    LintReport,
    lint_paths,
    render_rule_catalog,
)
from repro.analysis.suppress import (
    DEFAULT_BASELINE,
    Baseline,
    BaselineEntry,
    BaselineError,
    Suppressions,
    parse_suppressions,
)

__all__ = [
    "Baseline",
    "BaselineEntry",
    "BaselineError",
    "DEFAULT_BASELINE",
    "Finding",
    "LintConfigError",
    "LintReport",
    "Rule",
    "Suppressions",
    "UnknownRuleError",
    "all_rules",
    "get_rule",
    "lint_paths",
    "parse_suppressions",
    "register_rule",
    "render_rule_catalog",
]
