"""The built-in rules: the repo's reproducibility contracts, as AST checks.

Each rule machine-checks one invariant the differential test suites
otherwise only catch after the fact:

* **RL001 no-global-rng** — randomness flows through
  :func:`repro.determinism.derive_rng` streams; module-level
  ``random.*`` calls and unseeded ``random.Random()`` constructions
  reintroduce hidden global state that campaign workers reorder.
* **RL002 wallclock-in-results** — result-producing code must not read
  the wall clock (``time.time``/``datetime.now``): records become
  run-dependent and the content-addressed store stops deduplicating.
  Monotonic timing (``time.perf_counter``/``time.monotonic``) for
  duration metadata is fine and not flagged.
* **RL003 unordered-iteration-to-canonical-output** — feeding a ``set``
  or dict-``.keys()`` view into ``json.dump(s)``, ``canonical_dumps``/
  ``canonical_body``, or a hash without ``sorted(...)`` makes "canonical"
  bytes depend on insertion order.
* **RL004 lock-discipline** — in the serve tier, shared-session
  mutating methods (the PR-5 thread-safety audit's list) must be called
  under ``with <...>.lock:``; anything else races the evaluator's LRU
  caches.
* **RL005 non-atomic-write** — store/bench/baseline writes must use the
  tmp + ``os.replace`` idiom (:mod:`repro.ioutil`); a torn ``open(path,
  "w")`` write leaves half-records that resume logic then trusts.
* **RL006 telemetry-in-canonical-output** — :mod:`repro.obs` telemetry
  is out-of-band by contract: a counter value or trace attribute flowing
  into ``canonical_body``/``canonical_dumps`` or a result-payload builder
  makes "canonical" bytes depend on how many times the process was
  exercised, breaking every differential bit-identity suite.

Heuristics err toward precision: each check matches the concrete idioms
this codebase uses, and genuinely intended exceptions are annotated with
``# repro-lint: disable=<rule>`` at the call site (see
:mod:`repro.analysis.suppress`).
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional, Sequence

from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register_rule


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _receiver_name(node: ast.AST) -> Optional[str]:
    """The terminal identifier of a call receiver (``x`` in ``a.x.m()``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


@register_rule
class NoGlobalRng(Rule):
    """RL001: all randomness must come from seeded, derived streams."""

    id = "RL001"
    name = "no-global-rng"
    contract = (
        "randomness flows through derive_rng(seed, stream) / seeded "
        "random.Random(seed) — never module-level random.* calls or "
        "unseeded random.Random(), whose hidden global state breaks "
        "campaign byte-identity"
    )

    def check(
        self, tree: ast.Module, lines: Sequence[str], path: str
    ) -> Iterable[Finding]:
        # `from random import <fn>` imports module-level state wholesale;
        # flag the import itself (Random, the seedable class, is fine).
        from_random: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                bad = [a.name for a in node.names if a.name != "Random"]
                if bad:
                    yield self.finding(
                        node,
                        "import of module-level random state "
                        f"({', '.join(bad)}): use derive_rng streams",
                        lines, path,
                    )
                from_random.update(
                    (a.asname or a.name) for a in node.names if a.name == "Random"
                )
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_name(node.func)
            if dotted is not None and dotted.startswith("random."):
                attr = dotted[len("random."):]
                if attr == "Random":
                    if not node.args and not node.keywords:
                        yield self.finding(
                            node,
                            "unseeded random.Random(): derive the default "
                            "from repro.determinism.default_rng(stream)",
                            lines, path,
                        )
                elif "." not in attr:
                    yield self.finding(
                        node,
                        f"module-level random.{attr}(): global RNG state is "
                        "shared across workers; use a derive_rng stream",
                        lines, path,
                    )
            elif (
                isinstance(node.func, ast.Name)
                and node.func.id in from_random
                and not node.args
                and not node.keywords
            ):
                yield self.finding(
                    node,
                    "unseeded Random(): derive the default from "
                    "repro.determinism.default_rng(stream)",
                    lines, path,
                )


_WALLCLOCK = {
    "time.time": "time.time()",
    "datetime.now": "datetime.now()",
    "datetime.utcnow": "datetime.utcnow()",
    "datetime.today": "datetime.today()",
    "date.today": "date.today()",
}


@register_rule
class WallclockInResults(Rule):
    """RL002: result-producing code must not read the wall clock."""

    id = "RL002"
    name = "wallclock-in-results"
    contract = (
        "results are pure functions of their config: wall-clock reads "
        "(time.time, datetime.now) make records run-dependent; use "
        "time.perf_counter/time.monotonic for duration metadata"
    )

    def check(
        self, tree: ast.Module, lines: Sequence[str], path: str
    ) -> Iterable[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_name(node.func)
            if dotted is None:
                continue
            for suffix, label in _WALLCLOCK.items():
                if dotted == suffix or dotted.endswith("." + suffix):
                    yield self.finding(
                        node,
                        f"wall-clock read {label} reachable from a "
                        "result-producing path; use time.perf_counter() "
                        "for durations or pass timestamps in explicitly",
                        lines, path,
                    )
                    break


_CANONICAL_SINKS = {"canonical_dumps", "canonical_body", "weights_key"}
_HASH_CONSTRUCTORS = {"sha256", "sha1", "sha512", "md5", "blake2b", "blake2s"}


class _UnorderedScan(ast.NodeVisitor):
    """Find set/dict-keys subexpressions not wrapped in ``sorted(...)``."""

    def __init__(self) -> None:
        self.hits: list[tuple[ast.AST, str]] = []

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "sorted":
            return  # sorted(...) neutralizes anything beneath it
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            self.hits.append((node, f"{func.id}(...)"))
            # keep descending: set(x.keys()) should report once, at set()
            return
        if isinstance(func, ast.Attribute) and func.attr in ("keys", "values"):
            self.hits.append((node, f".{func.attr}() view"))
        self.generic_visit(node)

    def visit_Set(self, node: ast.Set) -> None:
        self.hits.append((node, "set literal"))
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self.hits.append((node, "set comprehension"))
        self.generic_visit(node)


@register_rule
class UnorderedCanonicalOutput(Rule):
    """RL003: canonical/hashed output must not iterate unordered views."""

    id = "RL003"
    name = "unordered-iteration-to-canonical-output"
    contract = (
        "canonical JSON and content hashes are byte-stable: a set or "
        "dict-.keys() view reaching json.dump(s), canonical_dumps/"
        "canonical_body, or a hashlib constructor must pass through "
        "sorted(...) first"
    )

    def check(
        self, tree: ast.Module, lines: Sequence[str], path: str
    ) -> Iterable[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            sink = self._sink_label(node)
            if sink is None:
                continue
            scan = _UnorderedScan()
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                scan.visit(arg)
            for hit, what in scan.hits:
                yield self.finding(
                    hit,
                    f"{what} flows into {sink} without sorted(...): "
                    "iteration order is arbitrary, canonical bytes are not",
                    lines, path,
                )

    @staticmethod
    def _sink_label(node: ast.Call) -> Optional[str]:
        dotted = _dotted_name(node.func)
        if dotted in ("json.dumps", "json.dump") or (
            dotted is not None and dotted.endswith((".json.dumps", ".json.dump"))
        ):
            return dotted
        name = dotted.rsplit(".", 1)[-1] if dotted else None
        if name in _CANONICAL_SINKS:
            return name
        if (
            dotted is not None
            and dotted.startswith("hashlib.")
            and name in _HASH_CONSTRUCTORS
        ):
            return dotted
        return None


_SESSION_MUTATORS = frozenset(
    # The PR-5 thread-safety audit (repro.api.session module docstring):
    # these touch the evaluator's LRU caches, the sweep engine's memos,
    # or the lazily built baseline slots.
    {
        "under_scenario", "under_failure", "what_if", "scaled_traffic",
        "sweep", "sweep_space", "evaluate", "objective",
        "set_weights", "adopt", "optimize",
    }
)


@register_rule
class LockDiscipline(Rule):
    """RL004: serve-tier session mutations run under ``session.lock``."""

    id = "RL004"
    name = "lock-discipline"
    contract = (
        "a Session shared across threads is mutated only inside a "
        "`with <...>.lock:` block (repro.api.session thread-safety "
        "audit); the serve tier is where sessions are shared"
    )

    def applies_to(self, path: str) -> bool:
        normalized = path.replace("\\", "/")
        return "serve" in normalized.split("/")

    def check(
        self, tree: ast.Module, lines: Sequence[str], path: str
    ) -> Iterable[Finding]:
        findings: list[Finding] = []
        self._walk(tree, under_lock=False, lines=lines, path=path, out=findings)
        return findings

    def _walk(
        self,
        node: ast.AST,
        under_lock: bool,
        lines: Sequence[str],
        path: str,
        out: list[Finding],
    ) -> None:
        if isinstance(node, ast.With):
            holds = under_lock or any(
                isinstance(item.context_expr, ast.Attribute)
                and item.context_expr.attr in ("lock", "_lock")
                for item in node.items
            )
            for child in node.body:
                self._walk(child, holds, lines, path, out)
            for item in node.items:
                self._walk(item.context_expr, under_lock, lines, path, out)
            return
        if isinstance(node, ast.Call) and not under_lock:
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _SESSION_MUTATORS
                and self._is_session(func.value)
            ):
                out.append(
                    self.finding(
                        node,
                        f"session.{func.attr}(...) outside a "
                        "`with <...>.lock:` block: shared-session state "
                        "races (see the Session thread-safety audit)",
                        lines, path,
                    )
                )
        for child in ast.iter_child_nodes(node):
            self._walk(child, under_lock, lines, path, out)

    @staticmethod
    def _is_session(receiver: ast.AST) -> bool:
        name = _receiver_name(receiver)
        return name is not None and "session" in name.lower()


_WRITE_MODES = {"w", "wt", "tw", "w+", "x", "xt"}


@register_rule
class NonAtomicWrite(Rule):
    """RL005: result writes use the tmp + ``os.replace`` idiom."""

    id = "RL005"
    name = "non-atomic-write"
    contract = (
        "store/bench/baseline artifacts are replaced atomically "
        "(repro.ioutil.atomic_write_text: tmp + os.replace); a torn "
        "open(path, 'w') write leaves half-records resume logic trusts"
    )

    def check(
        self, tree: ast.Module, lines: Sequence[str], path: str
    ) -> Iterable[Finding]:
        findings: list[Finding] = []
        self._check_scope(tree, lines, path, findings)
        return findings

    def _check_scope(
        self,
        scope: ast.AST,
        lines: Sequence[str],
        path: str,
        out: list[Finding],
    ) -> None:
        """One function body (or the module top level) at a time.

        The atomicity idiom is local: a scope that calls ``os.replace``
        (or ``<tmp>.replace``) is assumed to be an implementation of the
        idiom itself, so its direct writes are the tmp-file side and not
        flagged.  Nested functions are independent scopes.
        """
        body_writes: list[tuple[ast.AST, str]] = []
        has_replace = False
        nested: list[ast.AST] = []

        def visit(node: ast.AST) -> None:
            nonlocal has_replace
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and (
                node is not scope
            ):
                nested.append(node)
                return
            if isinstance(node, ast.Call):
                dotted = _dotted_name(node.func)
                if dotted == "os.replace" or (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "replace"
                    and len(node.args) <= 1
                ):
                    has_replace = True
                target = self._write_target(node, dotted)
                if target is not None:
                    body_writes.append((node, target))
            for child in ast.iter_child_nodes(node):
                visit(child)

        visit(scope)
        if not has_replace:
            for node, what in body_writes:
                out.append(
                    self.finding(
                        node,
                        f"{what} without the tmp + os.replace idiom: use "
                        "repro.ioutil.atomic_write_text (a torn write "
                        "corrupts the record a resume would trust)",
                        lines, path,
                    )
                )
        for scope_node in nested:
            self._check_scope(scope_node, lines, path, out)

    @staticmethod
    def _write_target(node: ast.Call, dotted: Optional[str]) -> Optional[str]:
        """A human label when ``node`` opens a file for writing."""
        name = dotted.rsplit(".", 1)[-1] if dotted else None
        if name == "open":
            mode = None
            if len(node.args) >= 2 and isinstance(node.args[1], ast.Constant):
                mode = node.args[1].value
            for kw in node.keywords:
                if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
                    mode = kw.value.value
            if isinstance(mode, str) and mode.replace("b", "") in _WRITE_MODES:
                receiver = node.args[0] if node.args else None
                if NonAtomicWrite._is_tmp(receiver):
                    return None
                return f"open(..., {mode!r})"
            return None
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "write_text", "write_bytes"
        ):
            if NonAtomicWrite._is_tmp(node.func.value):
                return None
            return f".{node.func.attr}(...)"
        return None

    @staticmethod
    def _is_tmp(receiver: Optional[ast.AST]) -> bool:
        """Writes to an explicit tmp path are the idiom's first half."""
        while isinstance(receiver, ast.Call):
            receiver = receiver.func
        name = _receiver_name(receiver) if receiver is not None else None
        return name is not None and "tmp" in name.lower()


_TELEMETRY_SINKS = frozenset(
    # Canonical-byte producers and the result-payload builders feeding
    # them: anything reaching these becomes part of a record's identity.
    {
        "canonical_body", "canonical_dumps",
        "whatif_payload", "sweep_payload", "space_payload",
        "build_record",
    }
)


@register_rule
class TelemetryInCanonicalOutput(Rule):
    """RL006: obs telemetry never flows into canonical result bytes."""

    id = "RL006"
    name = "telemetry-in-canonical-output"
    contract = (
        "repro.obs telemetry is out-of-band: counters, snapshots, and "
        "span data must never reach canonical_body/canonical_dumps or a "
        "result-payload builder — run-dependent values in canonical "
        "bytes break differential bit-identity"
    )

    def check(
        self, tree: ast.Module, lines: Sequence[str], path: str
    ) -> Iterable[Finding]:
        names, prefixes = self._tainted_bindings(tree)
        if not names and not prefixes:
            return
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted_name(node.func)
            sink = dotted.rsplit(".", 1)[-1] if dotted else None
            if sink not in _TELEMETRY_SINKS:
                continue
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                for leak, what in self._scan(arg, names, prefixes):
                    yield self.finding(
                        leak,
                        f"{what} flows into {sink}(...): telemetry is "
                        "out-of-band and must not shape canonical result "
                        "bytes (emit it via /metrics or the trace log)",
                        lines, path,
                    )

    @staticmethod
    def _tainted_bindings(
        tree: ast.Module,
    ) -> tuple[set[str], set[str]]:
        """Names and dotted prefixes bound to :mod:`repro.obs`."""
        names: set[str] = set()
        prefixes: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom):
                if node.module == "repro":
                    names.update(
                        (a.asname or a.name)
                        for a in node.names if a.name == "obs"
                    )
                elif node.module and (
                    node.module == "repro.obs"
                    or node.module.startswith("repro.obs.")
                ):
                    names.update((a.asname or a.name) for a in node.names)
            elif isinstance(node, ast.Import):
                for a in node.names:
                    if a.name == "repro.obs" or a.name.startswith("repro.obs."):
                        if a.asname:
                            names.add(a.asname)
                        else:
                            prefixes.add("repro.obs")
        return names, prefixes

    @classmethod
    def _scan(
        cls, node: ast.AST, names: set[str], prefixes: set[str]
    ) -> Iterable[tuple[ast.AST, str]]:
        """Tainted subexpressions of one sink argument.

        Recursion stops at a tainted chain so ``obs.snapshot()`` reports
        once (the chain), not again for the inner ``obs`` name.
        """
        if isinstance(node, ast.Name) and node.id in names:
            yield node, node.id
            return
        if isinstance(node, ast.Attribute):
            dotted = _dotted_name(node)
            if dotted is not None:
                root = dotted.split(".", 1)[0]
                if root in names or any(
                    dotted == p or dotted.startswith(p + ".")
                    for p in prefixes
                ):
                    yield node, dotted
                    return
        for child in ast.iter_child_nodes(node):
            yield from cls._scan(child, names, prefixes)
