"""Dual Topology Routing (DTR) for IP service differentiation.

A full reproduction of Kwong, Guerin, Shaikh, Tao — "Improving Service
Differentiation in IP Networks through Dual Topology Routing"
(ACM CoNEXT 2007): topology generators, OSPF/ECMP routing engine,
traffic models, load-based and SLA-based lexicographic cost functions,
the STR baseline and the paper's DTR weight-search heuristic, plus an
evaluation harness that regenerates every figure and table.

Quickstart (the ``repro.api`` facade)::

    import random
    from repro import (
        Session, optimize_session,
        gravity_traffic_matrix, random_high_priority,
        isp_topology, scale_to_utilization,
    )

    rng = random.Random(7)
    net = isp_topology()
    low = gravity_traffic_matrix(net.num_nodes, rng)
    high = random_high_priority(low, density=0.1, fraction=0.3, rng=rng)
    high_tm, low_tm = scale_to_utilization(net, high.matrix, low, 0.6)
    session = Session(net, high_tm, low_tm, cost_model="load")
    str_result = optimize_session(session, strategy="str", rng=rng)
    dtr_result = optimize_session(
        session, strategy="dtr", rng=rng,
        initial_high=str_result.weights, initial_low=str_result.weights,
    )
    print(str_result.objective, dtr_result.objective)
    print(session.what_if((3, 17)).format())   # incremental what-if query

The legacy free functions (``optimize_str``, ``optimize_dtr``,
``optimize_joint``, ``anneal_str``) remain as deprecation shims that
delegate to the registered strategies.
"""

from repro.api import (
    OptimizationResult,
    Session,
    WhatIfResult,
    available_cost_models,
    available_strategies,
    register_cost_model,
    register_strategy,
)
from repro.api import optimize as optimize_session
from repro.core.dtr_search import DtrResult, optimize_dtr
from repro.core.evaluator import DualTopologyEvaluator
from repro.core.lexicographic import LexCost
from repro.core.search_params import SearchParams
from repro.core.str_search import StrResult, optimize_str
from repro.costs.fortz import fortz_cost, fortz_cost_vector
from repro.costs.joint import joint_cost
from repro.costs.load_cost import evaluate_load_cost
from repro.costs.residual import residual_capacities
from repro.costs.sla import SlaParams, evaluate_sla_cost
from repro.eval.experiment import ExperimentConfig, run_comparison
from repro.network.graph import Network
from repro.network.link import Link
from repro.network.topology_isp import isp_topology
from repro.network.topology_powerlaw import powerlaw_topology
from repro.network.topology_random import random_topology
from repro.routing.multi_topology import DualRouting, MultiTopology
from repro.routing.state import Routing
from repro.traffic.gravity import gravity_traffic_matrix
from repro.traffic.highpriority import random_high_priority, sink_high_priority
from repro.traffic.matrix import TrafficMatrix
from repro.traffic.scaling import average_utilization, scale_to_utilization

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Network",
    "Link",
    "random_topology",
    "powerlaw_topology",
    "isp_topology",
    "Routing",
    "MultiTopology",
    "DualRouting",
    "TrafficMatrix",
    "gravity_traffic_matrix",
    "random_high_priority",
    "sink_high_priority",
    "scale_to_utilization",
    "average_utilization",
    "fortz_cost",
    "fortz_cost_vector",
    "residual_capacities",
    "evaluate_load_cost",
    "evaluate_sla_cost",
    "SlaParams",
    "joint_cost",
    "LexCost",
    "SearchParams",
    "DualTopologyEvaluator",
    "optimize_str",
    "StrResult",
    "optimize_dtr",
    "DtrResult",
    "ExperimentConfig",
    "run_comparison",
    "Session",
    "optimize_session",
    "OptimizationResult",
    "WhatIfResult",
    "register_strategy",
    "register_cost_model",
    "available_strategies",
    "available_cost_models",
]
