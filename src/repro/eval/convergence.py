"""Convergence analysis of search histories.

Both searches record ``(iteration, objective)`` at every improvement;
these utilities turn those sparse histories into dense best-so-far traces
and summary statistics — used to compare budgets, ablations, and the
STR/DTR searches against each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.lexicographic import LexCost


@dataclass(frozen=True)
class ConvergenceTrace:
    """A dense best-so-far objective trace.

    Attributes:
        iterations: Iteration axis (0 .. total).
        objectives: Best objective found up to each iteration.
    """

    iterations: tuple[int, ...]
    objectives: tuple[LexCost, ...]

    @property
    def final(self) -> LexCost:
        """The final best objective."""
        return self.objectives[-1]

    @property
    def initial(self) -> LexCost:
        """The starting objective."""
        return self.objectives[0]

    def iterations_to_within(self, fraction: float) -> int:
        """First iteration whose secondary cost is within ``fraction`` of final.

        Measures convergence on the low-priority cost (the component DTR
        exists to improve) after the primary component has reached its
        final value.

        Raises:
            ValueError: if ``fraction`` is negative.
        """
        if fraction < 0:
            raise ValueError(f"fraction must be non-negative, got {fraction}")
        target_primary = self.final.primary
        target_secondary = self.final.secondary * (1.0 + fraction)
        for iteration, objective in zip(self.iterations, self.objectives):
            if objective.primary <= target_primary and objective.secondary <= target_secondary:
                return iteration
        return self.iterations[-1]

    def improvement_count(self) -> int:
        """Number of strict improvements along the trace."""
        count = 0
        for prev, cur in zip(self.objectives, self.objectives[1:]):
            if cur < prev:
                count += 1
        return count


def trace_from_history(
    history: Sequence[tuple], total_iterations: int
) -> ConvergenceTrace:
    """Densify a search history into a best-so-far trace.

    Accepts both STR histories (``(iteration, objective)``) and DTR
    histories (``(phase, iteration, objective)``); DTR phase-local
    iterations are concatenated in phase order.

    Args:
        history: Improvement events as recorded by the searches.
        total_iterations: Length of the iteration axis.

    Returns:
        A :class:`ConvergenceTrace` of ``total_iterations + 1`` samples.

    Raises:
        ValueError: on an empty history.
    """
    if not history:
        raise ValueError("history must contain at least the initial objective")
    events = []
    offset = 0
    last_phase = None
    last_iter = 0
    for entry in history:
        if len(entry) == 3:
            phase, iteration, objective = entry
            if phase != last_phase and last_phase is not None:
                offset += last_iter
            last_phase = phase
            last_iter = iteration
            events.append((offset + iteration, objective))
        else:
            iteration, objective = entry
            events.append((iteration, objective))
    events.sort(key=lambda e: e[0])

    iterations = tuple(range(total_iterations + 1))
    objectives = []
    best = events[0][1]
    idx = 0
    for i in iterations:
        while idx < len(events) and events[idx][0] <= i:
            if events[idx][1] < best:
                best = events[idx][1]
            idx += 1
        objectives.append(best)
    return ConvergenceTrace(iterations=iterations, objectives=tuple(objectives))


def relative_gap(a: LexCost, b: LexCost) -> float:
    """Relative secondary-cost gap of ``a`` over ``b`` (0 when equal)."""
    if b.secondary <= 0:
        return 0.0 if a.secondary <= 0 else float("inf")
    return a.secondary / b.secondary - 1.0
