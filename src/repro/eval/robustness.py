"""Robustness of weight settings under degraded scenarios.

A weight setting tuned for the intact network keeps being used after a
failure — OSPF simply recomputes shortest paths over the survivors.
This module evaluates how STR and DTR weight settings degrade across
scenario sweeps, the robustness criterion of Nucci et al. [5] and a
natural companion to the paper's MTR deployment argument.

Two sweep shapes are provided:

* :func:`failure_sweep_session` / :func:`failure_sweep` — the classic
  single-adjacency failure sweep, now riding
  :meth:`repro.api.Session.sweep` (the batched scenario engine) instead
  of one query per failure.  Failures that disconnect demand are **no
  longer silently skipped**: each outcome carries an explicit
  ``disconnected`` flag and the demand volume lost, and cost statistics
  fold the connected outcomes only.
* :func:`scenario_sweep_session` — the general form: any mix of
  scenario classes (link, node, SRLG, traffic surge, ...) with
  worst/mean degradation reported *per scenario class*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.core.lexicographic import LexCost
from repro.network.graph import Network
from repro.traffic.matrix import TrafficMatrix

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.api.session import Session
    from repro.scenarios.algebra import Scenario
    from repro.scenarios.batch import SweepResult
    from repro.scenarios.spaces import SpaceSweepResult


@dataclass(frozen=True)
class FailureOutcome:
    """Cost of one weight setting under one failure scenario.

    ``disconnected`` outcomes were evaluated over the routable demand
    remainder (``lost_demand`` Mb/s excluded); their costs are reported
    but kept out of the worst/mean statistics, where they would compare
    a smaller workload against the full baseline.
    """

    failed_pair: tuple[int, int]
    phi_high: float
    phi_low: float
    max_utilization: float
    disconnected: bool = False
    lost_demand: float = 0.0

    @property
    def objective(self) -> LexCost:
        """Lexicographic cost under this failure."""
        return LexCost(self.phi_high, self.phi_low)


@dataclass(frozen=True)
class RobustnessReport:
    """Aggregate of a full single-failure sweep for one weight setting.

    Attributes:
        baseline: Cost on the intact network.
        outcomes: Per-failure costs — every adjacency, including those
            whose failure disconnects demand (flagged, not dropped).
    """

    baseline: FailureOutcome
    outcomes: tuple[FailureOutcome, ...]

    @property
    def disconnected_count(self) -> int:
        """Failures that cut off positive demand (flagged outcomes)."""
        return sum(1 for o in self.outcomes if o.disconnected)

    @property
    def skipped_disconnecting(self) -> int:
        """Deprecated alias for :attr:`disconnected_count`.

        Disconnecting failures used to be silently dropped from the
        sweep; they are now evaluated and flagged.  The old name remains
        for stored-record and caller compatibility.
        """
        return self.disconnected_count

    def _connected(self) -> list[FailureOutcome]:
        return [o for o in self.outcomes if not o.disconnected]

    @property
    def worst_phi_low(self) -> float:
        """Worst low-priority cost across connected failures."""
        values = [o.phi_low for o in self._connected()]
        return max(values) if values else self.baseline.phi_low

    @property
    def worst_phi_high(self) -> float:
        """Worst high-priority cost across connected failures."""
        values = [o.phi_high for o in self._connected()]
        return max(values) if values else self.baseline.phi_high

    @property
    def mean_phi_low(self) -> float:
        """Mean low-priority cost across connected failures."""
        values = [o.phi_low for o in self._connected()]
        return float(np.mean(values)) if values else self.baseline.phi_low

    @property
    def mean_phi_high(self) -> float:
        """Mean high-priority cost across connected failures."""
        values = [o.phi_high for o in self._connected()]
        return float(np.mean(values)) if values else self.baseline.phi_high

    def degradation_factor(self) -> float:
        """Worst-case over baseline low-priority cost ratio."""
        if self.baseline.phi_low <= 0:
            return 1.0
        return self.worst_phi_low / self.baseline.phi_low


def failure_sweep_session(session: "Session") -> RobustnessReport:
    """Evaluate a session's baseline weights under every single failure.

    Weight vectors are *not* re-optimized per failure: survivors keep
    their weights, exactly as deployed OSPF/MT-OSPF would.  The baseline
    setting is whatever the session adopted (an ``optimize`` result or
    an explicit ``set_weights``).  The whole sweep runs as one batched
    :meth:`~repro.api.Session.sweep`, so topology projections and
    incremental-SPF derivations are shared across failures.

    Args:
        session: A session with a pinned baseline weight setting.

    Returns:
        A :class:`RobustnessReport` with the baseline and *all* failure
        outcomes (disconnecting ones flagged), ordered by adjacency.
    """
    from repro.scenarios.algebra import LinkFailure

    net = session.network
    scenarios = [LinkFailure.single(u, v) for u, v in net.duplex_pairs()]
    result = session.sweep(scenarios)
    base_objective = session.cost_model.objective(result.baseline, net)
    baseline = FailureOutcome(
        failed_pair=(-1, -1),
        phi_high=base_objective.primary,
        phi_low=base_objective.secondary,
        max_utilization=result.baseline.max_utilization,
    )
    outcomes = []
    for outcome in result.outcomes:
        objective = session.cost_model.objective(
            outcome.evaluation, outcome.lowered.network
        )
        outcomes.append(
            FailureOutcome(
                failed_pair=outcome.scenario.pairs[0],
                phi_high=objective.primary,
                phi_low=objective.secondary,
                max_utilization=outcome.evaluation.max_utilization,
                disconnected=outcome.disconnected,
                lost_demand=outcome.lost_demand,
            )
        )
    return RobustnessReport(baseline=baseline, outcomes=tuple(outcomes))


def failure_sweep(
    net: Network,
    high_weights: Sequence[int],
    low_weights: Sequence[int],
    high_traffic: TrafficMatrix,
    low_traffic: TrafficMatrix,
) -> RobustnessReport:
    """Evaluate a weight setting under every single-adjacency failure.

    Legacy entry point: builds a load-mode :class:`~repro.api.Session`
    around the inputs and delegates to :func:`failure_sweep_session`.

    Args:
        net: The intact network.
        high_weights: Weights of the high-priority topology.
        low_weights: Weights of the low-priority topology (same vector
            object or equal array for STR).
        high_traffic: High-priority traffic matrix.
        low_traffic: Low-priority traffic matrix.

    Returns:
        A :class:`RobustnessReport` with the baseline and all failure
        outcomes, ordered by failed adjacency.
    """
    from repro.api.session import Session

    session = Session(net, high_traffic, low_traffic, cost_model="load")
    session.set_weights(high_weights, low_weights)
    return failure_sweep_session(session)


# ----------------------------------------------------------------------
# General scenario sweeps (per-class degradation)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioRobustnessReport:
    """Degradation of one weight setting across a mixed scenario sweep.

    Attributes:
        baseline_primary: Primary objective component on the intact
            network (``Phi_H`` in load mode, ``Lambda`` in SLA mode).
        baseline_secondary: Secondary component (``Phi_L``).
        classes: Per-scenario-class summaries, scored through the same
            cost model as the baseline (so degradation factors compare
            like with like even under the fortz/joint models).
        sweep: The underlying batched sweep result.
    """

    baseline_primary: float
    baseline_secondary: float
    classes: dict[str, "ScenarioClassSummary"]
    sweep: "SweepResult"

    @property
    def outcomes(self):
        return self.sweep.outcomes

    def by_class(self):
        """Per-scenario-class worst/mean summaries, keyed by kind."""
        return self.classes

    def degradation_by_class(self) -> dict[str, float]:
        """Worst secondary-cost degradation factor per scenario class."""
        if self.baseline_secondary <= 0:
            return {kind: 1.0 for kind in self.by_class()}
        return {
            kind: summary.worst_secondary / self.baseline_secondary
            for kind, summary in self.by_class().items()
        }

    def format(self) -> str:
        """A per-class degradation table (figures and CLI reports)."""
        lines = [
            f"scenario sweep — {len(self.outcomes)} scenarios, "
            f"baseline <{self.baseline_primary:.4g}, {self.baseline_secondary:.4g}>"
        ]
        for kind, s in self.by_class().items():
            lines.append(
                f"  {kind:8} n={s.scenarios:<4} disconnected={s.disconnected:<3} "
                f"worst_secondary={s.worst_secondary:.4g} "
                f"mean_secondary={s.mean_secondary:.4g} "
                f"worst_util={s.worst_max_utilization:.3f}"
            )
        return "\n".join(lines)


def scenario_sweep_session(
    session: "Session", scenarios: Iterable["Scenario"]
) -> ScenarioRobustnessReport:
    """Sweep arbitrary scenarios and fold per-class degradation metrics.

    Baseline and per-class statistics are all scored through the
    session's cost model — never the evaluations' native objectives —
    so worst/mean/degradation figures stay internally consistent under
    every registered model.

    Args:
        session: A session with a pinned baseline weight setting.
        scenarios: Scenarios (or a :class:`~repro.scenarios.ScenarioSet`)
            to evaluate; mix classes freely.
    """
    from repro.scenarios.batch import ScenarioClassSummary

    result = session.sweep(scenarios)
    base = session.cost_model.objective(result.baseline, session.network)

    grouped: dict[str, list] = {}
    for outcome in result.outcomes:
        grouped.setdefault(outcome.kind, []).append(outcome)
    classes = {}
    for kind in sorted(grouped):
        outcomes = grouped[kind]
        connected = [o for o in outcomes if not o.disconnected]
        scored = [
            session.cost_model.objective(o.evaluation, o.lowered.network)
            for o in connected
        ]
        primaries = [s.primary for s in scored]
        secondaries = [s.secondary for s in scored]
        classes[kind] = ScenarioClassSummary(
            kind=kind,
            scenarios=len(outcomes),
            disconnected=len(outcomes) - len(connected),
            worst_primary=max(primaries) if primaries else base.primary,
            mean_primary=float(np.mean(primaries)) if primaries else base.primary,
            worst_secondary=max(secondaries) if secondaries else base.secondary,
            mean_secondary=(
                float(np.mean(secondaries)) if secondaries else base.secondary
            ),
            worst_max_utilization=max(
                (o.evaluation.max_utilization for o in connected),
                default=result.baseline.max_utilization,
            ),
        )
    return ScenarioRobustnessReport(
        baseline_primary=base.primary,
        baseline_secondary=base.secondary,
        classes=classes,
        sweep=result,
    )


# ----------------------------------------------------------------------
# Combinatorial space sweeps (streamed aggregation)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SpaceRobustnessReport:
    """Degradation of one weight setting across a combinatorial space.

    The space-sweep counterpart of :class:`ScenarioRobustnessReport`:
    instead of per-outcome rows it carries the streamed
    percentile/CVaR/worst-case aggregate — the space ("all 2-link
    failures") is never materialized.  Scored through the session's
    cost model like every other robustness report.
    """

    result: "SpaceSweepResult"

    @property
    def space(self) -> str:
        return self.result.space

    @property
    def aggregate(self):
        return self.result.aggregate

    def degradation_factor(self) -> float:
        """Worst secondary cost over the baseline secondary cost."""
        if self.result.baseline_secondary <= 0:
            return 1.0
        return (
            self.result.aggregate.secondary.worst
            / self.result.baseline_secondary
        )

    def format(self) -> str:
        """A compact aggregate table (CLI reports)."""
        r = self.result
        lines = [
            f"space sweep {r.space} — {r.scenarios} scenarios "
            f"({r.evaluated} evaluated, {r.pruned} pruned, "
            f"{r.disconnected} disconnected), "
            f"baseline <{r.baseline_primary:.4g}, {r.baseline_secondary:.4g}>"
        ]
        for label, metric in (
            ("primary", r.aggregate.primary),
            ("secondary", r.aggregate.secondary),
            ("max_util", r.aggregate.max_utilization),
        ):
            pct = " ".join(
                f"p{level:g}={value:.4g}" for level, value in metric.percentiles
            )
            lines.append(
                f"  {label:9} worst={metric.worst:.4g} mean={metric.mean:.4g} "
                f"{pct} cvar={metric.cvar:.4g}"
            )
        return "\n".join(lines)


def space_sweep_session(
    session: "Session", space, **kwargs
) -> SpaceRobustnessReport:
    """Stream a combinatorial scenario space and fold robustness metrics.

    Args:
        session: A session with a pinned baseline weight setting.
        space: A :class:`~repro.scenarios.ScenarioSpace` or a spec string
            such as ``"space:all-link-2"``.
        **kwargs: Passed to :meth:`repro.api.Session.sweep_space`
            (``prune``, ``percentiles``, ``cvar_alpha``, ...).
    """
    return SpaceRobustnessReport(result=session.sweep_space(space, **kwargs))
