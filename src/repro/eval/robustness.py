"""Failure robustness of weight settings (single-adjacency failure sweep).

A weight setting tuned for the intact network keeps being used after a
link failure — OSPF simply recomputes shortest paths over the survivors.
This module evaluates how STR and DTR weight settings degrade across all
single-adjacency failures, the robustness criterion of Nucci et al. [5]
and a natural companion to the paper's MTR deployment argument.

The sweep itself runs through the :mod:`repro.api` facade: each scenario
is one :meth:`~repro.api.Session.under_failure` query, so the same code
path serves batch robustness records and interactive
``repro-dtr whatif --failure`` queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.lexicographic import LexCost
from repro.network.failures import single_failure_scenarios
from repro.network.graph import Network
from repro.routing.spf import RoutingError
from repro.traffic.matrix import TrafficMatrix

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.api.queries import WhatIfResult
    from repro.api.session import Session


@dataclass(frozen=True)
class FailureOutcome:
    """Cost of one weight setting under one failure scenario."""

    failed_pair: tuple[int, int]
    phi_high: float
    phi_low: float
    max_utilization: float

    @property
    def objective(self) -> LexCost:
        """Lexicographic cost under this failure."""
        return LexCost(self.phi_high, self.phi_low)


@dataclass(frozen=True)
class RobustnessReport:
    """Aggregate of a full single-failure sweep for one weight setting.

    Attributes:
        baseline: Cost on the intact network.
        outcomes: Per-failure costs (connected scenarios only).
        skipped_disconnecting: Adjacencies whose failure disconnects the
            network and were therefore skipped.
    """

    baseline: FailureOutcome
    outcomes: tuple[FailureOutcome, ...]
    skipped_disconnecting: int

    @property
    def worst_phi_low(self) -> float:
        """Worst low-priority cost across failures."""
        values = [o.phi_low for o in self.outcomes]
        return max(values) if values else self.baseline.phi_low

    @property
    def worst_phi_high(self) -> float:
        """Worst high-priority cost across failures."""
        values = [o.phi_high for o in self.outcomes]
        return max(values) if values else self.baseline.phi_high

    @property
    def mean_phi_low(self) -> float:
        """Mean low-priority cost across failures."""
        values = [o.phi_low for o in self.outcomes]
        return float(np.mean(values)) if values else self.baseline.phi_low

    @property
    def mean_phi_high(self) -> float:
        """Mean high-priority cost across failures."""
        values = [o.phi_high for o in self.outcomes]
        return float(np.mean(values)) if values else self.baseline.phi_high

    def degradation_factor(self) -> float:
        """Worst-case over baseline low-priority cost ratio."""
        if self.baseline.phi_low <= 0:
            return 1.0
        return self.worst_phi_low / self.baseline.phi_low


def _outcome(query: "WhatIfResult", failed_pair: tuple[int, int]) -> FailureOutcome:
    """Fold one ``under_failure`` query into a sweep row."""
    evaluation = query.variant
    return FailureOutcome(
        failed_pair=failed_pair,
        phi_high=query.variant_objective.primary,
        phi_low=query.variant_objective.secondary,
        max_utilization=evaluation.max_utilization,
    )


def failure_sweep_session(session: "Session") -> RobustnessReport:
    """Evaluate a session's baseline weights under every single failure.

    Weight vectors are *not* re-optimized per failure: survivors keep
    their weights, exactly as deployed OSPF/MT-OSPF would.  The baseline
    setting is whatever the session adopted (an ``optimize`` result or
    an explicit ``set_weights``).

    Args:
        session: A session with a pinned baseline weight setting.

    Returns:
        A :class:`RobustnessReport` with the baseline and all connected
        failure outcomes, ordered by failed adjacency.
    """
    net = session.network
    baseline = _outcome(session.under_failure(None), (-1, -1))
    outcomes = []
    total_pairs = len(net.duplex_pairs())
    for scenario in single_failure_scenarios(net, require_connected=True):
        try:
            outcomes.append(
                _outcome(session.under_failure(scenario), scenario.failed_pair)
            )
        except RoutingError:
            continue
    return RobustnessReport(
        baseline=baseline,
        outcomes=tuple(outcomes),
        skipped_disconnecting=total_pairs - len(outcomes),
    )


def failure_sweep(
    net: Network,
    high_weights: Sequence[int],
    low_weights: Sequence[int],
    high_traffic: TrafficMatrix,
    low_traffic: TrafficMatrix,
) -> RobustnessReport:
    """Evaluate a weight setting under every single-adjacency failure.

    Legacy entry point: builds a load-mode :class:`~repro.api.Session`
    around the inputs and delegates to :func:`failure_sweep_session`.

    Args:
        net: The intact network.
        high_weights: Weights of the high-priority topology.
        low_weights: Weights of the low-priority topology (same vector
            object or equal array for STR).
        high_traffic: High-priority traffic matrix.
        low_traffic: Low-priority traffic matrix.

    Returns:
        A :class:`RobustnessReport` with the baseline and all connected
        failure outcomes, ordered by failed adjacency.
    """
    from repro.api.session import Session

    session = Session(net, high_traffic, low_traffic, cost_model="load")
    session.set_weights(high_weights, low_weights)
    return failure_sweep_session(session)
