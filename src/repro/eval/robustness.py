"""Failure robustness of weight settings (single-adjacency failure sweep).

A weight setting tuned for the intact network keeps being used after a
link failure — OSPF simply recomputes shortest paths over the survivors.
This module evaluates how STR and DTR weight settings degrade across all
single-adjacency failures, the robustness criterion of Nucci et al. [5]
and a natural companion to the paper's MTR deployment argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.lexicographic import LexCost
from repro.costs.load_cost import evaluate_load_cost
from repro.network.failures import FailureScenario, single_failure_scenarios
from repro.network.graph import Network
from repro.routing.spf import RoutingError
from repro.routing.state import Routing
from repro.traffic.matrix import TrafficMatrix


@dataclass(frozen=True)
class FailureOutcome:
    """Cost of one weight setting under one failure scenario."""

    failed_pair: tuple[int, int]
    phi_high: float
    phi_low: float
    max_utilization: float

    @property
    def objective(self) -> LexCost:
        """Lexicographic cost under this failure."""
        return LexCost(self.phi_high, self.phi_low)


@dataclass(frozen=True)
class RobustnessReport:
    """Aggregate of a full single-failure sweep for one weight setting.

    Attributes:
        baseline: Cost on the intact network.
        outcomes: Per-failure costs (connected scenarios only).
        skipped_disconnecting: Adjacencies whose failure disconnects the
            network and were therefore skipped.
    """

    baseline: FailureOutcome
    outcomes: tuple[FailureOutcome, ...]
    skipped_disconnecting: int

    @property
    def worst_phi_low(self) -> float:
        """Worst low-priority cost across failures."""
        values = [o.phi_low for o in self.outcomes]
        return max(values) if values else self.baseline.phi_low

    @property
    def worst_phi_high(self) -> float:
        """Worst high-priority cost across failures."""
        values = [o.phi_high for o in self.outcomes]
        return max(values) if values else self.baseline.phi_high

    @property
    def mean_phi_low(self) -> float:
        """Mean low-priority cost across failures."""
        values = [o.phi_low for o in self.outcomes]
        return float(np.mean(values)) if values else self.baseline.phi_low

    @property
    def mean_phi_high(self) -> float:
        """Mean high-priority cost across failures."""
        values = [o.phi_high for o in self.outcomes]
        return float(np.mean(values)) if values else self.baseline.phi_high

    def degradation_factor(self) -> float:
        """Worst-case over baseline low-priority cost ratio."""
        if self.baseline.phi_low <= 0:
            return 1.0
        return self.worst_phi_low / self.baseline.phi_low


def _evaluate_scenario(
    net: Network,
    scenario: Optional[FailureScenario],
    high_weights: Sequence[int],
    low_weights: Sequence[int],
    high_traffic: TrafficMatrix,
    low_traffic: TrafficMatrix,
) -> FailureOutcome:
    if scenario is None:
        target_net = net
        wh = np.asarray(high_weights)
        wl = np.asarray(low_weights)
        failed_pair = (-1, -1)
    else:
        target_net = scenario.network
        wh = scenario.project_weights(high_weights)
        wl = scenario.project_weights(low_weights)
        failed_pair = scenario.failed_pair
    high_routing = Routing(target_net, wh)
    low_routing = high_routing if np.array_equal(wh, wl) else Routing(target_net, wl)
    evaluation = evaluate_load_cost(
        target_net, high_routing, low_routing, high_traffic, low_traffic
    )
    return FailureOutcome(
        failed_pair=failed_pair,
        phi_high=evaluation.phi_high,
        phi_low=evaluation.phi_low,
        max_utilization=evaluation.max_utilization,
    )


def failure_sweep(
    net: Network,
    high_weights: Sequence[int],
    low_weights: Sequence[int],
    high_traffic: TrafficMatrix,
    low_traffic: TrafficMatrix,
) -> RobustnessReport:
    """Evaluate a weight setting under every single-adjacency failure.

    Weight vectors are *not* re-optimized per failure: survivors keep
    their weights, exactly as deployed OSPF/MT-OSPF would.

    Args:
        net: The intact network.
        high_weights: Weights of the high-priority topology.
        low_weights: Weights of the low-priority topology (same vector
            object or equal array for STR).
        high_traffic: High-priority traffic matrix.
        low_traffic: Low-priority traffic matrix.

    Returns:
        A :class:`RobustnessReport` with the baseline and all connected
        failure outcomes, ordered by failed adjacency.
    """
    baseline = _evaluate_scenario(
        net, None, high_weights, low_weights, high_traffic, low_traffic
    )
    outcomes = []
    total_pairs = len(net.duplex_pairs())
    for scenario in single_failure_scenarios(net, require_connected=True):
        try:
            outcomes.append(
                _evaluate_scenario(
                    net, scenario, high_weights, low_weights, high_traffic, low_traffic
                )
            )
        except RoutingError:
            continue
    return RobustnessReport(
        baseline=baseline,
        outcomes=tuple(outcomes),
        skipped_disconnecting=total_pairs - len(outcomes),
    )
