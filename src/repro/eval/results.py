"""JSON serialization of experiment results.

``to_jsonable`` / ``save_result`` convert result dataclasses to plain
JSON types; ``load_result`` is the inverse at the JSON level (the
campaign store uses the pair for its on-disk records).  Unserializable
values raise instead of silently degrading to ``repr()`` — a record that
cannot round-trip is a bug at the call site, not something to paper over
in the archive.
"""

from __future__ import annotations

import csv
import dataclasses
import io
import json
from pathlib import Path
from typing import Any, Iterable, Sequence, Union

import numpy as np

from repro.core.lexicographic import LexCost
from repro.ioutil import atomic_write_json, atomic_write_text


def to_jsonable(value: Any) -> Any:
    """Recursively convert results (dataclasses, numpy, LexCost) to JSON types.

    Raises:
        TypeError: if ``value`` (or anything nested in it) has no faithful
            JSON representation.
    """
    if isinstance(value, LexCost):
        return list(value.values)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: to_jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {_key(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [to_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(
        f"cannot serialize {type(value).__name__} value {value!r} to JSON; "
        "convert it to plain types (or a dataclass of them) first"
    )


def canonical_dumps(value: Any) -> str:
    """Serialize to a canonical JSON string: sorted keys, fixed separators.

    Two equal values always produce byte-identical text, regardless of
    construction order — the property the campaign store's
    parallel-vs-serial bit-identity contract rests on.
    """
    return json.dumps(to_jsonable(value), sort_keys=True, indent=2)


def save_result(result: Any, path: Union[str, Path]) -> None:
    """Write any result dataclass to ``path`` as pretty-printed JSON."""
    atomic_write_json(path, to_jsonable(result), indent=2)


def save_csv(
    path: Union[str, Path], headers: Sequence[str], rows: Iterable[Sequence[Any]]
) -> int:
    """Write one results table as CSV and return the number of data rows.

    Values pass through :func:`to_jsonable` first, so numpy scalars and
    ``LexCost`` cells serialize faithfully (a ``LexCost`` becomes its
    JSON list form); anything unserializable raises, exactly like the
    JSON writers.
    """
    buffer = io.StringIO(newline="")
    writer = csv.writer(buffer)
    writer.writerow(list(headers))
    count = 0
    for row in rows:
        cells = [to_jsonable(cell) for cell in row]
        if len(cells) != len(headers):
            raise ValueError(
                f"CSV row has {len(cells)} cells, expected {len(headers)}"
            )
        writer.writerow(cells)
        count += 1
    atomic_write_text(path, buffer.getvalue())
    return count


def load_result(path: Union[str, Path]) -> Any:
    """Read back a JSON document written by :func:`save_result`.

    The inverse at the JSON level: dataclasses come back as dicts, numpy
    arrays as lists, ``LexCost`` as a two-element list.
    """
    return json.loads(Path(path).read_text())


def _key(key: Any) -> str:
    if isinstance(key, tuple):
        return ",".join(str(k) for k in key)
    return str(key)
