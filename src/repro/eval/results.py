"""JSON serialization of experiment results."""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Union

import numpy as np

from repro.core.lexicographic import LexCost


def to_jsonable(value: Any) -> Any:
    """Recursively convert results (dataclasses, numpy, LexCost) to JSON types."""
    if isinstance(value, LexCost):
        return list(value.values)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: to_jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {_key(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [to_jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def save_result(result: Any, path: Union[str, Path]) -> None:
    """Write any result dataclass to ``path`` as pretty-printed JSON."""
    Path(path).write_text(json.dumps(to_jsonable(result), indent=2))


def _key(key: Any) -> str:
    if isinstance(key, tuple):
        return ",".join(str(k) for k in key)
    return str(key)
