"""End-to-end STR vs DTR comparison experiments (paper Section 5)."""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Iterable, Optional

from repro.core.dtr_search import DtrResult
from repro.determinism import derive_rng as _derive_rng
from repro.core.evaluator import LOAD_MODE, SLA_MODE, DualTopologyEvaluator, Evaluation
from repro.core.progress import ProgressFn
from repro.core.search_params import SearchParams
from repro.core.str_search import StrResult
from repro.costs.sla import SlaParams
from repro.eval.metrics import safe_ratio
from repro.network.graph import Network
from repro.network.topology_isp import isp_topology
from repro.network.topology_powerlaw import powerlaw_topology
from repro.network.topology_random import random_topology
from repro.traffic.gravity import gravity_traffic_matrix
from repro.traffic.highpriority import (
    HighPriorityTraffic,
    random_high_priority,
    sink_high_priority,
)
from repro.traffic.matrix import TrafficMatrix
from repro.traffic.scaling import scale_to_utilization

RANDOM_TOPOLOGY = "random"
POWERLAW_TOPOLOGY = "powerlaw"
ISP_TOPOLOGY = "isp"

RANDOM_HIGH_MODEL = "random"
SINK_HIGH_MODEL = "sink"


# Canonical home is repro.determinism; re-exported here because session,
# campaign, and the test suites historically import it from this module.
derive_rng = _derive_rng


@dataclass(frozen=True)
class ExperimentConfig:
    """Configuration of one STR-vs-DTR comparison.

    Defaults mirror the paper's base configuration: 30 % high-priority
    volume (``f``), 10 % high-priority pair density (``k``), random
    high-priority model, load-based cost function.  ``incremental``
    selects the evaluator's incremental-SPF delta path (default) or full
    per-neighbor recomputation.
    """

    topology: str = RANDOM_TOPOLOGY
    mode: str = LOAD_MODE
    target_utilization: float = 0.6
    high_fraction: float = 0.30
    high_density: float = 0.10
    high_model: str = RANDOM_HIGH_MODEL
    sink_count: int = 3
    client_count: int = 9
    sink_placement: str = "uniform"
    sla_params: SlaParams = field(default_factory=SlaParams)
    search_params: SearchParams = field(default_factory=SearchParams)
    relaxation_epsilons: tuple[float, ...] = ()
    seed: int = 1
    incremental: bool = True

    def __post_init__(self) -> None:
        if self.topology not in (RANDOM_TOPOLOGY, POWERLAW_TOPOLOGY, ISP_TOPOLOGY):
            raise ValueError(f"unknown topology {self.topology!r}")
        if self.mode not in (LOAD_MODE, SLA_MODE):
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.high_model not in (RANDOM_HIGH_MODEL, SINK_HIGH_MODEL):
            raise ValueError(f"unknown high-priority model {self.high_model!r}")
        if self.target_utilization <= 0:
            raise ValueError("target_utilization must be positive")


@dataclass
class ComparisonResult:
    """Outcome of one STR-vs-DTR comparison.

    ``ratio_high`` and ``ratio_low`` are the paper's ``R_H`` and ``R_L``:
    STR cost divided by DTR cost, per class.
    """

    config: ExperimentConfig
    str_result: StrResult
    dtr_result: DtrResult
    str_evaluation: Evaluation
    dtr_evaluation: Evaluation
    high_traffic: TrafficMatrix
    low_traffic: TrafficMatrix

    @property
    def ratio_high(self) -> float:
        """``R_H``: STR high-priority cost over DTR high-priority cost."""
        return safe_ratio(
            self.str_evaluation.objective.primary, self.dtr_evaluation.objective.primary
        )

    @property
    def ratio_low(self) -> float:
        """``R_L``: STR low-priority cost over DTR low-priority cost."""
        return safe_ratio(self.str_evaluation.phi_low, self.dtr_evaluation.phi_low)

    def relaxed_ratio_low(self, epsilon: float) -> float:
        """``R_L,eps``: relaxed-STR low-priority cost over DTR low-priority cost."""
        solution = self.str_result.relaxed.get(epsilon)
        if solution is None:
            raise KeyError(f"no relaxed solution tracked for epsilon={epsilon}")
        return safe_ratio(solution.phi_low, self.dtr_evaluation.phi_low)

    @property
    def average_utilization(self) -> float:
        """Measured mean link utilization under the STR solution (the paper's AD)."""
        return self.str_evaluation.average_utilization


def build_network(topology: str, seed: int) -> Network:
    """Construct one of the paper's three topology families.

    Random and power-law instances are seeded; the ISP backbone is fixed.
    """
    rng = random.Random(seed)
    if topology == RANDOM_TOPOLOGY:
        return random_topology(num_nodes=30, num_directed_links=150, rng=rng)
    if topology == POWERLAW_TOPOLOGY:
        return powerlaw_topology(num_nodes=30, attachment=3, rng=rng)
    if topology == ISP_TOPOLOGY:
        return isp_topology()
    raise ValueError(f"unknown topology {topology!r}")


def build_traffic(
    net: Network, config: ExperimentConfig, rng: random.Random
) -> tuple[TrafficMatrix, TrafficMatrix, HighPriorityTraffic]:
    """Generate, then jointly scale, the two traffic matrices of a config.

    Returns:
        ``(high_matrix, low_matrix, high_traffic_metadata)`` scaled so the
        hop-count-routed mean utilization equals the config target.
    """
    low = gravity_traffic_matrix(net.num_nodes, rng)
    if config.high_model == RANDOM_HIGH_MODEL:
        high_traffic = random_high_priority(
            low, config.high_density, config.high_fraction, rng
        )
    else:
        high_traffic = sink_high_priority(
            net,
            low,
            config.high_fraction,
            num_sinks=config.sink_count,
            num_clients=config.client_count,
            placement=config.sink_placement,
            rng=rng,
        )
    high_scaled, low_scaled = scale_to_utilization(
        net, high_traffic.matrix, low, config.target_utilization
    )
    return high_scaled, low_scaled, high_traffic


def make_evaluator(
    net: Network, high: TrafficMatrix, low: TrafficMatrix, config: ExperimentConfig
) -> DualTopologyEvaluator:
    """Build the cost evaluator matching a config's mode."""
    return DualTopologyEvaluator(
        net,
        high,
        low,
        mode=config.mode,
        sla_params=config.sla_params,
        incremental=config.incremental,
    )


def run_comparison(
    config: ExperimentConfig, progress: Optional["ProgressFn"] = None
) -> ComparisonResult:
    """Run STR and DTR on one configuration and compare their costs.

    Both searches run through the :mod:`repro.api` strategy registry on
    one shared :class:`~repro.api.Session`.  The STR baseline runs
    first; the DTR search is seeded with the STR solution, so the DTR
    result can never be lexicographically worse — matching the paper's
    consistent ``R_H ≈ 1``, ``R_L >= 1`` findings.

    All randomness is drawn from per-config streams derived by
    :func:`derive_rng`: the traffic matrices depend only on
    ``(seed, "traffic")`` and the searches only on ``(seed, "search")``
    (plus the traffic they route), so the result is a pure function of
    ``config`` — the property the parallel campaign runner relies on for
    its serial-vs-parallel bit-identity guarantee.

    ``progress``, if given, receives ``(phase, iteration, total)``
    heartbeats from both searches.
    """
    from repro.api import Session, optimize

    session = Session.from_config(config)
    rng_search = session.derive_rng("search")
    str_result = optimize(
        session,
        strategy="str",
        params=config.search_params,
        rng=rng_search,
        relaxation_epsilons=config.relaxation_epsilons,
        progress=progress,
    )
    dtr_result = optimize(
        session,
        strategy="dtr",
        params=config.search_params,
        rng=rng_search,
        initial_high=str_result.weights,
        initial_low=str_result.weights,
        progress=progress,
    )
    return ComparisonResult(
        config=config,
        str_result=str_result.raw,
        dtr_result=dtr_result.raw,
        str_evaluation=str_result.evaluation,
        dtr_evaluation=dtr_result.evaluation,
        high_traffic=session.high_traffic,
        low_traffic=session.low_traffic,
    )


def sweep_utilization(
    config: ExperimentConfig, targets: Iterable[float]
) -> list[ComparisonResult]:
    """Run :func:`run_comparison` across a range of target utilizations."""
    return [
        run_comparison(replace(config, target_utilization=float(target)))
        for target in targets
    ]


def scaled_config(config: ExperimentConfig, scale: float) -> ExperimentConfig:
    """A copy of ``config`` with proportionally scaled search budgets."""
    return replace(config, search_params=SearchParams.scaled(scale, config.search_params))
