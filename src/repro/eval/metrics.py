"""Metrics shared by the figure reproductions."""

from __future__ import annotations

import numpy as np

_TINY = 1e-9


def safe_ratio(numerator: float, denominator: float) -> float:
    """Ratio that treats 0/0 as 1 (both schemes met the objective perfectly).

    The paper's H-cost ratio under the SLA objective is frequently 0/0 —
    neither STR nor DTR violates any SLA — which it reports as ≈ 1.
    """
    if abs(denominator) <= _TINY:
        return 1.0 if abs(numerator) <= _TINY else float("inf")
    return numerator / denominator


def utilization_histogram(
    utilization: np.ndarray, bin_width: float = 0.1, max_utilization: float = None
) -> tuple[np.ndarray, np.ndarray]:
    """Histogram of per-link utilization (the paper's Fig. 3 panels).

    Args:
        utilization: Per-link utilization values.
        bin_width: Histogram bin width (paper uses ~0.1 wide bars).
        max_utilization: Upper edge of the last bin; defaults to covering
            the data (at least 1.0).

    Returns:
        ``(bin_edges, counts)`` where ``bin_edges`` has one more entry than
        ``counts``.
    """
    utilization = np.asarray(utilization, dtype=float)
    if bin_width <= 0:
        raise ValueError(f"bin_width must be positive, got {bin_width}")
    top = max_utilization if max_utilization is not None else max(1.0, float(utilization.max()))
    num_bins = int(np.ceil(top / bin_width + _TINY)) or 1
    edges = np.arange(num_bins + 1) * bin_width
    counts, _ = np.histogram(utilization, bins=edges)
    return edges, counts


def sorted_high_utilization(high_loads: np.ndarray, capacities: np.ndarray) -> np.ndarray:
    """Per-link high-priority utilization sorted descending (Fig. 6)."""
    high_loads = np.asarray(high_loads, dtype=float)
    capacities = np.asarray(capacities, dtype=float)
    if high_loads.shape != capacities.shape:
        raise ValueError("loads and capacities must have matching shapes")
    return np.sort(high_loads / capacities)[::-1]
