"""Parallel experiment campaigns with a persistent, resumable result store.

The paper's evaluation (Section 5) is a sweep: STR vs DTR across
topology families, cost modes, and grids of the high-priority fraction
``f`` and density ``k``, averaged over seeds.  This module runs such
sweeps as *campaigns*:

* a declarative :class:`CampaignSpec` expands to a deterministic list of
  :class:`~repro.eval.experiment.ExperimentConfig`,
* :func:`run_campaign` executes the configs serially or across a
  ``multiprocessing`` pool, writing each outcome as one JSON record into
  a content-addressed directory (``records/<config-hash>.json``),
* interrupted campaigns resume by skipping configs whose record already
  exists,
* :func:`aggregate_campaign` folds stored records into per-grid-point
  means that the figure runners consume without recomputing anything.

Determinism contract: a record is a pure function of its config (see
:func:`~repro.eval.experiment.run_comparison`), and records are
serialized canonically, so a ``workers=N`` campaign produces
byte-identical record files to the same campaign run serially — only the
completion *order* differs.  Workers report liveness by writing
heartbeat files (``heartbeats/<config-hash>.json``) through the search
progress hooks; heartbeats are transient and removed when a record
lands.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any, Callable, Iterator, Optional, Sequence, Union

from repro import obs
from repro.core.evaluator import LOAD_MODE, SLA_MODE
from repro.core.search_params import SearchParams
from repro.costs.sla import SlaParams
from repro.eval.ascii_plot import format_table
from repro.eval.experiment import (
    ComparisonResult,
    ExperimentConfig,
    build_network,
    run_comparison,
    scaled_config,
)
from repro.eval.results import canonical_dumps, load_result, to_jsonable
from repro.ioutil import atomic_write_text

RECORD_FORMAT = 2
SPEC_FILENAME = "spec.json"
RECORDS_DIRNAME = "records"
HEARTBEATS_DIRNAME = "heartbeats"

ProgressFn = Callable[[str, str], None]
"""Campaign progress callback ``(event, config_hash)``.

Events: ``"skip"`` (record already stored), ``"run"`` (config handed to
a worker), ``"done"`` (record written).
"""


# ----------------------------------------------------------------------
# Declarative sweep specification
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CampaignSpec:
    """A declarative sweep over the paper's experiment dimensions.

    The cartesian product ``topologies x modes x high_fractions x
    high_densities x target_utilizations x seeds`` expands to one
    :class:`ExperimentConfig` per point, in exactly that nesting order.
    ``scale`` shrinks every config's search budgets proportionally
    (`SearchParams.scaled`); ``failure_scenarios`` additionally sweeps
    each optimized weight setting across all single-adjacency failures
    and stores the degradation summary in the record.
    ``scenario_kinds`` generalizes that: each named kind (``"link"``,
    ``"node"``, ``"srlg"``, ``"surge"``, ``"scale"`` — see
    :mod:`repro.scenarios`) expands to its deterministic scenario grid
    over the record's topology, and the per-class degradation summary
    of both the STR and DTR settings lands in the record.
    ``scenario_spaces`` goes further still: each spec (e.g.
    ``"space:all-link-2"``) names a combinatorial scenario space that is
    swept lazily with dominance pruning, and only its streaming
    aggregate (worst / mean / percentiles / CVaR) lands in the record —
    the space itself is never materialized.
    """

    topologies: tuple[str, ...] = ("random",)
    modes: tuple[str, ...] = (LOAD_MODE,)
    high_fractions: tuple[float, ...] = (0.30,)
    high_densities: tuple[float, ...] = (0.10,)
    target_utilizations: tuple[float, ...] = (0.6,)
    seeds: tuple[int, ...] = (1,)
    high_model: str = "random"
    sink_placement: str = "uniform"
    relaxation_epsilons: tuple[float, ...] = ()
    sla_theta_ms: Optional[float] = None
    scale: float = 1.0
    failure_scenarios: bool = False
    scenario_kinds: tuple[str, ...] = ()
    scenario_spaces: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        # Normalize sequences to tuples so specs hash and compare by value
        # regardless of whether they were built from JSON lists.
        allowed_empty = ("relaxation_epsilons", "scenario_kinds", "scenario_spaces")
        for name in (
            "topologies",
            "modes",
            "high_fractions",
            "high_densities",
            "target_utilizations",
            "seeds",
            "relaxation_epsilons",
            "scenario_kinds",
            "scenario_spaces",
        ):
            value = tuple(getattr(self, name))
            if name not in allowed_empty and not value:
                raise ValueError(f"{name} must be non-empty")
            object.__setattr__(self, name, value)
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")
        if self.scenario_kinds:
            # Fail at spec time, not mid-campaign: every kind must be
            # registered AND enumerable (raises UnknownNameError or
            # ValueError listing the registered/enumerable alternatives).
            from repro.scenarios.spec import require_enumerable

            for kind_name in self.scenario_kinds:
                require_enumerable(kind_name)
        if self.scenario_spaces:
            # Same fail-fast contract for space specs: normalize each to
            # its canonical spelling (raises with the registered space
            # names or the kind's syntax help on a bad spec).
            from repro.scenarios.spec import canonical_space_spec

            object.__setattr__(
                self,
                "scenario_spaces",
                tuple(canonical_space_spec(s) for s in self.scenario_spaces),
            )

    def expand(self) -> list[ExperimentConfig]:
        """The sweep's configs, in deterministic nesting order."""
        sla_params = (
            SlaParams(theta_ms=float(self.sla_theta_ms))
            if self.sla_theta_ms is not None
            else SlaParams()
        )
        configs = []
        for topology in self.topologies:
            for mode in self.modes:
                for fraction in self.high_fractions:
                    for density in self.high_densities:
                        for target in self.target_utilizations:
                            for seed in self.seeds:
                                config = ExperimentConfig(
                                    topology=topology,
                                    mode=mode,
                                    target_utilization=float(target),
                                    high_fraction=float(fraction),
                                    high_density=float(density),
                                    high_model=self.high_model,
                                    sink_placement=self.sink_placement,
                                    relaxation_epsilons=self.relaxation_epsilons,
                                    sla_params=sla_params,
                                    seed=int(seed),
                                )
                                configs.append(scaled_config(config, self.scale))
        return configs

    @classmethod
    def from_jsonable(cls, data: dict) -> "CampaignSpec":
        """Rebuild a spec from a ``to_jsonable`` dict (e.g. a spec file)."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown campaign spec fields {sorted(unknown)}")
        return cls(**data)


def config_hash(config: ExperimentConfig) -> str:
    """Content hash of a config: the record filename in the store.

    SHA-256 over the canonical JSON of the config, truncated to 20 hex
    characters.  Stable across processes and interpreter runs (no
    ``hash()`` salting), and any change to any config field — including
    search budgets — changes the hash.
    """
    text = canonical_dumps(config)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:20]


def config_from_jsonable(data: dict) -> ExperimentConfig:
    """Inverse of ``to_jsonable`` for :class:`ExperimentConfig`."""
    data = dict(data)
    data["sla_params"] = SlaParams(**data.get("sla_params", {}))
    search = dict(data.get("search_params", {}))
    if "weight_steps" in search:
        search["weight_steps"] = tuple(search["weight_steps"])
    data["search_params"] = SearchParams(**search)
    data["relaxation_epsilons"] = tuple(data.get("relaxation_epsilons", ()))
    return ExperimentConfig(**data)


# ----------------------------------------------------------------------
# Record construction
# ----------------------------------------------------------------------
def build_record(
    config: ExperimentConfig,
    result: ComparisonResult,
    robustness: Optional[dict] = None,
    scenarios: Optional[dict] = None,
    spaces: Optional[dict] = None,
) -> dict:
    """One campaign record: the config plus everything aggregation needs.

    Deliberately a plain dict of JSON types — ``canonical_dumps`` of a
    record is the byte-identity unit of the store.
    """
    record: dict[str, Any] = {
        "format": RECORD_FORMAT,
        "config": to_jsonable(config),
        "metrics": {
            "ratio_high": result.ratio_high,
            "ratio_low": result.ratio_low,
            "measured_utilization": result.average_utilization,
            "str": {
                "objective": list(result.str_evaluation.objective.values),
                "phi_low": result.str_evaluation.phi_low,
                "max_utilization": result.str_evaluation.max_utilization,
                "evaluations": result.str_result.evaluations,
            },
            "dtr": {
                "objective": list(result.dtr_evaluation.objective.values),
                "phi_low": result.dtr_evaluation.phi_low,
                "max_utilization": result.dtr_evaluation.max_utilization,
                "evaluations": result.dtr_result.evaluations,
            },
        },
        "relaxed_ratio_low": {
            repr(eps): result.relaxed_ratio_low(eps)
            for eps in config.relaxation_epsilons
        },
        "weights": {
            "str": result.str_result.weights.tolist(),
            "dtr_high": result.dtr_result.high_weights.tolist(),
            "dtr_low": result.dtr_result.low_weights.tolist(),
        },
    }
    if config.mode == SLA_MODE:
        record["metrics"]["str"]["violations"] = result.str_evaluation.violations
        record["metrics"]["dtr"]["violations"] = result.dtr_evaluation.violations
    if robustness is not None:
        record["robustness"] = robustness
    if scenarios is not None:
        record["scenarios"] = scenarios
    if spaces is not None:
        record["scenario_spaces"] = spaces
    return record


def _failure_robustness(config: ExperimentConfig, result: ComparisonResult) -> dict:
    """Single-adjacency failure degradation of the STR and DTR settings."""
    from repro.api.session import Session
    from repro.eval.robustness import failure_sweep_session

    net = build_network(config.topology, config.seed)
    summaries = {}
    for label, high_w, low_w in (
        ("str", result.str_result.weights, result.str_result.weights),
        ("dtr", result.dtr_result.high_weights, result.dtr_result.low_weights),
    ):
        session = Session(
            net, result.high_traffic, result.low_traffic, cost_model="load"
        )
        session.set_weights(high_w, low_w)
        report = failure_sweep_session(session)
        summaries[label] = {
            "scenarios": len(report.outcomes),
            "skipped_disconnecting": report.disconnected_count,
            "worst_phi_high": report.worst_phi_high,
            "worst_phi_low": report.worst_phi_low,
            "mean_phi_low": report.mean_phi_low,
            "degradation_factor": report.degradation_factor(),
        }
    return summaries


def _scenario_robustness(
    config: ExperimentConfig,
    result: ComparisonResult,
    scenario_kinds: Sequence[str],
) -> dict:
    """Per-scenario-class degradation of the STR and DTR settings."""
    from repro.api.session import Session
    from repro.eval.robustness import scenario_sweep_session
    from repro.scenarios.spec import ScenarioSet

    net = build_network(config.topology, config.seed)
    grid = ScenarioSet.from_kinds(net, scenario_kinds)
    summaries: dict[str, Any] = {"kinds": sorted(scenario_kinds)}
    for label, high_w, low_w in (
        ("str", result.str_result.weights, result.str_result.weights),
        ("dtr", result.dtr_result.high_weights, result.dtr_result.low_weights),
    ):
        session = Session(
            net, result.high_traffic, result.low_traffic, cost_model="load"
        )
        session.set_weights(high_w, low_w)
        report = scenario_sweep_session(session, grid)
        degradation = report.degradation_by_class()
        summaries[label] = {
            "baseline_phi_high": report.baseline_primary,
            "baseline_phi_low": report.baseline_secondary,
            "classes": {
                kind: {
                    "scenarios": s.scenarios,
                    "disconnected": s.disconnected,
                    "worst_phi_high": s.worst_primary,
                    "mean_phi_high": s.mean_primary,
                    "worst_phi_low": s.worst_secondary,
                    "mean_phi_low": s.mean_secondary,
                    "worst_max_utilization": s.worst_max_utilization,
                    "degradation_factor": degradation[kind],
                }
                for kind, s in report.by_class().items()
            },
        }
    return summaries


def _space_robustness(
    config: ExperimentConfig,
    result: ComparisonResult,
    scenario_spaces: Sequence[str],
) -> dict:
    """Streaming scenario-space aggregates of the STR and DTR settings.

    One dominance-pruned lazy sweep per (setting, space); only the
    streaming aggregate lands in the record, so record size is
    independent of how many scenarios each space enumerates.
    """
    from repro.api.session import Session
    from repro.eval.robustness import space_sweep_session

    net = build_network(config.topology, config.seed)
    summaries: dict[str, Any] = {"spaces": sorted(scenario_spaces)}
    for label, high_w, low_w in (
        ("str", result.str_result.weights, result.str_result.weights),
        ("dtr", result.dtr_result.high_weights, result.dtr_result.low_weights),
    ):
        session = Session(
            net, result.high_traffic, result.low_traffic, cost_model="load"
        )
        session.set_weights(high_w, low_w)
        by_space = {}
        for spec in sorted(scenario_spaces):
            report = space_sweep_session(session, spec)
            sweep = report.result
            aggregate = sweep.aggregate
            by_space[spec] = {
                "scenarios": sweep.scenarios,
                "evaluated": sweep.evaluated,
                "pruned": sweep.pruned,
                "disconnected": sweep.disconnected,
                "baseline_primary": sweep.baseline_primary,
                "baseline_secondary": sweep.baseline_secondary,
                "worst_primary": aggregate.primary.worst,
                "worst_secondary": aggregate.secondary.worst,
                "mean_secondary": aggregate.secondary.mean,
                "cvar_secondary": aggregate.secondary.cvar,
                "worst_max_utilization": aggregate.max_utilization.worst,
                "degradation_factor": report.degradation_factor(),
            }
        summaries[label] = by_space
    return summaries


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------
class CampaignSpecMismatch(ValueError):
    """A campaign directory already holds a *different* spec."""


class CampaignStore:
    """A content-addressed campaign directory.

    Layout::

        <root>/spec.json                  the expanded spec (canonical JSON)
        <root>/records/<hash>.json        one record per completed config
        <root>/heartbeats/<hash>.json     transient worker liveness files
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    @property
    def spec_path(self) -> Path:
        return self.root / SPEC_FILENAME

    @property
    def records_dir(self) -> Path:
        return self.root / RECORDS_DIRNAME

    @property
    def heartbeats_dir(self) -> Path:
        return self.root / HEARTBEATS_DIRNAME

    # -- lifecycle -------------------------------------------------------
    def initialize(self, spec: CampaignSpec) -> None:
        """Create the directory layout and pin the spec.

        Re-initializing with the identical spec is a no-op (resume);
        a different spec raises :class:`CampaignSpecMismatch` rather than
        silently mixing two sweeps' records in one store.
        """
        self.records_dir.mkdir(parents=True, exist_ok=True)
        self.heartbeats_dir.mkdir(parents=True, exist_ok=True)
        text = canonical_dumps(spec)
        if self.spec_path.exists():
            if self.spec_path.read_text() != text:
                raise CampaignSpecMismatch(
                    f"{self.root} already holds a different campaign spec; "
                    "use a fresh directory or delete the old campaign"
                )
            return
        atomic_write_text(self.spec_path, text)

    def load_spec(self) -> CampaignSpec:
        """Read back the pinned spec.

        Raises:
            FileNotFoundError: if ``root`` is not an initialized campaign
                directory (no ``spec.json``).
        """
        if not self.spec_path.is_file():
            raise FileNotFoundError(
                f"{self.root} is not a campaign directory (no {SPEC_FILENAME}); "
                "run `repro-dtr campaign run` first or check the path"
            )
        return CampaignSpec.from_jsonable(load_result(self.spec_path))

    # -- records ---------------------------------------------------------
    def record_path(self, key: str) -> Path:
        return self.records_dir / f"{key}.json"

    def completed_keys(self) -> set[str]:
        """Hashes of all configs with a stored record."""
        if not self.records_dir.is_dir():
            return set()
        return {path.stem for path in self.records_dir.glob("*.json")}

    def write_record(self, key: str, record: dict) -> None:
        """Atomically write one record (tmp file + rename).

        A crashed or interrupted worker can never leave a truncated
        record behind — resume logic may trust every ``*.json`` present.
        """
        path = self.record_path(key)
        tmp = path.with_name(f".{key}.{os.getpid()}.tmp")
        tmp.write_text(canonical_dumps(record))
        os.replace(tmp, path)

    def load_record(self, key: str) -> dict:
        """Read one record back as a plain dict."""
        return load_result(self.record_path(key))

    def iter_records(self) -> Iterator[dict]:
        """All stored records, in sorted-hash (deterministic) order."""
        for path in sorted(self.records_dir.glob("*.json")):
            yield load_result(path)

    # -- heartbeats ------------------------------------------------------
    def write_heartbeat(self, key: str, payload: dict) -> None:
        path = self.heartbeats_dir / f"{key}.json"
        tmp = path.with_name(f".{key}.{os.getpid()}.tmp")
        tmp.write_text(canonical_dumps(payload))
        os.replace(tmp, path)

    def clear_heartbeat(self, key: str) -> None:
        try:
            (self.heartbeats_dir / f"{key}.json").unlink()
        except FileNotFoundError:
            pass

    def clear_all_heartbeats(self) -> None:
        """Remove every heartbeat file (crashed workers leave them behind)."""
        if not self.heartbeats_dir.is_dir():
            return
        for path in self.heartbeats_dir.glob("*.json"):
            try:
                path.unlink()
            except FileNotFoundError:
                pass

    def heartbeats(self) -> dict[str, dict]:
        """Live heartbeat payloads by config hash."""
        if not self.heartbeats_dir.is_dir():
            return {}
        found = {}
        for path in sorted(self.heartbeats_dir.glob("*.json")):
            try:
                found[path.stem] = load_result(path)
            except (OSError, ValueError):
                continue  # racing with a worker's os.replace/unlink
        return found

    def status(self) -> "CampaignStatus":
        """Progress of this campaign against its pinned spec.

        Heartbeats of already-completed configs are stale by definition
        (a crashed worker's leftovers) and are excluded.
        """
        spec = self.load_spec()
        keys = [config_hash(config) for config in spec.expand()]
        done = self.completed_keys()
        live = {k: v for k, v in self.heartbeats().items() if k not in done}
        return CampaignStatus(
            total=len(keys),
            completed=sum(1 for k in keys if k in done),
            pending=tuple(k for k in keys if k not in done),
            heartbeats=live,
        )


@dataclass(frozen=True)
class CampaignStatus:
    """Completion state of a campaign directory."""

    total: int
    completed: int
    pending: tuple[str, ...]
    heartbeats: dict[str, dict]

    def format(self) -> str:
        lines = [f"campaign: {self.completed}/{self.total} records complete"]
        for key, beat in self.heartbeats.items():
            lines.append(
                f"  running {key}: phase={beat.get('phase')} "
                f"iteration={beat.get('iteration')}/{beat.get('total')}"
            )
        if self.pending:
            lines.append(f"  {len(self.pending)} configs pending")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def _execute_config(
    root: str,
    config_data: dict,
    heartbeats: bool,
    failure_scenarios: bool,
    scenario_kinds: Sequence[str] = (),
    scenario_spaces: Sequence[str] = (),
) -> str:
    """Run one config and store its record; the multiprocessing task body.

    Takes only picklable JSON types and rebuilds everything inside the
    worker, so no RNG, evaluator, or network state ever crosses a process
    boundary.
    """
    store = CampaignStore(root)
    config = config_from_jsonable(config_data)
    key = config_hash(config)

    progress = None
    if heartbeats:
        heartbeat_count = obs.counter(
            "repro_campaign_heartbeats_total",
            "Worker heartbeat files written (liveness signal).",
        )

        def progress(phase: str, iteration: int, total: int) -> None:
            store.write_heartbeat(
                key,
                {"phase": phase, "iteration": iteration, "total": total,
                 "pid": os.getpid()},
            )
            heartbeat_count.inc()

    with obs.span("campaign.config", config=key):
        result = run_comparison(config, progress=progress)
    robustness = _failure_robustness(config, result) if failure_scenarios else None
    scenarios = (
        _scenario_robustness(config, result, scenario_kinds)
        if scenario_kinds
        else None
    )
    spaces = (
        _space_robustness(config, result, scenario_spaces)
        if scenario_spaces
        else None
    )
    store.write_record(
        key,
        build_record(
            config, result, robustness=robustness, scenarios=scenarios, spaces=spaces
        ),
    )
    store.clear_heartbeat(key)
    return key


@dataclass(frozen=True)
class CampaignRunSummary:
    """What one :func:`run_campaign` invocation did."""

    root: Path
    total: int
    skipped: int
    executed: int
    workers: int


def run_campaign(
    spec: CampaignSpec,
    root: Union[str, Path],
    workers: int = 1,
    progress: Optional[ProgressFn] = None,
    heartbeats: bool = True,
) -> CampaignRunSummary:
    """Execute (or resume) a campaign into ``root``.

    Expands ``spec``, skips every config whose record is already stored,
    and runs the rest — inline when ``workers <= 1``, otherwise across a
    spawn-context ``multiprocessing`` pool.  The spawn context is chosen
    deliberately: workers start from a fresh interpreter, so nothing —
    module-level RNG state included — can leak from the parent or between
    tasks, and the bit-identity contract holds on every platform.

    Records land independently and atomically, so interrupting a
    campaign (Ctrl-C, OOM, node failure) loses at most the in-flight
    configs; re-invoking with the same spec finishes the remainder.
    """
    store = CampaignStore(root)
    store.initialize(spec)
    store.clear_all_heartbeats()  # anything left from a prior run is stale
    configs = spec.expand()
    done = store.completed_keys()

    pending: list[tuple[str, dict]] = []
    skipped = 0
    for config in configs:
        key = config_hash(config)
        if key in done:
            skipped += 1
            if progress is not None:
                progress("skip", key)
        else:
            pending.append((key, to_jsonable(config)))

    failures = spec.failure_scenarios
    kinds = list(spec.scenario_kinds)
    space_specs = list(spec.scenario_spaces)
    if workers <= 1 or len(pending) <= 1:
        for key, config_data in pending:
            if progress is not None:
                progress("run", key)
            _execute_config(
                str(store.root), config_data, heartbeats, failures, kinds, space_specs
            )
            if progress is not None:
                progress("done", key)
    else:
        ctx = multiprocessing.get_context("spawn")
        tasks = [
            (str(store.root), config_data, heartbeats, failures, kinds, space_specs)
            for _, config_data in pending
        ]
        if progress is not None:
            for key, _ in pending:
                progress("run", key)
        with ctx.Pool(processes=min(workers, len(tasks))) as pool:
            for key in pool.imap_unordered(_execute_star, tasks):
                if progress is not None:
                    progress("done", key)

    return CampaignRunSummary(
        root=store.root,
        total=len(configs),
        skipped=skipped,
        executed=len(pending),
        workers=max(1, workers),
    )


def _execute_star(task: tuple[str, dict, bool, bool, list, list]) -> str:
    return _execute_config(*task)


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AggregatePoint:
    """Seed-averaged metrics at one sweep grid point."""

    topology: str
    mode: str
    high_fraction: float
    high_density: float
    target_utilization: float
    seeds: int
    measured_utilization: float
    ratio_high: float
    ratio_low: float
    ratio_low_min: float
    ratio_low_max: float


@dataclass(frozen=True)
class CampaignAggregate:
    """All grid points of a campaign, seed-averaged and ordered."""

    points: tuple[AggregatePoint, ...]
    records: int

    def select(
        self,
        topology: Optional[str] = None,
        mode: Optional[str] = None,
        high_fraction: Optional[float] = None,
        high_density: Optional[float] = None,
    ) -> tuple[AggregatePoint, ...]:
        """Grid points matching every given dimension, sweep-ordered."""
        out = []
        for p in self.points:
            if topology is not None and p.topology != topology:
                continue
            if mode is not None and p.mode != mode:
                continue
            if high_fraction is not None and p.high_fraction != high_fraction:
                continue
            if high_density is not None and p.high_density != high_density:
                continue
            out.append(p)
        return tuple(out)

    def format(self) -> str:
        header = f"campaign aggregate — {self.records} records, {len(self.points)} grid points"
        rows = [
            (
                p.topology,
                p.mode,
                p.high_fraction,
                p.high_density,
                p.target_utilization,
                p.seeds,
                p.measured_utilization,
                p.ratio_high,
                p.ratio_low,
            )
            for p in self.points
        ]
        body = format_table(
            ["topology", "mode", "f", "k", "target", "seeds", "AD", "R_H", "R_L"],
            rows,
        )
        return f"{header}\n{body}"


def aggregate_campaign(store: Union[CampaignStore, str, Path]) -> CampaignAggregate:
    """Fold every stored record into seed-averaged grid points.

    Grouping key: ``(topology, mode, f, k, target_utilization)``; every
    other config field (seed aside) is constant within a campaign by
    construction.  Points come back sorted by that key, so aggregation
    output is independent of record completion order.

    Raises:
        FileNotFoundError: if ``store`` is not an initialized campaign
            directory — a typoed path must not masquerade as a valid,
            empty campaign.
    """
    if not isinstance(store, CampaignStore):
        store = CampaignStore(store)
    store.load_spec()  # existence check: fail loudly on a wrong path
    groups: dict[tuple, list[dict]] = {}
    records = 0
    for record in store.iter_records():
        records += 1
        config = record["config"]
        key = (
            config["topology"],
            config["mode"],
            float(config["high_fraction"]),
            float(config["high_density"]),
            float(config["target_utilization"]),
        )
        groups.setdefault(key, []).append(record["metrics"])

    points = []
    for key in sorted(groups):
        metrics = groups[key]
        ratio_lows = [m["ratio_low"] for m in metrics]
        points.append(
            AggregatePoint(
                topology=key[0],
                mode=key[1],
                high_fraction=key[2],
                high_density=key[3],
                target_utilization=key[4],
                seeds=len(metrics),
                measured_utilization=_mean(
                    [m["measured_utilization"] for m in metrics]
                ),
                ratio_high=_mean([m["ratio_high"] for m in metrics]),
                ratio_low=_mean(ratio_lows),
                ratio_low_min=min(ratio_lows),
                ratio_low_max=max(ratio_lows),
            )
        )
    return CampaignAggregate(points=tuple(points), records=records)


def _mean(values: Sequence[float]) -> float:
    return float(sum(values) / len(values))
