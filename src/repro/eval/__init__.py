"""Evaluation harness: STR-vs-DTR experiments and figure/table reproduction."""

from repro.eval.experiment import (
    ComparisonResult,
    ExperimentConfig,
    build_network,
    build_traffic,
    run_comparison,
)
from repro.eval.metrics import (
    safe_ratio,
    sorted_high_utilization,
    utilization_histogram,
)
from repro.eval.campaign import (
    CampaignAggregate,
    CampaignSpec,
    CampaignStore,
    aggregate_campaign,
    config_hash,
    run_campaign,
)
from repro.eval.convergence import ConvergenceTrace, relative_gap, trace_from_history
from repro.eval.drift import DriftReport, drift_sweep
from repro.eval.robustness import (
    RobustnessReport,
    ScenarioRobustnessReport,
    failure_sweep,
    failure_sweep_session,
    scenario_sweep_session,
)

__all__ = [
    "CampaignSpec",
    "CampaignStore",
    "CampaignAggregate",
    "run_campaign",
    "aggregate_campaign",
    "config_hash",
    "ExperimentConfig",
    "ComparisonResult",
    "build_network",
    "build_traffic",
    "run_comparison",
    "safe_ratio",
    "utilization_histogram",
    "sorted_high_utilization",
    "ConvergenceTrace",
    "trace_from_history",
    "relative_gap",
    "DriftReport",
    "drift_sweep",
    "RobustnessReport",
    "ScenarioRobustnessReport",
    "failure_sweep",
    "failure_sweep_session",
    "scenario_sweep_session",
]
