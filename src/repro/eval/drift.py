"""Robustness of weight settings to traffic drift.

The paper notes DTR's extra configuration/recomputation overhead on
network changes (Section 1).  A practical mitigation is *not*
re-optimizing on every traffic shift — so it matters how well weights
tuned at one load level hold up when traffic drifts.  This module
evaluates fixed STR/DTR weight settings across scaled versions of the
traffic they were optimized for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.costs.load_cost import evaluate_load_cost
from repro.network.graph import Network
from repro.routing.state import Routing
from repro.traffic.matrix import TrafficMatrix


@dataclass(frozen=True)
class DriftPoint:
    """Cost of a fixed weight setting at one drifted traffic level."""

    scale: float
    phi_high: float
    phi_low: float
    max_utilization: float


@dataclass(frozen=True)
class DriftReport:
    """Costs of one weight setting across a traffic-scale sweep.

    ``points[i]`` corresponds to traffic multiplied by ``scales[i]``;
    scale 1.0 is the load the weights were optimized for.
    """

    points: tuple[DriftPoint, ...]

    def point_at(self, scale: float) -> DriftPoint:
        """The drift point for an exact scale value.

        Raises:
            KeyError: if the scale was not part of the sweep.
        """
        for point in self.points:
            if point.scale == scale:
                return point
        raise KeyError(f"scale {scale} not in sweep")

    def low_cost_growth(self) -> float:
        """Ratio of the largest to the smallest Phi_L across the sweep."""
        values = [p.phi_low for p in self.points if p.phi_low > 0]
        if not values:
            return 1.0
        return max(values) / min(values)


def drift_sweep(
    net: Network,
    high_weights: Sequence[int],
    low_weights: Sequence[int],
    high_traffic: TrafficMatrix,
    low_traffic: TrafficMatrix,
    scales: Sequence[float] = (0.8, 0.9, 1.0, 1.1, 1.2),
) -> DriftReport:
    """Evaluate fixed weights across jointly scaled traffic matrices.

    Args:
        net: The network.
        high_weights: High-priority topology weights (fixed).
        low_weights: Low-priority topology weights (fixed).
        high_traffic: High-priority matrix at scale 1.0.
        low_traffic: Low-priority matrix at scale 1.0.
        scales: Multipliers applied to both matrices.

    Returns:
        A :class:`DriftReport` with one point per scale, in input order.

    Raises:
        ValueError: on an empty or non-positive scale list.
    """
    if not scales:
        raise ValueError("need at least one scale")
    if any(s <= 0 for s in scales):
        raise ValueError("scales must be positive")
    wh = np.asarray(high_weights)
    wl = np.asarray(low_weights)
    high_routing = Routing(net, wh)
    low_routing = high_routing if np.array_equal(wh, wl) else Routing(net, wl)

    points = []
    for scale in scales:
        evaluation = evaluate_load_cost(
            net,
            high_routing,
            low_routing,
            high_traffic.scaled(float(scale)),
            low_traffic.scaled(float(scale)),
        )
        points.append(
            DriftPoint(
                scale=float(scale),
                phi_high=evaluation.phi_high,
                phi_low=evaluation.phi_low,
                max_utilization=evaluation.max_utilization,
            )
        )
    return DriftReport(points=tuple(points))
