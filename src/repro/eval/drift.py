"""Robustness of weight settings to traffic drift.

The paper notes DTR's extra configuration/recomputation overhead on
network changes (Section 1).  A practical mitigation is *not*
re-optimizing on every traffic shift — so it matters how well weights
tuned at one load level hold up when traffic drifts.  This module
evaluates fixed STR/DTR weight settings across scaled versions of the
traffic they were optimized for.

A drift sweep is a scenario sweep: each scale is a
:class:`~repro.scenarios.TrafficScale` scenario, and the whole sweep
rides :meth:`repro.api.Session.sweep` — the identity projection keeps
the baseline routings shared across every point, exactly the
one-routing-many-matrices structure the original direct implementation
hand-rolled, now with the engine's bit-identity contract behind it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.network.graph import Network
from repro.traffic.matrix import TrafficMatrix

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.api.session import Session

DEFAULT_SCALES = (0.8, 0.9, 1.0, 1.1, 1.2)


@dataclass(frozen=True)
class DriftPoint:
    """Cost of a fixed weight setting at one drifted traffic level."""

    scale: float
    phi_high: float
    phi_low: float
    max_utilization: float


@dataclass(frozen=True)
class DriftReport:
    """Costs of one weight setting across a traffic-scale sweep.

    ``points[i]`` corresponds to traffic multiplied by ``scales[i]``;
    scale 1.0 is the load the weights were optimized for.
    """

    points: tuple[DriftPoint, ...]

    def point_at(self, scale: float) -> DriftPoint:
        """The drift point for an exact scale value.

        Raises:
            KeyError: if the scale was not part of the sweep.
        """
        for point in self.points:
            if point.scale == scale:
                return point
        raise KeyError(f"scale {scale} not in sweep")

    def low_cost_growth(self) -> float:
        """Ratio of the largest to the smallest Phi_L across the sweep."""
        values = [p.phi_low for p in self.points if p.phi_low > 0]
        if not values:
            return 1.0
        return max(values) / min(values)


def _validate_scales(scales: Sequence[float]) -> None:
    if not scales:
        raise ValueError("need at least one scale")
    if any(s <= 0 for s in scales):
        raise ValueError("scales must be positive")


def drift_sweep_session(
    session: "Session", scales: Sequence[float] = DEFAULT_SCALES
) -> DriftReport:
    """Evaluate a session's baseline weights across scaled traffic.

    One batched :meth:`~repro.api.Session.sweep` of
    :class:`~repro.scenarios.TrafficScale` scenarios: traffic-only
    scenarios share the baseline routings (identity projection), so the
    sweep prices each scale with a costing pass instead of a rebuild.

    Args:
        session: A session with a pinned baseline weight setting.
        scales: Multipliers applied to both matrices.

    Returns:
        A :class:`DriftReport` with one point per scale, in input order.

    Raises:
        ValueError: on an empty or non-positive scale list.
    """
    from repro.scenarios.algebra import TrafficScale

    _validate_scales(scales)
    result = session.sweep(
        [TrafficScale(factor=float(scale)) for scale in scales]
    )
    return DriftReport(
        points=tuple(
            DriftPoint(
                scale=float(scale),
                phi_high=outcome.evaluation.phi_high,
                phi_low=outcome.evaluation.phi_low,
                max_utilization=outcome.evaluation.max_utilization,
            )
            for scale, outcome in zip(scales, result.outcomes)
        )
    )


def drift_sweep(
    net: Network,
    high_weights: Sequence[int],
    low_weights: Sequence[int],
    high_traffic: TrafficMatrix,
    low_traffic: TrafficMatrix,
    scales: Sequence[float] = DEFAULT_SCALES,
) -> DriftReport:
    """Evaluate fixed weights across jointly scaled traffic matrices.

    Legacy entry point: builds a load-mode :class:`~repro.api.Session`
    around the inputs and delegates to :func:`drift_sweep_session`.

    Args:
        net: The network.
        high_weights: High-priority topology weights (fixed).
        low_weights: Low-priority topology weights (fixed).
        high_traffic: High-priority matrix at scale 1.0.
        low_traffic: Low-priority matrix at scale 1.0.
        scales: Multipliers applied to both matrices.

    Returns:
        A :class:`DriftReport` with one point per scale, in input order.

    Raises:
        ValueError: on an empty or non-positive scale list.
    """
    from repro.api.session import Session

    _validate_scales(scales)
    session = Session(net, high_traffic, low_traffic, cost_model="load")
    session.set_weights(high_weights, low_weights)
    return drift_sweep_session(session, scales)
