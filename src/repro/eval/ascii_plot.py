"""Plain-text rendering of series, tables, and histograms for the benches."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render rows as a fixed-width text table with a header rule."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(f"row has {len(row)} cells, expected {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    lines.extend(
        "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)) for row in str_rows
    )
    return "\n".join(lines)


def format_histogram(
    edges: np.ndarray, counts: np.ndarray, label: str = "", width: int = 40
) -> str:
    """Render a histogram as horizontal ASCII bars."""
    counts = np.asarray(counts)
    if len(edges) != len(counts) + 1:
        raise ValueError("edges must have exactly one more entry than counts")
    peak = max(int(counts.max()), 1)
    lines = [label] if label else []
    for i, count in enumerate(counts):
        bar = "#" * round(width * int(count) / peak)
        lines.append(f"[{edges[i]:4.2f},{edges[i + 1]:4.2f}) {int(count):4d} {bar}")
    return "\n".join(lines)


def format_series(
    x_label: str, y_labels: Sequence[str], points: Sequence[Sequence[float]]
) -> str:
    """Render aligned (x, y1, y2, ...) series rows."""
    return format_table([x_label, *y_labels], points)


SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def format_sparkline(values: Sequence[float]) -> str:
    """Render a numeric series as one row of block characters.

    The range is normalized per call (min → lowest block, max → full
    block); a constant or single-point series renders at mid height, and
    non-finite points render as ``·`` so a NaN in a trend is visible
    instead of silently skipped.  Empty input renders as ``(empty)``.
    """
    if not len(values):
        return "(empty)"
    finite = [float(v) for v in values if np.isfinite(v)]
    top = len(SPARK_LEVELS) - 1
    if not finite:
        return "·" * len(values)
    lo, hi = min(finite), max(finite)
    span = hi - lo
    chars = []
    for v in values:
        if not np.isfinite(v):
            chars.append("·")
        elif span == 0.0:
            chars.append(SPARK_LEVELS[top // 2])
        else:
            chars.append(SPARK_LEVELS[round((float(v) - lo) / span * top)])
    return "".join(chars)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == float("inf"):
            return "inf"
        if abs(cell) >= 1000 or (0 < abs(cell) < 0.01):
            return f"{cell:.3e}"
        return f"{cell:.3f}"
    return str(cell)
