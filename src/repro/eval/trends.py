"""Perf-trend baseline store and tolerance-band comparator.

The benchmarks emit one ``BENCH_<name>.json`` trend artifact per bench
(:mod:`benchmarks.conftest`); this module is what finally *consumes*
them.  Three pieces:

* a **baseline store** — committed snapshots under
  ``benchmarks/baselines/`` with provenance (``scale``, ``seed``,
  ``git``) and a bounded per-metric ``history`` of previous baseline
  values, refreshed all-or-nothing by :func:`update_baselines`;
* a **tolerance-band comparator** — :func:`compare_bench` /
  :func:`compare_dirs` classify every baseline metric as improved /
  within-band / regressed under per-metric :class:`MetricPolicy` rules
  (direction, relative band, absolute floor) resolved from a
  ``policy.json`` next to the baselines; the report knows its CI exit
  code (0 ok, 2 schema/coverage mismatch, 3 regression under
  ``strict``).  A bench present in the baselines but missing from the
  run is a *coverage* failure, so gating can never silently narrow;
* **trend rendering** — :func:`trend_lines` draws an ASCII sparkline
  per metric over the recorded baseline history plus the current run.

Everything here reads both artifact schema versions: schema 1
(``{"bench", "schema", "metrics", "python"}``) and schema 2 (adds the
provenance fields).  Malformed or truncated files raise
:class:`BenchFormatError` — the comparator treats them as schema
mismatches (exit 2), never as a silently passing gate.
"""

from __future__ import annotations

import dataclasses
import fnmatch
import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

from repro.eval.ascii_plot import format_sparkline, format_table
from repro.ioutil import atomic_write_text

KNOWN_SCHEMAS = (1, 2)
HISTORY_LIMIT = 12
"""Previous baseline values kept per metric when a baseline is refreshed."""

POLICY_FILENAME = "policy.json"
BENCH_PREFIX = "BENCH_"

# Classification statuses, in the order the report table sorts them.
REGRESSED = "regressed"
MISSING = "missing"
IMPROVED = "improved"
WITHIN = "within-band"
IGNORED = "ignored"
_STATUS_ORDER = {REGRESSED: 0, MISSING: 1, IMPROVED: 2, WITHIN: 3, IGNORED: 4}


class BenchFormatError(ValueError):
    """A bench artifact, baseline, or policy file violates the schema."""


# ----------------------------------------------------------------------
# Artifact parsing (schema 1 and 2)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BenchArtifact:
    """One parsed ``BENCH_<name>.json`` (either schema version).

    ``metrics`` is the artifact's metric *tree* flattened to dotted
    paths (``section.metric``, or deeper for benches that nest, e.g.
    ``closed_loop.metrics.scheduler.batches``) — the comparator's unit
    of gating is the numeric leaf, wherever it sits.
    """

    name: str
    schema: int
    metrics: dict[str, float]
    python: Optional[str] = None
    scale: Optional[float] = None
    seed: Optional[int] = None
    git: Optional[str] = None
    history: dict[str, tuple[float, ...]] = field(default_factory=dict)

    def metric_paths(self) -> list[str]:
        """Dotted metric paths, sorted for stable output."""
        return sorted(self.metrics)

    def value(self, path: str) -> Optional[float]:
        """The metric at dotted ``path``, or ``None`` when absent."""
        return self.metrics.get(path)


def _flatten_metrics(
    tree: dict, source: str, prefix: str = ""
) -> dict[str, float]:
    flat: dict[str, float] = {}
    for key, value in tree.items():
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(_flatten_metrics(value, source, prefix=f"{path}."))
        elif isinstance(value, bool) or not isinstance(value, (int, float)):
            raise BenchFormatError(
                f"{source}: metric {path} has non-numeric value {value!r}"
            )
        else:
            flat[path] = float(value)
    return flat


def parse_bench(data: object, source: str = "<memory>") -> BenchArtifact:
    """Validate one bench payload (schema 1 or 2) into a :class:`BenchArtifact`.

    Raises:
        BenchFormatError: on any structural violation — wrong top-level
            type, missing keys, unknown schema version, non-object
            metric sections, or non-numeric metric leaves.
    """
    if not isinstance(data, dict):
        raise BenchFormatError(f"{source}: bench artifact must be a JSON object")
    for key in ("bench", "schema", "metrics"):
        if key not in data:
            raise BenchFormatError(f"{source}: missing required key {key!r}")
    schema = data["schema"]
    if schema not in KNOWN_SCHEMAS:
        raise BenchFormatError(
            f"{source}: unknown schema version {schema!r}; known: {KNOWN_SCHEMAS}"
        )
    metrics_in = data["metrics"]
    if not isinstance(metrics_in, dict):
        raise BenchFormatError(f"{source}: 'metrics' must be an object")
    metrics = _flatten_metrics(metrics_in, source)
    history: dict[str, tuple[float, ...]] = {}
    for path, values in (data.get("history") or {}).items():
        if not isinstance(values, list):
            raise BenchFormatError(f"{source}: history of {path!r} must be a list")
        history[str(path)] = tuple(float(v) for v in values)
    return BenchArtifact(
        name=str(data["bench"]),
        schema=int(schema),
        metrics=metrics,
        python=data.get("python"),
        scale=data.get("scale"),
        seed=data.get("seed"),
        git=data.get("git"),
        history=history,
    )


def load_bench(path: Union[str, Path]) -> BenchArtifact:
    """Parse one ``BENCH_<name>.json`` file, either schema version.

    Raises:
        BenchFormatError: when the file is truncated, not JSON, or
            violates the schema.
        FileNotFoundError: when it does not exist.
    """
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise BenchFormatError(
            f"{path}: not valid JSON ({exc}); the artifact is likely truncated"
        ) from exc
    return parse_bench(data, source=str(path))


def discover_benches(directory: Union[str, Path]) -> dict[str, Path]:
    """Map bench name → path for every ``BENCH_*.json`` in ``directory``."""
    directory = Path(directory)
    if not directory.is_dir():
        raise FileNotFoundError(f"no such bench directory: {directory}")
    found = {}
    for path in sorted(directory.glob(f"{BENCH_PREFIX}*.json")):
        found[path.stem[len(BENCH_PREFIX):]] = path
    return found


# ----------------------------------------------------------------------
# Tolerance policies
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MetricPolicy:
    """How one metric is judged against its baseline.

    ``direction`` declares which way is better: ``"higher"`` (speedups,
    throughput), ``"lower"`` (latencies), or ``"ignore"`` (provenance
    counts and machine-absolute numbers that must not gate).  A change
    in the worse direction regresses only when it exceeds *both* the
    relative band (``relative_band * |baseline|``) and the absolute
    floor — the floor keeps near-zero baselines from turning noise into
    a failure.
    """

    direction: str = "higher"
    relative_band: float = 0.25
    absolute_floor: float = 0.0

    def __post_init__(self) -> None:
        if self.direction not in ("higher", "lower", "ignore"):
            raise BenchFormatError(
                f"policy direction must be higher/lower/ignore, got "
                f"{self.direction!r}"
            )
        if self.relative_band < 0 or self.absolute_floor < 0:
            raise BenchFormatError("policy bands must be non-negative")

    def allowance(self, baseline: float) -> float:
        """Largest worse-direction delta that still counts as in-band."""
        return max(self.absolute_floor, self.relative_band * abs(baseline))


@dataclass(frozen=True)
class TolerancePolicy:
    """Per-metric policy resolution: defaults plus ordered glob overrides.

    Overrides match the dotted ``bench.section.metric`` path with
    :func:`fnmatch.fnmatch`; later entries win, so a policy file reads
    top-down from general to specific.  Override entries may set any
    subset of the :class:`MetricPolicy` fields; unset fields inherit.
    """

    defaults: MetricPolicy = field(default_factory=MetricPolicy)
    overrides: tuple[tuple[str, dict], ...] = ()

    def for_metric(self, path: str) -> MetricPolicy:
        """Resolve the effective policy for a dotted metric path."""
        resolved = dataclasses.asdict(self.defaults)
        for pattern, partial in self.overrides:
            if fnmatch.fnmatch(path, pattern):
                resolved.update(partial)
        return MetricPolicy(**resolved)

    @classmethod
    def from_jsonable(cls, data: object, source: str = "<memory>") -> "TolerancePolicy":
        """Build from the ``policy.json`` shape; validates eagerly."""
        if not isinstance(data, dict):
            raise BenchFormatError(f"{source}: policy must be a JSON object")
        known_fields = {f.name for f in dataclasses.fields(MetricPolicy)}

        def check_partial(partial: object, label: str) -> dict:
            if not isinstance(partial, dict):
                raise BenchFormatError(f"{source}: {label} must be an object")
            unknown = set(partial) - known_fields
            if unknown:
                raise BenchFormatError(
                    f"{source}: {label} has unknown policy fields {sorted(unknown)}"
                )
            return dict(partial)

        defaults = MetricPolicy(**check_partial(data.get("defaults", {}), "'defaults'"))
        overrides = []
        raw = data.get("overrides", [])
        if not isinstance(raw, list):
            raise BenchFormatError(f"{source}: 'overrides' must be a list")
        for i, entry in enumerate(raw):
            if not isinstance(entry, dict) or "match" not in entry:
                raise BenchFormatError(
                    f"{source}: overrides[{i}] must be an object with a 'match' glob"
                )
            partial = {k: v for k, v in entry.items() if k != "match"}
            partial = check_partial(partial, f"overrides[{i}]")
            # Validate the merged result now, not at first use.
            MetricPolicy(**{**dataclasses.asdict(defaults), **partial})
            overrides.append((str(entry["match"]), partial))
        return cls(defaults=defaults, overrides=tuple(overrides))


def load_policy(directory: Union[str, Path]) -> TolerancePolicy:
    """Load ``policy.json`` from a baseline directory (defaults when absent)."""
    path = Path(directory) / POLICY_FILENAME
    if not path.exists():
        return TolerancePolicy()
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise BenchFormatError(f"{path}: not valid JSON ({exc})") from exc
    return TolerancePolicy.from_jsonable(data, source=str(path))


# ----------------------------------------------------------------------
# Comparator
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MetricComparison:
    """One metric's verdict: baseline vs current under its policy."""

    path: str  # dotted bench.section.metric
    status: str
    baseline: Optional[float]
    current: Optional[float]
    allowance: float
    direction: str

    @property
    def delta(self) -> Optional[float]:
        if self.baseline is None or self.current is None:
            return None
        return self.current - self.baseline


@dataclass(frozen=True)
class ComparisonReport:
    """The full verdict of a current bench directory against the baselines.

    ``problems`` carries schema/coverage failures (truncated artifacts,
    NaN values, benches or metrics present in the baselines but absent
    from the run); any entry there makes the report exit 2 regardless of
    strictness.  ``new_benches`` (present in the run, not yet
    baselined) are informational only.
    """

    metrics: tuple[MetricComparison, ...]
    problems: tuple[str, ...] = ()
    new_benches: tuple[str, ...] = ()

    def by_status(self, status: str) -> list[MetricComparison]:
        return [m for m in self.metrics if m.status == status]

    @property
    def regressions(self) -> list[MetricComparison]:
        return self.by_status(REGRESSED)

    @property
    def ok(self) -> bool:
        return not self.problems and not self.regressions

    def exit_code(self, strict: bool = False) -> int:
        """The CI gate contract: 2 schema/coverage, 3 regression, else 0."""
        if self.problems:
            return 2
        if strict and self.regressions:
            return 3
        return 0

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for m in self.metrics:
            out[m.status] = out.get(m.status, 0) + 1
        return out

    def format(self) -> str:
        """The human table plus a one-line verdict."""
        rows = []
        for m in sorted(
            self.metrics, key=lambda m: (_STATUS_ORDER[m.status], m.path)
        ):
            rows.append(
                (
                    m.path,
                    "-" if m.baseline is None else f"{m.baseline:.4g}",
                    "-" if m.current is None else f"{m.current:.4g}",
                    "-" if m.delta is None else f"{m.delta:+.4g}",
                    "-" if m.direction == "ignore"
                    else f"{m.direction}±{m.allowance:.3g}",
                    m.status,
                )
            )
        lines = [format_table(
            ["metric", "baseline", "current", "delta", "band", "status"], rows
        )]
        for problem in self.problems:
            lines.append(f"PROBLEM: {problem}")
        if self.new_benches:
            lines.append(
                "new benches (not yet baselined): " + ", ".join(self.new_benches)
            )
        counts = self.counts()
        summary = ", ".join(
            f"{counts[s]} {s}" for s in _STATUS_ORDER if counts.get(s)
        ) or "no metrics"
        if self.problems:
            verdict = "SCHEMA/COVERAGE MISMATCH"
        elif self.regressions:
            verdict = "REGRESSED: " + ", ".join(m.path for m in self.regressions)
        else:
            verdict = "OK"
        lines.append(f"verdict: {verdict} ({summary})")
        return "\n".join(lines)


def _compare_metric(
    path: str, baseline: float, current: Optional[float], policy: MetricPolicy
) -> tuple[MetricComparison, Optional[str]]:
    """Classify one metric; also return a problem string when it cannot gate."""
    comparison = lambda status: MetricComparison(  # noqa: E731
        path=path,
        status=status,
        baseline=baseline,
        current=current,
        allowance=policy.allowance(baseline),
        direction=policy.direction,
    )
    if not math.isfinite(baseline):
        return comparison(MISSING), f"{path}: baseline value {baseline!r} is not finite"
    if policy.direction == "ignore":
        return comparison(IGNORED), None
    if current is None:
        return comparison(MISSING), (
            f"{path}: present in baseline but missing from the current run"
        )
    if not math.isfinite(current):
        return comparison(MISSING), f"{path}: current value {current!r} is not finite"
    worse = baseline - current if policy.direction == "higher" else current - baseline
    if worse < 0:
        return comparison(IMPROVED), None
    if worse <= policy.allowance(baseline):
        return comparison(WITHIN), None
    return comparison(REGRESSED), None


def compare_bench(
    current: Optional[BenchArtifact],
    baseline: BenchArtifact,
    policy: TolerancePolicy,
) -> ComparisonReport:
    """Compare one bench artifact against its baseline snapshot.

    Coverage is judged from the baseline's side: every baseline metric
    must appear in ``current`` (``current=None`` means the whole bench
    was missing from the run — every non-ignored metric becomes a
    coverage problem).  Metrics only present in ``current`` are
    reported as new benches at directory level, never here.
    """
    metrics: list[MetricComparison] = []
    problems: list[str] = []
    if current is None:
        problems.append(
            f"bench {baseline.name!r}: present in baselines but missing from "
            "the current run"
        )
    for path in baseline.metric_paths():
        value = baseline.value(path)
        current_value = None if current is None else current.value(path)
        comparison, problem = _compare_metric(
            f"{baseline.name}.{path}",
            value,
            current_value,
            policy.for_metric(f"{baseline.name}.{path}"),
        )
        metrics.append(comparison)
        if problem and current is not None:
            problems.append(problem)
    if not baseline.metrics:
        problems.append(f"bench {baseline.name!r}: baseline has no metrics to gate on")
    return ComparisonReport(metrics=tuple(metrics), problems=tuple(problems))


def compare_dirs(
    current_dir: Union[str, Path],
    baseline_dir: Union[str, Path],
    policy: Optional[TolerancePolicy] = None,
) -> ComparisonReport:
    """Compare every committed baseline against a current bench directory.

    The policy defaults to ``<baseline_dir>/policy.json``.  Unreadable
    or malformed artifacts on either side become problems (exit 2), not
    exceptions — the gate must report, not crash.
    """
    baseline_dir = Path(baseline_dir)
    if policy is None:
        policy = load_policy(baseline_dir)
    baselines = discover_benches(baseline_dir)
    if not baselines:
        raise FileNotFoundError(f"no {BENCH_PREFIX}*.json baselines in {baseline_dir}")
    try:
        currents = discover_benches(current_dir)
    except FileNotFoundError:
        currents = {}
    metrics: list[MetricComparison] = []
    problems: list[str] = []
    if not currents:
        problems.append(f"no {BENCH_PREFIX}*.json artifacts in {current_dir}")
    for name, path in baselines.items():
        try:
            baseline = load_bench(path)
        except BenchFormatError as exc:
            problems.append(str(exc))
            continue
        current: Optional[BenchArtifact] = None
        if name in currents:
            try:
                current = load_bench(currents[name])
            except BenchFormatError as exc:
                problems.append(str(exc))
                continue
        report = compare_bench(current, baseline, policy)
        metrics.extend(report.metrics)
        problems.extend(report.problems)
    new = tuple(sorted(set(currents) - set(baselines)))
    return ComparisonReport(
        metrics=tuple(metrics), problems=tuple(problems), new_benches=new
    )


# ----------------------------------------------------------------------
# Baseline store
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BaselineUpdate:
    """What :func:`update_baselines` wrote: bench name → baseline path."""

    written: dict[str, Path]

    def format(self) -> str:
        lines = [f"updated {len(self.written)} baseline(s):"]
        lines.extend(f"  {name}: {path}" for name, path in sorted(self.written.items()))
        return "\n".join(lines)


def update_baselines(
    current_dir: Union[str, Path],
    baseline_dir: Union[str, Path],
    allow_new: bool = True,
) -> BaselineUpdate:
    """Refresh the committed baselines from a current bench directory.

    All-or-nothing: every current artifact is parsed and validated
    first, and every *existing* baseline must be covered by the run —
    a partial run can never overwrite half the store and leave the gate
    comparing apples to apples-from-last-month.  Each refreshed
    baseline appends the previous baseline's metric values to a bounded
    per-metric ``history`` (last :data:`HISTORY_LIMIT`), which the
    trend sparklines render.

    Raises:
        BenchFormatError: when any current artifact is malformed, or
            the run covers only a subset of the existing baselines.
        FileNotFoundError: when ``current_dir`` has no artifacts.
    """
    current_dir = Path(current_dir)
    baseline_dir = Path(baseline_dir)
    currents_paths = discover_benches(current_dir)
    if not currents_paths:
        raise FileNotFoundError(f"no {BENCH_PREFIX}*.json artifacts in {current_dir}")
    currents = {name: load_bench(path) for name, path in currents_paths.items()}

    baseline_dir.mkdir(parents=True, exist_ok=True)
    existing = discover_benches(baseline_dir)
    uncovered = sorted(set(existing) - set(currents))
    if uncovered:
        raise BenchFormatError(
            "refusing partial baseline update: the run is missing existing "
            f"baseline bench(es) {uncovered}; re-run the full bench suite or "
            "delete the stale baselines explicitly"
        )
    if not allow_new:
        extra = sorted(set(currents) - set(existing))
        if extra:
            raise BenchFormatError(
                f"refusing to add new baseline bench(es) {extra} (allow_new=False)"
            )

    written: dict[str, Path] = {}
    for name, artifact in sorted(currents.items()):
        path = baseline_dir / f"{BENCH_PREFIX}{name}.json"
        history: dict[str, list[float]] = {}
        if name in existing:
            previous = load_bench(path)
            for metric_path in previous.metric_paths():
                trail = list(previous.history.get(metric_path, ()))
                trail.append(previous.value(metric_path))
                history[metric_path] = trail[-HISTORY_LIMIT:]
        payload = {
            "bench": artifact.name,
            "schema": max(artifact.schema, 2),
            "metrics": artifact.metrics,
            "python": artifact.python,
            "scale": artifact.scale,
            "seed": artifact.seed,
            "git": artifact.git,
            "history": history,
        }
        atomic_write_text(path, json.dumps(payload, indent=2, sort_keys=True) + "\n")
        written[name] = path
    return BaselineUpdate(written=written)


# ----------------------------------------------------------------------
# Trend rendering
# ----------------------------------------------------------------------
def trend_lines(
    baseline_dir: Union[str, Path],
    current_dir: Optional[Union[str, Path]] = None,
    benches: Optional[Iterable[str]] = None,
) -> dict[str, str]:
    """Per-bench ASCII trend blocks: one sparkline per metric.

    Each line covers the recorded baseline history (oldest first), then
    the committed baseline, then — when ``current_dir`` is given and
    holds the bench — the current run's value, so the rightmost step of
    the sparkline is "this run vs everything committed".
    """
    baselines = discover_benches(baseline_dir)
    currents = discover_benches(current_dir) if current_dir else {}
    names: Sequence[str] = sorted(benches) if benches else sorted(baselines)
    blocks: dict[str, str] = {}
    for name in names:
        if name not in baselines:
            raise FileNotFoundError(f"no baseline for bench {name!r} in {baseline_dir}")
        baseline = load_bench(baselines[name])
        current = load_bench(currents[name]) if name in currents else None
        rows = []
        for path in baseline.metric_paths():
            values = list(baseline.history.get(path, ()))
            values.append(baseline.value(path))
            latest = baseline.value(path)
            if current is not None and current.value(path) is not None:
                latest = current.value(path)
                values.append(latest)
            rows.append(
                (path, format_sparkline(values), len(values), f"{latest:.4g}")
            )
        blocks[name] = format_table(["metric", "trend", "n", "latest"], rows)
    return blocks
