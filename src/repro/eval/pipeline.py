"""The raw → table → figure results pipeline.

One entry point, :func:`render_results`, walks the repo's two result
stores — a campaign directory of content-addressed experiment records
and a bench-trends directory of ``BENCH_*.json`` perf artifacts — and
renders everything a paper reader or CI job wants to look at:

* ``tables/<figure>.csv`` — the exact series each figure plots, one CSV
  per figure/table (figures 2–9, Table 1, and the scenario-robustness
  extension figure);
* ``figures/<figure>.txt`` — the ASCII rendering of the same result
  (``result.format()``, the repo's plotting surface);
* ``trends/<bench>.txt`` — per-metric ASCII sparklines over the
  committed baseline history plus the current run
  (:func:`repro.eval.trends.trend_lines`);
* ``index.md`` — a manifest linking all of the above.

Campaign-backed figures (2, 4, 5) aggregate stored records when the
campaign holds matching grid points — milliseconds instead of a fresh
search — and transparently fall back to recomputation at the
pipeline's ``scale``/``seed`` when it does not.  Everything else runs
through the same registry :mod:`repro.eval.report` uses, so the
pipeline and the Markdown report can never drift apart on what a
figure means.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.eval import figures, trends
from repro.eval.figures import (
    Fig2Result,
    Fig3Result,
    Fig4Result,
    Fig5Result,
    Fig6Result,
    Fig7Result,
    Fig8Result,
    Fig9Result,
    FigScenariosResult,
    Table1Result,
)
from repro.eval.report import RUNNERS
from repro.eval.results import save_csv
from repro.ioutil import atomic_write_text

DEFAULT_FIGURES: tuple[str, ...] = tuple(RUNNERS)
"""Every registered figure/table id, in report order."""

_CAMPAIGN_BACKED = {
    "fig2a": lambda agg: figures.fig2_from_campaign(agg, "random", "load"),
    "fig2b": lambda agg: figures.fig2_from_campaign(agg, "powerlaw", "load"),
    "fig2c": lambda agg: figures.fig2_from_campaign(agg, "isp", "load"),
    "fig2d": lambda agg: figures.fig2_from_campaign(agg, "random", "sla"),
    "fig2e": lambda agg: figures.fig2_from_campaign(agg, "powerlaw", "sla"),
    "fig2f": lambda agg: figures.fig2_from_campaign(agg, "isp", "sla"),
    "fig4": figures.fig4_from_campaign,
    "fig5a": lambda agg: figures.fig5_from_campaign(agg, "load"),
    "fig5b": lambda agg: figures.fig5_from_campaign(agg, "sla"),
}


# ----------------------------------------------------------------------
# Figure result → CSV rows
# ----------------------------------------------------------------------
def figure_csv(result: object) -> tuple[list[str], list[tuple]]:
    """``(headers, rows)`` of the series a figure result plots.

    Every figure/table result type of :mod:`repro.eval.figures` is
    supported; an unknown type raises ``TypeError`` so a new figure
    cannot silently render an empty table.
    """
    if isinstance(result, Fig2Result):
        return (
            ["topology", "mode", "target_utilization", "measured_utilization",
             "ratio_high", "ratio_low"],
            [(result.topology, result.mode, *row) for row in result.series.rows()],
        )
    if isinstance(result, (Fig4Result, Fig5Result, Fig8Result)):
        mode = getattr(result, "mode", "load")
        return (
            ["mode", "series", "target_utilization", "measured_utilization",
             "ratio_high", "ratio_low"],
            [
                (mode, series.label, *row)
                for series in result.series
                for row in series.rows()
            ],
        )
    if isinstance(result, Fig3Result):
        return (
            ["mode", "high_density", "bin_low", "bin_high", "str_count", "dtr_count"],
            [
                (
                    result.mode,
                    result.high_density,
                    float(result.bin_edges[i]),
                    float(result.bin_edges[i + 1]),
                    int(result.str_counts[i]),
                    int(result.dtr_counts[i]),
                )
                for i in range(len(result.str_counts))
            ],
        )
    if isinstance(result, Fig6Result):
        return (
            ["high_density", "rank", "str_high_utilization"],
            [
                (k, rank, float(value))
                for k, curve in sorted(result.curves.items())
                for rank, value in enumerate(curve)
            ],
        )
    if isinstance(result, Fig7Result):
        return (
            ["prop_delay_ms", "str_utilization", "dtr_utilization"],
            [
                (
                    float(result.prop_delays_ms[i]),
                    float(result.str_utilization[i]),
                    float(result.dtr_utilization[i]),
                )
                for i in range(len(result.prop_delays_ms))
            ],
        )
    if isinstance(result, Fig9Result):
        return (
            ["theta_ms", "str_violations", "dtr_violations", "str_phi_low",
             "dtr_phi_low", "str_max_utilization", "dtr_max_utilization"],
            [
                (p.theta_ms, p.str_violations, p.dtr_violations, p.str_phi_low,
                 p.dtr_phi_low, p.str_max_utilization, p.dtr_max_utilization)
                for p in result.points
            ],
        )
    if isinstance(result, Table1Result):
        return (
            ["topology", "average_utilization", "ratio_low", "ratio_low_5pct",
             "ratio_low_30pct"],
            [
                (topology, r.average_utilization, r.ratio_low, r.ratio_low_5pct,
                 r.ratio_low_30pct)
                for topology, rows in result.rows_by_topology.items()
                for r in rows
            ],
        )
    if isinstance(result, FigScenariosResult):
        return (
            ["kind", "scenarios", "disconnected", "str_worst_degradation",
             "dtr_worst_degradation", "str_mean_phi_low", "dtr_mean_phi_low"],
            [
                (r.kind, r.scenarios, r.disconnected, r.str_worst_degradation,
                 r.dtr_worst_degradation, r.str_mean_phi_low, r.dtr_mean_phi_low)
                for r in result.rows
            ],
        )
    raise TypeError(
        f"no CSV extraction registered for figure result type "
        f"{type(result).__name__}"
    )


# ----------------------------------------------------------------------
# The pipeline
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RenderedFigure:
    """One figure's outputs: where its table and plot landed."""

    figure_id: str
    source: str  # "campaign" or "computed"
    csv_path: Path
    figure_path: Path
    rows: int


@dataclass(frozen=True)
class RenderSummary:
    """Everything one :func:`render_results` call produced."""

    out_dir: Path
    figures: tuple[RenderedFigure, ...]
    trend_paths: tuple[Path, ...]
    index_path: Path

    def format(self) -> str:
        lines = [f"results pipeline → {self.out_dir}"]
        for fig in self.figures:
            lines.append(
                f"  {fig.figure_id:>10} [{fig.source}] {fig.rows} rows → "
                f"{fig.csv_path.name}, {fig.figure_path.name}"
            )
        for path in self.trend_paths:
            lines.append(f"  trend {path.stem} → {path}")
        lines.append(f"  index → {self.index_path}")
        return "\n".join(lines)


def render_results(
    out_dir: Union[str, Path],
    campaign_dir: Optional[Union[str, Path]] = None,
    trends_dir: Optional[Union[str, Path]] = None,
    baseline_dir: Optional[Union[str, Path]] = None,
    figure_ids: Optional[Sequence[str]] = None,
    scale: float = 0.05,
    seed: int = 1,
    echo: bool = False,
) -> RenderSummary:
    """Render CSV tables, ASCII figures, and perf-trend sparklines.

    Args:
        out_dir: Output root; ``tables/``, ``figures/``, ``trends/`` and
            ``index.md`` are created inside it.
        campaign_dir: Campaign store whose aggregated records back
            figures 2/4/5 when their grid points are present.
        trends_dir: A ``BENCH_*.json`` directory (e.g. CI's
            ``bench-trends`` artifact) appended as the current point of
            each trend sparkline.
        baseline_dir: The committed baseline store the sparkline history
            comes from; required for the trends section.
        figure_ids: Subset of figure/table ids (default: all).
        scale: Search-budget scale for figures that must be recomputed.
        seed: Seed for recomputed figures.
        echo: Print each figure's text as it completes.

    Raises:
        KeyError: when ``figure_ids`` names an unknown figure.
    """
    ids = list(figure_ids) if figure_ids else list(DEFAULT_FIGURES)
    for figure_id in ids:
        if figure_id not in RUNNERS:
            raise KeyError(
                f"unknown figure id {figure_id!r}; have {sorted(RUNNERS)}"
            )

    out_dir = Path(out_dir)
    tables_dir = out_dir / "tables"
    figures_dir = out_dir / "figures"
    for directory in (tables_dir, figures_dir):
        directory.mkdir(parents=True, exist_ok=True)

    aggregate = None
    if campaign_dir is not None:
        from repro.eval.campaign import aggregate_campaign

        aggregate = aggregate_campaign(campaign_dir)

    rendered = []
    for figure_id in ids:
        result, source = None, "computed"
        if aggregate is not None and figure_id in _CAMPAIGN_BACKED:
            try:
                result = _CAMPAIGN_BACKED[figure_id](aggregate)
                source = "campaign"
            except ValueError:
                result = None  # grid points absent: recompute below
        if result is None:
            result = RUNNERS[figure_id](scale, seed)
        headers, rows = figure_csv(result)
        csv_path = tables_dir / f"{figure_id}.csv"
        count = save_csv(csv_path, headers, rows)
        figure_path = figures_dir / f"{figure_id}.txt"
        body = result.format()
        atomic_write_text(figure_path, body + "\n")
        if echo:
            print(body)
            print(f"[{figure_id} rendered from {source}]", flush=True)
        rendered.append(
            RenderedFigure(
                figure_id=figure_id,
                source=source,
                csv_path=csv_path,
                figure_path=figure_path,
                rows=count,
            )
        )

    trend_paths = []
    if baseline_dir is not None:
        trends_out = out_dir / "trends"
        trends_out.mkdir(parents=True, exist_ok=True)
        for bench, block in trends.trend_lines(baseline_dir, trends_dir).items():
            path = trends_out / f"{bench}.txt"
            atomic_write_text(path, block + "\n")
            trend_paths.append(path)

    index_path = out_dir / "index.md"
    atomic_write_text(index_path, _index_markdown(rendered, trend_paths, campaign_dir))
    return RenderSummary(
        out_dir=out_dir,
        figures=tuple(rendered),
        trend_paths=tuple(trend_paths),
        index_path=index_path,
    )


def _index_markdown(
    rendered: Sequence[RenderedFigure],
    trend_paths: Sequence[Path],
    campaign_dir: Optional[Union[str, Path]],
) -> str:
    lines = [
        "# Results pipeline output",
        "",
        "Generated by `repro-dtr results render`.",
        "",
    ]
    if campaign_dir is not None:
        lines.extend([f"Campaign store: `{campaign_dir}`", ""])
    lines.extend(["## Figures and tables", ""])
    for fig in rendered:
        lines.append(
            f"- **{fig.figure_id}** ({fig.source}, {fig.rows} rows): "
            f"[table](tables/{fig.csv_path.name}), "
            f"[figure](figures/{fig.figure_path.name})"
        )
    if trend_paths:
        lines.extend(["", "## Perf trends", ""])
        for path in trend_paths:
            lines.append(f"- **{path.stem}**: [sparklines](trends/{path.name})")
    lines.append("")
    return "\n".join(lines)
