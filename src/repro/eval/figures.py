"""Reproduction entry points for every figure and table in the paper.

Each ``figN`` function runs the underlying experiments and returns a result
dataclass carrying the same series the paper plots; each result renders to
text via ``format()``.  A ``scale`` argument proportionally shrinks the
search budgets (1.0 = library defaults; the paper's budgets are
``SearchParams.paper()``), and ``seed`` fixes all randomness.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence

import numpy as np

from repro.core.evaluator import LOAD_MODE, SLA_MODE
from repro.costs.sla import SlaParams
from repro.eval.ascii_plot import format_histogram, format_series, format_table
from repro.eval.experiment import (
    ComparisonResult,
    ExperimentConfig,
    run_comparison,
    scaled_config,
    sweep_utilization,
)
from repro.eval.metrics import sorted_high_utilization, utilization_histogram

DEFAULT_TARGETS: tuple[float, ...] = (0.4, 0.5, 0.6, 0.7, 0.8)
"""Default utilization sweep, covering the x-ranges of Figs. 2, 4, 5 and 8."""


# ----------------------------------------------------------------------
# Shared result shapes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RatioPoint:
    """One sweep point: cost ratios at a network load level."""

    target_utilization: float
    measured_utilization: float
    ratio_high: float
    ratio_low: float


@dataclass(frozen=True)
class RatioSeries:
    """A labeled series of :class:`RatioPoint` (one curve of a figure)."""

    label: str
    points: tuple[RatioPoint, ...]

    def rows(self) -> list[tuple[float, float, float, float]]:
        """``(target, measured AD, R_H, R_L)`` per point."""
        return [
            (
                p.target_utilization,
                p.measured_utilization,
                p.ratio_high,
                p.ratio_low,
            )
            for p in self.points
        ]


def _series_from_results(label: str, results: Sequence[ComparisonResult]) -> RatioSeries:
    return RatioSeries(
        label=label,
        points=tuple(
            RatioPoint(
                target_utilization=r.config.target_utilization,
                measured_utilization=r.average_utilization,
                ratio_high=r.ratio_high,
                ratio_low=r.ratio_low,
            )
            for r in results
        ),
    )


def _base_config(scale: float, seed: int, **overrides) -> ExperimentConfig:
    return scaled_config(ExperimentConfig(seed=seed, **overrides), scale)


# ----------------------------------------------------------------------
# Figure 2 — cost ratios vs average link utilization
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig2Result:
    """One panel of Fig. 2: R_H and R_L across network loads."""

    topology: str
    mode: str
    series: RatioSeries

    def format(self) -> str:
        header = f"Fig.2 [{self.topology}, {self.mode}-based cost] f=30% k=10%"
        body = format_series(
            "target_util", ["measured_AD", "R_H", "R_L"], self.series.rows()
        )
        return f"{header}\n{body}"


def fig2(
    topology: str,
    mode: str,
    targets: Sequence[float] = DEFAULT_TARGETS,
    scale: float = 1.0,
    seed: int = 1,
) -> Fig2Result:
    """Reproduce one panel of Fig. 2 (a-c load-based, d-f SLA-based)."""
    config = _base_config(scale, seed, topology=topology, mode=mode)
    results = sweep_utilization(config, targets)
    return Fig2Result(
        topology=topology, mode=mode, series=_series_from_results(topology, results)
    )


# ----------------------------------------------------------------------
# Figure 3 — link-utilization histograms
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig3Result:
    """One panel of Fig. 3: utilization histograms under STR and DTR."""

    mode: str
    high_density: float
    bin_edges: np.ndarray
    str_counts: np.ndarray
    dtr_counts: np.ndarray

    def format(self) -> str:
        header = (
            f"Fig.3 [{self.mode}-based cost, k={self.high_density:.0%}] "
            "link-utilization histogram"
        )
        str_part = format_histogram(self.bin_edges, self.str_counts, "STR (single routing)")
        dtr_part = format_histogram(self.bin_edges, self.dtr_counts, "DTR (dual routing)")
        return f"{header}\n{str_part}\n{dtr_part}"


def fig3(
    panel: str,
    target_utilization: float = 0.65,
    scale: float = 1.0,
    seed: int = 1,
) -> Fig3Result:
    """Reproduce one panel of Fig. 3.

    Panels: ``"a"`` = load cost / k=10 %, ``"b"`` = SLA cost / k=10 %,
    ``"c"`` = SLA cost / k=30 %; all on the 30-node random topology, f=30 %.
    """
    settings = {
        "a": (LOAD_MODE, 0.10),
        "b": (SLA_MODE, 0.10),
        "c": (SLA_MODE, 0.30),
    }
    if panel not in settings:
        raise ValueError(f"panel must be one of {sorted(settings)}, got {panel!r}")
    mode, density = settings[panel]
    config = _base_config(
        scale,
        seed,
        topology="random",
        mode=mode,
        high_density=density,
        target_utilization=target_utilization,
    )
    result = run_comparison(config)
    top = max(
        1.0,
        float(result.str_evaluation.utilization.max()),
        float(result.dtr_evaluation.utilization.max()),
    )
    edges, str_counts = utilization_histogram(
        result.str_evaluation.utilization, max_utilization=top
    )
    _, dtr_counts = utilization_histogram(
        result.dtr_evaluation.utilization, max_utilization=top
    )
    return Fig3Result(
        mode=mode,
        high_density=density,
        bin_edges=edges,
        str_counts=str_counts,
        dtr_counts=dtr_counts,
    )


# ----------------------------------------------------------------------
# Figure 4 — impact of the high-priority volume fraction f
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig4Result:
    """Fig. 4: R_L vs load for f = 20 % and f = 40 % (load cost, k = 10 %)."""

    series: tuple[RatioSeries, ...]

    def format(self) -> str:
        blocks = ["Fig.4 [random, load-based cost] impact of f, k=10%"]
        for s in self.series:
            blocks.append(f"-- {s.label}")
            blocks.append(
                format_series("target_util", ["measured_AD", "R_H", "R_L"], s.rows())
            )
        return "\n".join(blocks)


def fig4(
    fractions: Sequence[float] = (0.20, 0.40),
    targets: Sequence[float] = DEFAULT_TARGETS,
    scale: float = 1.0,
    seed: int = 1,
) -> Fig4Result:
    """Reproduce Fig. 4: higher f makes DTR's advantage larger."""
    series = []
    for f in fractions:
        config = _base_config(
            scale, seed, topology="random", mode=LOAD_MODE, high_fraction=f
        )
        results = sweep_utilization(config, targets)
        series.append(_series_from_results(f"f={f:.0%}", results))
    return Fig4Result(series=tuple(series))


# ----------------------------------------------------------------------
# Figure 5 — impact of the high-priority SD-pair density k
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig5Result:
    """Fig. 5: R_L vs load for k = 10 % and 30 %, one cost mode per panel."""

    mode: str
    series: tuple[RatioSeries, ...]

    def format(self) -> str:
        blocks = [f"Fig.5 [random, {self.mode}-based cost] impact of k, f=30%"]
        for s in self.series:
            blocks.append(f"-- {s.label}")
            blocks.append(
                format_series("target_util", ["measured_AD", "R_H", "R_L"], s.rows())
            )
        return "\n".join(blocks)


def fig5(
    mode: str,
    densities: Sequence[float] = (0.10, 0.30),
    targets: Sequence[float] = DEFAULT_TARGETS,
    scale: float = 1.0,
    seed: int = 1,
) -> Fig5Result:
    """Reproduce Fig. 5(a) (``mode="load"``) or 5(b) (``mode="sla"``)."""
    series = []
    for k in densities:
        config = _base_config(
            scale, seed, topology="random", mode=mode, high_density=k
        )
        results = sweep_utilization(config, targets)
        series.append(_series_from_results(f"k={k:.0%}", results))
    return Fig5Result(mode=mode, series=tuple(series))


# ----------------------------------------------------------------------
# Figure 6 — sorted high-priority link utilization under STR
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig6Result:
    """Fig. 6: descending per-link H-utilization under STR for two densities."""

    curves: dict[float, np.ndarray]

    def format(self) -> str:
        lines = ["Fig.6 [random, load-based cost] sorted link H-utilization under STR"]
        for k, curve in sorted(self.curves.items()):
            head = ", ".join(f"{u:.3f}" for u in curve[:10])
            lines.append(
                f"k={k:.0%}: top10=[{head}] max={curve[0]:.3f} mean={curve.mean():.3f}"
            )
        return "\n".join(lines)


def fig6(
    densities: Sequence[float] = (0.10, 0.30),
    target_utilization: float = 0.65,
    scale: float = 1.0,
    seed: int = 1,
) -> Fig6Result:
    """Reproduce Fig. 6: higher k flattens the H-utilization curve."""
    curves = {}
    for k in densities:
        config = _base_config(
            scale,
            seed,
            topology="random",
            mode=LOAD_MODE,
            high_density=k,
            target_utilization=target_utilization,
        )
        result = run_comparison(config)
        curves[k] = sorted_high_utilization(
            result.str_evaluation.high_loads, _capacities_of(result)
        )
    return Fig6Result(curves=curves)


def _capacities_of(result: ComparisonResult) -> np.ndarray:
    from repro.eval.experiment import build_network

    return build_network(result.config.topology, result.config.seed).capacities()


# ----------------------------------------------------------------------
# Figure 7 — link load vs propagation delay (SLA cost)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig7Result:
    """Fig. 7: per-link (propagation delay, utilization) under STR and DTR."""

    prop_delays_ms: np.ndarray
    str_utilization: np.ndarray
    dtr_utilization: np.ndarray

    def correlation(self, scheme: str) -> float:
        """Pearson correlation between link delay and link utilization."""
        util = self.str_utilization if scheme == "str" else self.dtr_utilization
        return float(np.corrcoef(self.prop_delays_ms, util)[0, 1])

    def format(self) -> str:
        lines = [
            "Fig.7 [random, SLA-based cost] link load vs propagation delay",
            f"corr(delay, util) STR={self.correlation('str'):+.3f} "
            f"DTR={self.correlation('dtr'):+.3f}",
        ]
        order = np.argsort(self.prop_delays_ms)
        rows = [
            (
                float(self.prop_delays_ms[i]),
                float(self.str_utilization[i]),
                float(self.dtr_utilization[i]),
            )
            for i in order[:: max(1, len(order) // 15)]
        ]
        lines.append(format_table(["delay_ms", "STR_util", "DTR_util"], rows))
        return "\n".join(lines)


def fig7(
    target_utilization: float = 0.6,
    high_density: float = 0.30,
    scale: float = 1.0,
    seed: int = 1,
) -> Fig7Result:
    """Reproduce Fig. 7: under STR, short links attract disproportionate load."""
    config = _base_config(
        scale,
        seed,
        topology="random",
        mode=SLA_MODE,
        high_density=high_density,
        target_utilization=target_utilization,
    )
    result = run_comparison(config)
    from repro.eval.experiment import build_network

    net = build_network(config.topology, config.seed)
    return Fig7Result(
        prop_delays_ms=net.prop_delays(),
        str_utilization=result.str_evaluation.utilization,
        dtr_utilization=result.dtr_evaluation.utilization,
    )


# ----------------------------------------------------------------------
# Figure 8 — sink communication pattern, uniform vs local clients
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig8Result:
    """Fig. 8: R_L vs load for uniformly vs locally placed sink clients."""

    mode: str
    series: tuple[RatioSeries, ...]

    def format(self) -> str:
        blocks = [
            f"Fig.8 [powerlaw, {self.mode}-based cost] sink model, f=20% k=10%"
        ]
        for s in self.series:
            blocks.append(f"-- {s.label}")
            blocks.append(
                format_series("target_util", ["measured_AD", "R_H", "R_L"], s.rows())
            )
        return "\n".join(blocks)


def fig8(
    mode: str,
    targets: Sequence[float] = DEFAULT_TARGETS,
    scale: float = 1.0,
    seed: int = 1,
) -> Fig8Result:
    """Reproduce Fig. 8(a) (``mode="load"``) or 8(b) (``mode="sla"``)."""
    series = []
    for placement in ("uniform", "local"):
        config = _base_config(
            scale,
            seed,
            topology="powerlaw",
            mode=mode,
            high_model="sink",
            sink_placement=placement,
            high_fraction=0.20,
        )
        results = sweep_utilization(config, targets)
        series.append(_series_from_results(placement.capitalize(), results))
    return Fig8Result(mode=mode, series=tuple(series))


# ----------------------------------------------------------------------
# Figure 9 — impact of the SLA delay bound
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig9Point:
    """One SLA-bound setting of Fig. 9, STR vs DTR side by side."""

    theta_ms: float
    str_violations: int
    dtr_violations: int
    str_phi_low: float
    dtr_phi_low: float
    str_max_utilization: float
    dtr_max_utilization: float


@dataclass(frozen=True)
class Fig9Result:
    """Fig. 9(a-c): SLA violations, low-priority cost, and max utilization."""

    points: tuple[Fig9Point, ...]

    def format(self) -> str:
        rows = [
            (
                p.theta_ms,
                p.str_violations,
                p.dtr_violations,
                p.str_phi_low,
                p.dtr_phi_low,
                p.str_max_utilization,
                p.dtr_max_utilization,
            )
            for p in self.points
        ]
        header = "Fig.9 [random, SLA sweep] f=30% k=30% AD~0.5"
        body = format_table(
            [
                "theta_ms",
                "STR_viol",
                "DTR_viol",
                "STR_PhiL",
                "DTR_PhiL",
                "STR_maxU",
                "DTR_maxU",
            ],
            rows,
        )
        return f"{header}\n{body}"


def fig9(
    thetas_ms: Sequence[float] = (25.0, 27.5, 30.0, 32.5, 35.0),
    target_utilization: float = 0.5,
    scale: float = 1.0,
    seed: int = 1,
) -> Fig9Result:
    """Reproduce Fig. 9: loosening theta closes most of the STR-DTR gap."""
    points = []
    for theta in thetas_ms:
        config = _base_config(
            scale,
            seed,
            topology="random",
            mode=SLA_MODE,
            high_density=0.30,
            target_utilization=target_utilization,
        )
        config = replace(config, sla_params=SlaParams(theta_ms=float(theta)))
        result = run_comparison(config)
        points.append(
            Fig9Point(
                theta_ms=float(theta),
                str_violations=result.str_evaluation.violations,
                dtr_violations=result.dtr_evaluation.violations,
                str_phi_low=result.str_evaluation.phi_low,
                dtr_phi_low=result.dtr_evaluation.phi_low,
                str_max_utilization=result.str_evaluation.max_utilization,
                dtr_max_utilization=result.dtr_evaluation.max_utilization,
            )
        )
    return Fig9Result(points=tuple(points))


# ----------------------------------------------------------------------
# Table 1 — relaxed STR vs DTR
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Table1Row:
    """One load level of Table 1 for one topology."""

    average_utilization: float
    ratio_low: float
    ratio_low_5pct: float
    ratio_low_30pct: float


@dataclass(frozen=True)
class Table1Result:
    """Table 1: low-priority performance of epsilon-relaxed STR vs DTR."""

    rows_by_topology: dict[str, tuple[Table1Row, ...]]

    def format(self) -> str:
        blocks = ["Table 1 [load-based cost] relaxed STR vs DTR, f=30% k=10%"]
        for topology, rows in self.rows_by_topology.items():
            blocks.append(f"-- {topology} topology")
            blocks.append(
                format_table(
                    ["AD", "R_L", "R_L,5%", "R_L,30%"],
                    [
                        (
                            r.average_utilization,
                            r.ratio_low,
                            r.ratio_low_5pct,
                            r.ratio_low_30pct,
                        )
                        for r in rows
                    ],
                )
            )
        return "\n".join(blocks)


# ----------------------------------------------------------------------
# Campaign-backed figures: aggregate stored records instead of recomputing
# ----------------------------------------------------------------------
def series_from_campaign(
    store,
    label: str,
    topology: str,
    mode: str,
    high_fraction: Optional[float] = None,
    high_density: Optional[float] = None,
) -> RatioSeries:
    """One figure curve from a campaign store's aggregated records.

    ``store`` is a campaign directory path, a
    :class:`~repro.eval.campaign.CampaignStore`, or an already computed
    :class:`~repro.eval.campaign.CampaignAggregate`.  Points are
    seed-averaged and come back ordered by target utilization, exactly
    like a freshly computed :func:`sweep_utilization` series — but
    reading records costs milliseconds, so a stored campaign can be
    re-plotted, re-filtered, and re-aggregated for free.
    """
    from repro.eval.campaign import CampaignAggregate, aggregate_campaign

    aggregate = store if isinstance(store, CampaignAggregate) else aggregate_campaign(store)
    points = aggregate.select(
        topology=topology,
        mode=mode,
        high_fraction=high_fraction,
        high_density=high_density,
    )
    if not points:
        raise ValueError(
            f"campaign holds no records for topology={topology!r} mode={mode!r}"
        )
    return RatioSeries(
        label=label,
        points=tuple(
            RatioPoint(
                target_utilization=p.target_utilization,
                measured_utilization=p.measured_utilization,
                ratio_high=p.ratio_high,
                ratio_low=p.ratio_low,
            )
            for p in points
        ),
    )


def fig2_from_campaign(
    store,
    topology: str,
    mode: str,
    high_fraction: float = 0.30,
    high_density: float = 0.10,
) -> Fig2Result:
    """A Fig. 2 panel aggregated from stored campaign records.

    The non-swept dimensions default to the paper's base configuration
    (f=30 %, k=10 %) and are always pinned — a campaign that sweeps both
    grids would otherwise leak foreign grid points into the curve.
    """
    return Fig2Result(
        topology=topology,
        mode=mode,
        series=series_from_campaign(
            store,
            topology,
            topology,
            mode,
            high_fraction=high_fraction,
            high_density=high_density,
        ),
    )


def fig4_from_campaign(
    store,
    fractions: Sequence[float] = (0.20, 0.40),
    high_density: float = 0.10,
) -> Fig4Result:
    """Fig. 4 (impact of ``f``) aggregated from stored campaign records."""
    return Fig4Result(
        series=tuple(
            series_from_campaign(
                store,
                f"f={f:.0%}",
                "random",
                LOAD_MODE,
                high_fraction=float(f),
                high_density=high_density,
            )
            for f in fractions
        )
    )


def fig5_from_campaign(
    store,
    mode: str,
    densities: Sequence[float] = (0.10, 0.30),
    high_fraction: float = 0.30,
) -> Fig5Result:
    """Fig. 5 (impact of ``k``) aggregated from stored campaign records."""
    return Fig5Result(
        mode=mode,
        series=tuple(
            series_from_campaign(
                store,
                f"k={k:.0%}",
                "random",
                mode,
                high_fraction=high_fraction,
                high_density=float(k),
            )
            for k in densities
        ),
    )


def table1(
    topologies: Sequence[str] = ("random", "powerlaw", "isp"),
    targets: Sequence[float] = (0.45, 0.55, 0.65, 0.75, 0.85),
    scale: float = 1.0,
    seed: int = 1,
) -> Table1Result:
    """Reproduce Table 1: relaxation narrows but never closes the gap."""
    rows_by_topology = {}
    for topology in topologies:
        config = _base_config(
            scale,
            seed,
            topology=topology,
            mode=LOAD_MODE,
            relaxation_epsilons=(0.05, 0.30),
        )
        rows = []
        for result in sweep_utilization(config, targets):
            rows.append(
                Table1Row(
                    average_utilization=result.average_utilization,
                    ratio_low=result.ratio_low,
                    ratio_low_5pct=result.relaxed_ratio_low(0.05),
                    ratio_low_30pct=result.relaxed_ratio_low(0.30),
                )
            )
        rows_by_topology[topology] = tuple(rows)
    return Table1Result(rows_by_topology=rows_by_topology)


# ----------------------------------------------------------------------
# Scenario-robustness figure — degradation by scenario class
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioClassRow:
    """One scenario class: STR vs DTR worst-case degradation."""

    kind: str
    scenarios: int
    disconnected: int
    str_worst_degradation: float
    dtr_worst_degradation: float
    str_mean_phi_low: float
    dtr_mean_phi_low: float


@dataclass(frozen=True)
class FigScenariosResult:
    """Extension figure: per-scenario-class degradation of STR vs DTR.

    For every scenario class (single-link, node, SRLG, hot-spot surge,
    ...) the worst-case low-priority cost under the class's sweep grid
    is reported relative to the scheme's own intact baseline.  The
    robustness companion to the paper's intact-network comparisons:
    whether DTR's advantage survives degraded conditions.
    """

    topology: str
    mode: str
    kinds: tuple[str, ...]
    baseline_str_phi_low: float
    baseline_dtr_phi_low: float
    rows: tuple[ScenarioClassRow, ...]

    def format(self) -> str:
        header = (
            f"Scenario robustness [{self.topology}, {self.mode}-based cost] "
            f"worst-case degradation by scenario class"
        )
        body = format_table(
            ["class", "n", "cut", "STR_worst", "DTR_worst",
             "STR_meanPhiL", "DTR_meanPhiL"],
            [
                (
                    r.kind,
                    r.scenarios,
                    r.disconnected,
                    r.str_worst_degradation,
                    r.dtr_worst_degradation,
                    r.str_mean_phi_low,
                    r.dtr_mean_phi_low,
                )
                for r in self.rows
            ],
        )
        return f"{header}\n{body}"


def fig_scenarios(
    topology: str = "isp",
    kinds: Sequence[str] = ("link", "node", "srlg", "surge"),
    target_utilization: float = 0.6,
    scale: float = 1.0,
    seed: int = 1,
) -> FigScenariosResult:
    """Sweep STR and DTR settings across scenario grids, per class.

    Optimizes both schemes on the intact network (one
    :func:`run_comparison`), then sweeps each weight setting — unchanged,
    as deployed OSPF/MT-OSPF would — across the concatenated scenario
    grids of ``kinds`` via the batched scenario engine.
    """
    from repro.api.session import Session
    from repro.eval.experiment import build_network
    from repro.eval.robustness import scenario_sweep_session
    from repro.scenarios.spec import ScenarioSet

    config = _base_config(
        scale,
        seed,
        topology=topology,
        mode=LOAD_MODE,
        target_utilization=target_utilization,
    )
    result = run_comparison(config)
    net = build_network(topology, seed)
    grid = ScenarioSet.from_kinds(net, kinds)
    reports = {}
    for label, high_w, low_w in (
        ("str", result.str_result.weights, result.str_result.weights),
        ("dtr", result.dtr_result.high_weights, result.dtr_result.low_weights),
    ):
        session = Session(
            net, result.high_traffic, result.low_traffic, cost_model="load"
        )
        session.set_weights(high_w, low_w)
        reports[label] = scenario_sweep_session(session, grid)

    str_by_class = reports["str"].by_class()
    dtr_by_class = reports["dtr"].by_class()
    str_deg = reports["str"].degradation_by_class()
    dtr_deg = reports["dtr"].degradation_by_class()
    rows = tuple(
        ScenarioClassRow(
            kind=kind,
            scenarios=str_by_class[kind].scenarios,
            disconnected=str_by_class[kind].disconnected,
            str_worst_degradation=str_deg[kind],
            dtr_worst_degradation=dtr_deg[kind],
            str_mean_phi_low=str_by_class[kind].mean_secondary,
            dtr_mean_phi_low=dtr_by_class[kind].mean_secondary,
        )
        for kind in sorted(str_by_class)
    )
    return FigScenariosResult(
        topology=topology,
        mode=LOAD_MODE,
        kinds=tuple(kinds),
        baseline_str_phi_low=reports["str"].baseline_secondary,
        baseline_dtr_phi_low=reports["dtr"].baseline_secondary,
        rows=rows,
    )
