"""Heavy-tailed rank selection ``P(k) proportional to k^-tau`` (paper Algorithm 2).

The FindH/FindL neighborhood picks where in the cost-sorted link list to
take its candidate sets from, drawing a rank from a truncated power law
[20].  With ``tau -> 0`` links are selected independently of cost; with
``tau -> inf`` only the extreme-cost links are considered.  The paper uses
``tau = 1.5``.
"""

from __future__ import annotations

import bisect
import random
from functools import lru_cache

import numpy as np


@lru_cache(maxsize=256)
def _rank_cdf(max_rank: int, tau: float) -> tuple[float, ...]:
    ranks = np.arange(1, max_rank + 1, dtype=float)
    weights = ranks ** (-tau)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    return tuple(cdf.tolist())


def rank_probabilities(max_rank: int, tau: float) -> np.ndarray:
    """Probability of each rank ``1 .. max_rank`` under ``P(k) ~ k^-tau``."""
    if max_rank < 1:
        raise ValueError(f"max_rank must be >= 1, got {max_rank}")
    if tau < 0:
        raise ValueError(f"tau must be non-negative, got {tau}")
    cdf = np.asarray(_rank_cdf(max_rank, tau))
    return np.diff(cdf, prepend=0.0)


def draw_rank(max_rank: int, tau: float, rng: random.Random) -> int:
    """Draw a rank from ``{1, ..., max_rank}`` with ``P(k) ~ k^-tau``."""
    if max_rank < 1:
        raise ValueError(f"max_rank must be >= 1, got {max_rank}")
    if tau < 0:
        raise ValueError(f"tau must be non-negative, got {tau}")
    if max_rank == 1:
        return 1
    cdf = _rank_cdf(max_rank, tau)
    return bisect.bisect_left(cdf, rng.random()) + 1
