"""Single-topology (STR) weight search and its epsilon-relaxed variant.

The baseline follows the "single weight change" local search of
Fortz-Thorup [2]: candidate moves change a single link weight, links being
chosen with the same cost-rank bias as the DTR neighborhood, and the
search diversifies after ``M`` stale iterations.

The relaxed variant (paper Sections 3.3.2 and 5.3.1) additionally records,
for each requested ``epsilon``, the best low-priority cost among weight
settings whose high-priority cost stays within ``(1 + epsilon)`` of the
best high-priority cost seen so far.
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.core.evaluator import DualTopologyEvaluator, Evaluation
from repro.core.lexicographic import LexCost
from repro.core.neighborhood import NeighborhoodSampler
from repro.core.perturbation import perturb_weights
from repro.core.progress import ProgressFn, ProgressTicker
from repro.core.search_params import SearchParams
from repro.determinism import default_rng
from repro.routing.weights import random_weights

__all__ = ["ProgressFn", "RelaxedSolution", "StrResult", "optimize_str"]


@dataclass(frozen=True)
class RelaxedSolution:
    """Best relaxed STR solution for one ``epsilon``.

    Attributes:
        epsilon: The allowed high-priority degradation.
        weights: The recorded weight vector.
        primary_cost: Its high-priority cost (``Phi_H`` or ``Lambda``).
        phi_low: Its low-priority cost ``Phi_L``.
    """

    epsilon: float
    weights: np.ndarray
    primary_cost: float
    phi_low: float


@dataclass
class StrResult:
    """Outcome of an STR search.

    Attributes:
        weights: Best (strict lexicographic) weight vector found.
        objective: Its lexicographic cost.
        evaluation: Full evaluation of the best weights.
        relaxed: Best relaxed solution per requested epsilon.
        history: ``(iteration, objective)`` recorded at each improvement.
        iterations: Iterations executed.
        evaluations: Weight settings evaluated (cache misses included).
    """

    weights: np.ndarray
    objective: LexCost
    evaluation: Evaluation
    relaxed: dict[float, RelaxedSolution] = field(default_factory=dict)
    history: list[tuple[int, LexCost]] = field(default_factory=list)
    iterations: int = 0
    evaluations: int = 0


def _descending_link_order(evaluation: Evaluation) -> list[int]:
    keys = evaluation.high_link_sort_keys()
    return sorted(range(len(keys)), key=lambda i: keys[i], reverse=True)


def optimize_str(
    evaluator: DualTopologyEvaluator,
    params: Optional[SearchParams] = None,
    rng: Optional[random.Random] = None,
    initial_weights: Optional[Sequence[int]] = None,
    relaxation_epsilons: Iterable[float] = (),
    progress: Optional[ProgressFn] = None,
) -> StrResult:
    """Deprecated entry point: delegates to the ``"str"`` strategy.

    Use :func:`repro.api.optimize` with ``strategy="str"`` instead; this
    shim wraps the evaluator in a :class:`repro.api.Session`, routes the
    call through the strategy registry, and unwraps the legacy
    :class:`StrResult` — results are identical for a fixed ``rng``.

    Args:
        evaluator: Cost evaluator (load or SLA mode).
        params: Search budgets; library defaults if omitted.
        rng: Source of randomness; a fresh unseeded one is created if omitted.
        initial_weights: Starting point; random weights if omitted.
        relaxation_epsilons: Epsilons for which relaxed solutions are tracked.
        progress: Optional heartbeat callback.

    Returns:
        A :class:`StrResult`.
    """
    warnings.warn(
        "optimize_str is deprecated; use "
        "repro.api.optimize(session, strategy='str')",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.api import optimize as api_optimize
    from repro.api.session import Session

    result = api_optimize(
        Session.from_evaluator(evaluator),
        strategy="str",
        params=params,
        rng=rng or default_rng("core/str_search"),
        initial_weights=initial_weights,
        relaxation_epsilons=relaxation_epsilons,
        progress=progress,
    )
    return result.raw


def _optimize_str_impl(
    evaluator: DualTopologyEvaluator,
    params: Optional[SearchParams] = None,
    rng: Optional[random.Random] = None,
    initial_weights: Optional[Sequence[int]] = None,
    relaxation_epsilons: Iterable[float] = (),
    progress: Optional[ProgressFn] = None,
) -> StrResult:
    """Search for a single weight vector minimizing the lexicographic objective.

    The implementation behind the registered ``"str"`` strategy: the
    single-weight-change local search of Fortz & Thorup [FT00] run for
    the combined budget of the three DTR routines, so STR and DTR receive
    comparable computational effort.

    Args:
        evaluator: Cost evaluator (load or SLA mode).
        params: Search budgets; library defaults if omitted.
        rng: Source of randomness; a fresh unseeded one is created if omitted.
        initial_weights: Starting point; random weights if omitted.
        relaxation_epsilons: Epsilons for which relaxed solutions are tracked.
        progress: Optional heartbeat callback, called as
            ``progress("str", iteration, total)`` every
            ``params.progress_interval`` iterations and once when the
            search terminates.

    Returns:
        A :class:`StrResult`.
    """
    params = params or SearchParams()
    rng = rng or default_rng("core/str_search")
    num_links = evaluator.network.num_links
    epsilons = sorted(set(float(e) for e in relaxation_epsilons))
    if any(e < 0 for e in epsilons):
        raise ValueError("relaxation epsilons must be non-negative")

    if initial_weights is None:
        current = random_weights(num_links, rng, params.min_weight, params.max_weight)
    else:
        current = np.array(initial_weights, dtype=np.int64)

    sampler = NeighborhoodSampler(params, rng)
    start_evals = evaluator.evaluations

    evaluation = evaluator.evaluate_str(current)
    best_weights = current.copy()
    best_objective = evaluation.objective
    best_primary = best_objective.primary
    history = [(0, best_objective)]
    relaxed: dict[float, RelaxedSolution] = {}

    def consider_relaxed(weights: np.ndarray, candidate: Evaluation) -> None:
        primary = candidate.objective.primary
        for eps in epsilons:
            if primary > (1.0 + eps) * best_primary:
                continue
            incumbent = relaxed.get(eps)
            if incumbent is None or candidate.phi_low < incumbent.phi_low:
                relaxed[eps] = RelaxedSolution(
                    epsilon=eps,
                    weights=weights.copy(),
                    primary_cost=primary,
                    phi_low=candidate.phi_low,
                )

    consider_relaxed(current, evaluation)
    stale = 0
    ticker = ProgressTicker(progress, params.progress_interval)
    total_iterations = params.total_iterations()
    for iteration in range(1, total_iterations + 1):
        ticker.tick("str", iteration, total_iterations)
        order = _descending_link_order(evaluation)
        improved = False
        base = current
        for delta in sampler.single_change_deltas(base, order):
            neighbor, candidate = evaluator.evaluate_str_neighbor(base, delta)
            consider_relaxed(neighbor, candidate)
            if candidate.objective < evaluation.objective:
                current, evaluation = neighbor, candidate
                improved = True
        if improved and evaluation.objective < best_objective:
            best_weights = current.copy()
            best_objective = evaluation.objective
            best_primary = min(best_primary, best_objective.primary)
            history.append((iteration, best_objective))
            stale = 0
        else:
            stale += 1
        if stale >= params.diversification_interval:
            current = perturb_weights(
                current,
                params.perturb_high_fraction,
                rng,
                params.min_weight,
                params.max_weight,
            )
            evaluation = evaluator.evaluate_str(current)
            consider_relaxed(current, evaluation)
            stale = 0

    ticker.finish("str", total_iterations)
    return StrResult(
        weights=best_weights,
        objective=best_objective,
        evaluation=evaluator.evaluate_str(best_weights),
        relaxed=relaxed,
        history=history,
        iterations=total_iterations,
        evaluations=evaluator.evaluations - start_evals,
    )
