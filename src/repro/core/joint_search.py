"""STR search under the joint scalar cost ``J = alpha * Phi_H + Phi_L``.

Section 3.3.1 argues that collapsing the two class objectives into one
weighted sum is fragile: too small an ``alpha`` produces priority
inversions, too large an ``alpha`` adds nothing over the lexicographic
formulation, and no single value works across configurations.  This
module makes that argument quantitative at full network scale: it runs
the same local search as :func:`repro.core.str_search.optimize_str` but
driven by ``J``, and provides a sweep utility that measures, per alpha,
the achieved class costs and whether a priority inversion occurred
relative to the lexicographic solution.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.core.evaluator import LOAD_MODE, DualTopologyEvaluator
from repro.core.lexicographic import LexCost
from repro.core.neighborhood import NeighborhoodSampler
from repro.core.perturbation import perturb_weights
from repro.core.search_params import SearchParams
from repro.costs.load_cost import LoadCostEvaluation
from repro.routing.weights import random_weights


@dataclass
class JointResult:
    """Outcome of a joint-cost STR search for one alpha.

    Attributes:
        alpha: The trade-off multiplier used.
        weights: Best weight vector found.
        joint_cost: Best ``J`` value.
        phi_high: High-priority cost of the best weights.
        phi_low: Low-priority cost of the best weights.
        history: ``(iteration, J)`` at each improvement.
    """

    alpha: float
    weights: np.ndarray
    joint_cost: float
    phi_high: float
    phi_low: float
    history: list[tuple[int, float]] = field(default_factory=list)

    @property
    def lexicographic(self) -> LexCost:
        """The class costs viewed lexicographically."""
        return LexCost(self.phi_high, self.phi_low)


def optimize_joint(
    evaluator: DualTopologyEvaluator,
    alpha: float,
    params: Optional[SearchParams] = None,
    rng: Optional[random.Random] = None,
    initial_weights: Optional[Sequence[int]] = None,
) -> JointResult:
    """Search a single weight vector minimizing ``J = alpha*Phi_H + Phi_L``.

    Args:
        evaluator: A *load-mode* evaluator (the joint cost is defined on
            the load-based class costs).
        alpha: Non-negative trade-off multiplier.
        params: Search budgets; library defaults if omitted.
        rng: Source of randomness; a fresh unseeded one is created if omitted.
        initial_weights: Starting point; random weights if omitted.

    Returns:
        A :class:`JointResult`.

    Raises:
        ValueError: if the evaluator is not in load mode or alpha < 0.
    """
    if evaluator.mode != LOAD_MODE:
        raise ValueError("joint-cost search requires a load-mode evaluator")
    if alpha < 0:
        raise ValueError(f"alpha must be non-negative, got {alpha}")
    params = params or SearchParams()
    rng = rng or random.Random()
    num_links = evaluator.network.num_links

    if initial_weights is None:
        current = random_weights(num_links, rng, params.min_weight, params.max_weight)
    else:
        current = np.array(initial_weights, dtype=np.int64)

    def joint(evaluation: LoadCostEvaluation) -> float:
        return alpha * evaluation.phi_high + evaluation.phi_low

    sampler = NeighborhoodSampler(params, rng)
    evaluation = evaluator.evaluate_str(current)
    best_weights = current.copy()
    best_joint = joint(evaluation)
    best_evaluation = evaluation
    history = [(0, best_joint)]
    stale = 0

    for iteration in range(1, params.total_iterations() + 1):
        per_link = alpha * evaluation.per_link_high + evaluation.per_link_low
        order = list(np.argsort(-per_link, kind="stable"))
        improved = False
        base = current
        for delta in sampler.single_change_deltas(base, order):
            neighbor, candidate = evaluator.evaluate_str_neighbor(base, delta)
            if joint(candidate) < joint(evaluation):
                current, evaluation = neighbor, candidate
                improved = True
        if improved and joint(evaluation) < best_joint:
            best_joint = joint(evaluation)
            best_weights = current.copy()
            best_evaluation = evaluation
            history.append((iteration, best_joint))
            stale = 0
        else:
            stale += 1
        if stale >= params.diversification_interval:
            current = perturb_weights(
                current,
                params.perturb_high_fraction,
                rng,
                params.min_weight,
                params.max_weight,
            )
            evaluation = evaluator.evaluate_str(current)
            stale = 0

    return JointResult(
        alpha=alpha,
        weights=best_weights,
        joint_cost=best_joint,
        phi_high=best_evaluation.phi_high,
        phi_low=best_evaluation.phi_low,
        history=history,
    )


@dataclass(frozen=True)
class AlphaSweepPoint:
    """One alpha of :func:`alpha_sweep`."""

    alpha: float
    phi_high: float
    phi_low: float
    priority_inversion: bool


def alpha_sweep(
    evaluator: DualTopologyEvaluator,
    alphas: Iterable[float],
    reference_phi_high: float,
    params: Optional[SearchParams] = None,
    seed: int = 1,
    inversion_tolerance: float = 0.02,
) -> list[AlphaSweepPoint]:
    """Optimize ``J`` for each alpha and flag priority inversions.

    A priority inversion is declared when the joint optimum's high-priority
    cost exceeds the lexicographic reference ``reference_phi_high`` by more
    than ``inversion_tolerance`` (relative), i.e. the joint cost traded away
    high-priority performance that the lexicographic objective protects.

    Args:
        evaluator: Load-mode evaluator.
        alphas: Alpha values to sweep.
        reference_phi_high: ``Phi_H`` of the lexicographic STR solution.
        params: Search budgets shared by all alphas.
        seed: Base seed; alpha index ``i`` uses ``seed + i``.
        inversion_tolerance: Relative slack before declaring inversion.

    Returns:
        One :class:`AlphaSweepPoint` per alpha, in input order.
    """
    points = []
    for i, alpha in enumerate(alphas):
        result = optimize_joint(
            evaluator, float(alpha), params=params, rng=random.Random(seed + i)
        )
        inversion = result.phi_high > reference_phi_high * (1.0 + inversion_tolerance)
        points.append(
            AlphaSweepPoint(
                alpha=float(alpha),
                phi_high=result.phi_high,
                phi_low=result.phi_low,
                priority_inversion=inversion,
            )
        )
    return points
