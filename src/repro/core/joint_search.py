"""STR search under the joint scalar cost ``J = alpha * Phi_H + Phi_L``.

Section 3.3.1 argues that collapsing the two class objectives into one
weighted sum is fragile: too small an ``alpha`` produces priority
inversions, too large an ``alpha`` adds nothing over the lexicographic
formulation, and no single value works across configurations.  This
module makes that argument quantitative at full network scale: it runs
the same local search as :func:`repro.core.str_search.optimize_str` but
driven by ``J``, and provides a sweep utility that measures, per alpha,
the achieved class costs and whether a priority inversion occurred
relative to the lexicographic solution.
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.core.evaluator import LOAD_MODE, DualTopologyEvaluator
from repro.core.lexicographic import LexCost
from repro.core.neighborhood import NeighborhoodSampler
from repro.core.perturbation import perturb_weights
from repro.core.progress import ProgressFn, ProgressTicker
from repro.core.search_params import SearchParams
from repro.costs.load_cost import LoadCostEvaluation
from repro.determinism import default_rng
from repro.routing.weights import random_weights


@dataclass
class JointResult:
    """Outcome of a joint-cost STR search for one alpha.

    Attributes:
        alpha: The trade-off multiplier used.
        weights: Best weight vector found.
        joint_cost: Best ``J`` value.
        phi_high: High-priority cost of the best weights.
        phi_low: Low-priority cost of the best weights.
        history: ``(iteration, J)`` at each improvement.
    """

    alpha: float
    weights: np.ndarray
    joint_cost: float
    phi_high: float
    phi_low: float
    history: list[tuple[int, float]] = field(default_factory=list)

    @property
    def lexicographic(self) -> LexCost:
        """The class costs viewed lexicographically."""
        return LexCost(self.phi_high, self.phi_low)


def optimize_joint(
    evaluator: DualTopologyEvaluator,
    alpha: float,
    params: Optional[SearchParams] = None,
    rng: Optional[random.Random] = None,
    initial_weights: Optional[Sequence[int]] = None,
    progress: Optional[ProgressFn] = None,
) -> JointResult:
    """Deprecated entry point: delegates to the ``"joint"`` strategy.

    Use :func:`repro.api.optimize` with ``strategy="joint"`` instead;
    this shim wraps the evaluator in a :class:`repro.api.Session`, routes
    the call through the strategy registry, and unwraps the legacy
    :class:`JointResult` — results are identical for a fixed ``rng``.
    """
    warnings.warn(
        "optimize_joint is deprecated; use "
        "repro.api.optimize(session, strategy='joint')",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.api import optimize as api_optimize
    from repro.api.session import Session

    result = api_optimize(
        Session.from_evaluator(evaluator),
        strategy="joint",
        alpha=alpha,
        params=params,
        rng=rng or default_rng("core/joint_search"),
        initial_weights=initial_weights,
        progress=progress,
    )
    return result.raw


def _optimize_joint_impl(
    evaluator: DualTopologyEvaluator,
    alpha: float,
    params: Optional[SearchParams] = None,
    rng: Optional[random.Random] = None,
    initial_weights: Optional[Sequence[int]] = None,
    progress: Optional[ProgressFn] = None,
) -> JointResult:
    """Search a single weight vector minimizing ``J = alpha*Phi_H + Phi_L``.

    The implementation behind the registered ``"joint"`` strategy.

    Args:
        evaluator: A *load-mode* evaluator (the joint cost is defined on
            the load-based class costs).
        alpha: Non-negative trade-off multiplier.
        params: Search budgets; library defaults if omitted.
        rng: Source of randomness; a fresh unseeded one is created if omitted.
        initial_weights: Starting point; random weights if omitted.
        progress: Optional heartbeat callback, called as
            ``progress("joint", iteration, total)`` every
            ``params.progress_interval`` iterations and once at
            termination.

    Returns:
        A :class:`JointResult`.

    Raises:
        ValueError: if the evaluator is not in load mode or alpha < 0.
    """
    if evaluator.mode != LOAD_MODE:
        raise ValueError("joint-cost search requires a load-mode evaluator")
    if alpha < 0:
        raise ValueError(f"alpha must be non-negative, got {alpha}")
    params = params or SearchParams()
    rng = rng or default_rng("core/joint_search")
    num_links = evaluator.network.num_links

    if initial_weights is None:
        current = random_weights(num_links, rng, params.min_weight, params.max_weight)
    else:
        current = np.array(initial_weights, dtype=np.int64)

    def joint(evaluation: LoadCostEvaluation) -> float:
        return alpha * evaluation.phi_high + evaluation.phi_low

    sampler = NeighborhoodSampler(params, rng)
    evaluation = evaluator.evaluate_str(current)
    best_weights = current.copy()
    best_joint = joint(evaluation)
    best_evaluation = evaluation
    history = [(0, best_joint)]
    stale = 0
    ticker = ProgressTicker(progress, params.progress_interval)
    total_iterations = params.total_iterations()

    for iteration in range(1, total_iterations + 1):
        ticker.tick("joint", iteration, total_iterations)
        per_link = alpha * evaluation.per_link_high + evaluation.per_link_low
        order = list(np.argsort(-per_link, kind="stable"))
        improved = False
        base = current
        for delta in sampler.single_change_deltas(base, order):
            neighbor, candidate = evaluator.evaluate_str_neighbor(base, delta)
            if joint(candidate) < joint(evaluation):
                current, evaluation = neighbor, candidate
                improved = True
        if improved and joint(evaluation) < best_joint:
            best_joint = joint(evaluation)
            best_weights = current.copy()
            best_evaluation = evaluation
            history.append((iteration, best_joint))
            stale = 0
        else:
            stale += 1
        if stale >= params.diversification_interval:
            current = perturb_weights(
                current,
                params.perturb_high_fraction,
                rng,
                params.min_weight,
                params.max_weight,
            )
            evaluation = evaluator.evaluate_str(current)
            stale = 0

    ticker.finish("joint", total_iterations)
    return JointResult(
        alpha=alpha,
        weights=best_weights,
        joint_cost=best_joint,
        phi_high=best_evaluation.phi_high,
        phi_low=best_evaluation.phi_low,
        history=history,
    )


@dataclass(frozen=True)
class AlphaSweepPoint:
    """One alpha of :func:`alpha_sweep`."""

    alpha: float
    phi_high: float
    phi_low: float
    priority_inversion: bool


def alpha_sweep(
    evaluator: DualTopologyEvaluator,
    alphas: Iterable[float],
    reference_phi_high: float,
    params: Optional[SearchParams] = None,
    seed: int = 1,
    inversion_tolerance: float = 0.02,
) -> list[AlphaSweepPoint]:
    """Optimize ``J`` for each alpha and flag priority inversions.

    A priority inversion is declared when the joint optimum's high-priority
    cost exceeds the lexicographic reference ``reference_phi_high`` by more
    than ``inversion_tolerance`` (relative), i.e. the joint cost traded away
    high-priority performance that the lexicographic objective protects.

    Args:
        evaluator: Load-mode evaluator.
        alphas: Alpha values to sweep.
        reference_phi_high: ``Phi_H`` of the lexicographic STR solution.
        params: Search budgets shared by all alphas.
        seed: Base seed; alpha index ``i`` uses ``seed + i``.
        inversion_tolerance: Relative slack before declaring inversion.

    Returns:
        One :class:`AlphaSweepPoint` per alpha, in input order.
    """
    points = []
    for i, alpha in enumerate(alphas):
        result = _optimize_joint_impl(
            evaluator, float(alpha), params=params, rng=random.Random(seed + i)
        )
        inversion = result.phi_high > reference_phi_high * (1.0 + inversion_tolerance)
        points.append(
            AlphaSweepPoint(
                alpha=float(alpha),
                phi_high=result.phi_high,
                phi_low=result.phi_low,
                priority_inversion=inversion,
            )
        )
    return points
