"""Cached evaluation of dual weight settings under either cost function.

The search evaluates thousands of weight settings that differ from each
other in only one topology (FindH perturbs only the high-priority weights,
FindL only the low-priority weights).  The evaluator therefore caches two
independent layers keyed by weight vector:

* the *high layer* — high-priority routing, loads, residual capacities,
  per-link high cost, and (in SLA mode) link delays and per-pair penalties;
* the *low layer* — low-priority routing and loads.

A full evaluation combines one entry of each layer with a cheap O(|E|)
costing pass, so FindL iterations reuse the entire high layer and FindH
iterations reuse the low-priority loads.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.costs.fortz import fortz_cost_vector
from repro.costs.load_cost import LoadCostEvaluation
from repro.costs.residual import residual_capacities
from repro.costs.sla import SlaCostEvaluation, SlaParams, link_delays_ms
from repro.network.graph import Network
from repro.routing.state import Routing
from repro.routing.weights import weights_key
from repro.traffic.matrix import TrafficMatrix

LOAD_MODE = "load"
SLA_MODE = "sla"

Evaluation = Union[LoadCostEvaluation, SlaCostEvaluation]


@dataclass
class _HighLayer:
    routing: Routing
    loads: np.ndarray
    residual: np.ndarray
    per_link_cost: np.ndarray
    link_delays: Optional[np.ndarray] = None
    pair_delays: Optional[dict[tuple[int, int], float]] = None
    penalty: float = 0.0
    violations: int = 0


@dataclass
class _LowLayer:
    routing: Routing
    loads: np.ndarray


class _LruCache:
    """A small bytes-keyed LRU cache."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self._capacity = capacity
        self._store: OrderedDict[bytes, object] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: bytes):
        entry = self._store.get(key)
        if entry is not None:
            self._store.move_to_end(key)
            self.hits += 1
        else:
            self.misses += 1
        return entry

    def put(self, key: bytes, value: object) -> None:
        self._store[key] = value
        self._store.move_to_end(key)
        while len(self._store) > self._capacity:
            self._store.popitem(last=False)


class DualTopologyEvaluator:
    """Evaluates ``(W_H, W_L)`` under the load-based or SLA-based objective.

    Args:
        net: The network.
        high_traffic: High-priority traffic matrix ``T_H``.
        low_traffic: Low-priority traffic matrix ``T_L``.
        mode: ``"load"`` for objective ``A`` (Eq. 2) or ``"sla"`` for
            objective ``S`` (Eq. 5).
        sla_params: SLA bound/penalty parameters (SLA mode only).
        cache_size: Entries kept per cache layer.
    """

    def __init__(
        self,
        net: Network,
        high_traffic: TrafficMatrix,
        low_traffic: TrafficMatrix,
        mode: str = LOAD_MODE,
        sla_params: Optional[SlaParams] = None,
        cache_size: int = 128,
    ) -> None:
        if mode not in (LOAD_MODE, SLA_MODE):
            raise ValueError(f"mode must be '{LOAD_MODE}' or '{SLA_MODE}', got {mode!r}")
        if high_traffic.num_nodes != net.num_nodes or low_traffic.num_nodes != net.num_nodes:
            raise ValueError("traffic matrix size does not match the network")
        self._net = net
        self._high_traffic = high_traffic
        self._low_traffic = low_traffic
        self.mode = mode
        self.sla_params = sla_params or SlaParams()
        self._high_cache = _LruCache(cache_size)
        self._low_cache = _LruCache(cache_size)
        self._full_cache = _LruCache(cache_size * 2)
        self.evaluations = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def network(self) -> Network:
        """The network being evaluated."""
        return self._net

    @property
    def high_traffic(self) -> TrafficMatrix:
        """High-priority traffic matrix."""
        return self._high_traffic

    @property
    def low_traffic(self) -> TrafficMatrix:
        """Low-priority traffic matrix."""
        return self._low_traffic

    def evaluate(self, high_weights: np.ndarray, low_weights: np.ndarray) -> Evaluation:
        """Full evaluation of a dual weight setting.

        Returns a :class:`LoadCostEvaluation` in load mode or a
        :class:`SlaCostEvaluation` in SLA mode; both expose ``.objective``
        (the lexicographic cost) and the per-link sort keys the search
        routines consume.
        """
        self.evaluations += 1
        hk = weights_key(np.asarray(high_weights, dtype=np.int64))
        lk = weights_key(np.asarray(low_weights, dtype=np.int64))
        full_key = hk + b"|" + lk
        cached = self._full_cache.get(full_key)
        if cached is not None:
            return cached

        high = self._high_layer(hk, high_weights)
        low = self._low_layer(lk, low_weights)
        per_link_low = fortz_cost_vector(low.loads, high.residual)
        utilization = (high.loads + low.loads) / self._net.capacities()

        if self.mode == LOAD_MODE:
            result: Evaluation = LoadCostEvaluation(
                phi_high=float(high.per_link_cost.sum()),
                phi_low=float(per_link_low.sum()),
                per_link_high=high.per_link_cost,
                per_link_low=per_link_low,
                high_loads=high.loads,
                low_loads=low.loads,
                residual=high.residual,
                utilization=utilization,
            )
        else:
            result = SlaCostEvaluation(
                penalty=high.penalty,
                phi_low=float(per_link_low.sum()),
                violations=high.violations,
                pair_delays_ms=high.pair_delays,
                link_delays=high.link_delays,
                per_link_low=per_link_low,
                high_loads=high.loads,
                low_loads=low.loads,
                residual=high.residual,
                utilization=utilization,
                params=self.sla_params,
            )
        self._full_cache.put(full_key, result)
        return result

    def evaluate_str(self, weights: np.ndarray) -> Evaluation:
        """Evaluate single-topology routing: both classes on ``weights``."""
        return self.evaluate(weights, weights)

    def high_routing(self, high_weights: np.ndarray) -> Routing:
        """The (cached) high-priority routing for ``high_weights``."""
        hk = weights_key(np.asarray(high_weights, dtype=np.int64))
        return self._high_layer(hk, high_weights).routing

    def low_routing(self, low_weights: np.ndarray) -> Routing:
        """The (cached) low-priority routing for ``low_weights``."""
        lk = weights_key(np.asarray(low_weights, dtype=np.int64))
        return self._low_layer(lk, low_weights).routing

    def cache_stats(self) -> dict[str, int]:
        """Hit/miss counters of the three cache layers."""
        return {
            "high_hits": self._high_cache.hits,
            "high_misses": self._high_cache.misses,
            "low_hits": self._low_cache.hits,
            "low_misses": self._low_cache.misses,
            "full_hits": self._full_cache.hits,
            "full_misses": self._full_cache.misses,
        }

    # ------------------------------------------------------------------
    # Layers
    # ------------------------------------------------------------------
    def _high_layer(self, key: bytes, weights: np.ndarray) -> _HighLayer:
        layer = self._high_cache.get(key)
        if layer is not None:
            return layer
        routing = Routing(self._net, weights)
        loads = routing.link_loads(self._high_traffic)
        capacities = self._net.capacities()
        residual = residual_capacities(capacities, loads)
        per_link_cost = fortz_cost_vector(loads, capacities)
        layer = _HighLayer(
            routing=routing, loads=loads, residual=residual, per_link_cost=per_link_cost
        )
        if self.mode == SLA_MODE:
            delays = link_delays_ms(
                self._net, loads, per_link_cost, self.sla_params.packet_size_bits
            )
            pair_delays: dict[tuple[int, int], float] = {}
            penalty = 0.0
            violations = 0
            for s, t, _rate in self._high_traffic.pairs():
                xi = float(routing.pair_link_fractions(s, t) @ delays)
                pair_delays[(s, t)] = xi
                pair_penalty = self.sla_params.pair_penalty(xi)
                if pair_penalty > 0:
                    violations += 1
                    penalty += pair_penalty
            layer.link_delays = delays
            layer.pair_delays = pair_delays
            layer.penalty = penalty
            layer.violations = violations
        self._high_cache.put(key, layer)
        return layer

    def _low_layer(self, key: bytes, weights: np.ndarray) -> _LowLayer:
        layer = self._low_cache.get(key)
        if layer is not None:
            return layer
        routing = Routing(self._net, weights)
        layer = _LowLayer(routing=routing, loads=routing.link_loads(self._low_traffic))
        self._low_cache.put(key, layer)
        return layer
