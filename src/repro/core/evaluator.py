"""Cached, delta-aware evaluation of dual weight settings.

The search evaluates thousands of weight settings that differ from each
other in only one topology (FindH perturbs only the high-priority weights,
FindL only the low-priority weights).  The evaluator therefore caches two
independent layers keyed by weight vector:

* the *high layer* — high-priority routing, per-destination and total
  loads, residual capacities, per-link high cost, and (in SLA mode) link
  delays, per-pair flow fractions, and per-pair penalties;
* the *low layer* — low-priority routing and loads.

A full evaluation combines one entry of each layer with a cheap O(|E|)
costing pass, so FindL iterations reuse the entire high layer and FindH
iterations reuse the low-priority loads.

On top of that sits the incremental-SPF delta path: neighbors in the
search differ from their parent in one or two link weights, so when a
caller supplies the parent vector and a
:class:`~repro.routing.incremental.WeightDelta` (see
:meth:`DualTopologyEvaluator.evaluate_high_neighbor` and friends), a
cache-missed layer is *derived* from the parent's layer instead of
rebuilt: only the destinations whose SP structure can change (the slack
test of :func:`repro.routing.incremental.affected_destinations`) get
their Dijkstra row, SP DAG, load row, and (in SLA mode) pair fractions
recomputed; everything else is reused verbatim.  Both paths assemble
total loads by summing the per-destination rows in the same order, so a
derived layer is bit-identical to a rebuilt one.  ``incremental=False``
falls back to full recomputation everywhere, and
``verify_incremental=True`` cross-checks every derived layer against a
full rebuild (the verification fallback used by the property tests).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from time import perf_counter
from typing import Optional, Union

import numpy as np

from repro import obs
from repro.costs.fortz import fortz_cost_vector
from repro.costs.load_cost import LoadCostEvaluation
from repro.costs.residual import residual_capacities
from repro.costs.sla import SlaCostEvaluation, SlaParams, link_delays_ms
from repro.network.graph import Network
from repro.routing.incremental import (
    WeightDelta,
    affected_destinations,
    derive_routing,
)
from repro.routing.state import Routing
from repro.routing.weights import as_weight_array, weights_key
from repro.traffic.matrix import TrafficMatrix

LOAD_MODE = "load"
SLA_MODE = "sla"

Evaluation = Union[LoadCostEvaluation, SlaCostEvaluation]


class IncrementalMismatchError(RuntimeError):
    """An incrementally derived layer disagreed with a full rebuild."""


@dataclass
class _HighLayer:
    routing: Routing
    dest_rows: np.ndarray
    loads: np.ndarray
    residual: np.ndarray
    per_link_cost: np.ndarray
    link_delays: Optional[np.ndarray] = None
    pair_fractions: Optional[dict[tuple[int, int], np.ndarray]] = None
    pair_delays: Optional[dict[tuple[int, int], float]] = None
    penalty: float = 0.0
    violations: int = 0


@dataclass
class _LowLayer:
    routing: Routing
    dest_rows: np.ndarray
    loads: np.ndarray


class _LruCache:
    """A small bytes-keyed LRU cache."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self._capacity = capacity
        self._store: OrderedDict[bytes, object] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: bytes):
        entry = self._store.get(key)
        if entry is not None:
            self._store.move_to_end(key)
            self.hits += 1
        else:
            self.misses += 1
        return entry

    def peek(self, key: Optional[bytes]):
        """Look up without touching the hit/miss counters.

        Recency *is* refreshed: a peeked entry is a search's current base
        layer, which must not be evicted while candidate layers stream in
        around it (e.g. a long rejection streak in annealing).
        """
        if key is None:
            return None
        entry = self._store.get(key)
        if entry is not None:
            self._store.move_to_end(key)
        return entry

    def put(self, key: bytes, value: object) -> None:
        self._store[key] = value
        self._store.move_to_end(key)
        while len(self._store) > self._capacity:
            self._store.popitem(last=False)


def _ordered_row_sum(rows: np.ndarray, num_links: int) -> np.ndarray:
    """Sum per-destination load rows left to right.

    A fixed summation order keeps full and incrementally derived layers
    bit-identical (numpy reductions may regroup additions).
    """
    loads = np.zeros(num_links)
    for row in rows:
        loads += row
    return loads


class DualTopologyEvaluator:
    """Evaluates ``(W_H, W_L)`` under the load-based or SLA-based objective.

    Args:
        net: The network.
        high_traffic: High-priority traffic matrix ``T_H``.
        low_traffic: Low-priority traffic matrix ``T_L``.
        mode: ``"load"`` for objective ``A`` (Eq. 2) or ``"sla"`` for
            objective ``S`` (Eq. 5).
        sla_params: SLA bound/penalty parameters (SLA mode only).
        cache_size: Entries kept per cache layer.
        incremental: Whether cache-missed layers may be derived from a
            cached parent layer via incremental SPF when the caller
            supplies a weight delta.  ``False`` forces full recomputation
            (the verification fallback path).
        verify_incremental: Cross-check every incrementally derived layer
            against a full rebuild and raise
            :class:`IncrementalMismatchError` on disagreement.  Expensive;
            meant for tests and debugging.
        vectorized: Whether routings run per-destination accumulation on
            the struct-of-arrays kernels (:mod:`repro.routing.soa`) or on
            the scalar reference loop.  Both produce bit-identical
            results; ``False`` is the differential-test reference path.
    """

    def __init__(
        self,
        net: Network,
        high_traffic: TrafficMatrix,
        low_traffic: TrafficMatrix,
        mode: str = LOAD_MODE,
        sla_params: Optional[SlaParams] = None,
        cache_size: int = 128,
        incremental: bool = True,
        verify_incremental: bool = False,
        vectorized: bool = True,
    ) -> None:
        if mode not in (LOAD_MODE, SLA_MODE):
            raise ValueError(f"mode must be '{LOAD_MODE}' or '{SLA_MODE}', got {mode!r}")
        if high_traffic.num_nodes != net.num_nodes or low_traffic.num_nodes != net.num_nodes:
            raise ValueError("traffic matrix size does not match the network")
        self._net = net
        self._high_traffic = high_traffic
        self._low_traffic = low_traffic
        self.mode = mode
        self.sla_params = sla_params or SlaParams()
        self.incremental = bool(incremental)
        self.verify_incremental = bool(verify_incremental)
        self.vectorized = bool(vectorized)
        self._high_cache = _LruCache(cache_size)
        self._low_cache = _LruCache(cache_size)
        self._full_cache = _LruCache(cache_size * 2)
        # Routings depend only on the weight vector, so high and low layers
        # share them: entries are (routing, parent_key, affected_set).
        self._routing_memo = _LruCache(cache_size * 2)
        self._high_demands = high_traffic.demands
        self._low_demands = low_traffic.demands
        self._high_active = np.flatnonzero(self._high_demands.sum(axis=0) > 0)
        self._low_active = np.flatnonzero(self._low_demands.sum(axis=0) > 0)
        self.evaluations = 0
        self._incremental_stats = {
            "high_incremental": 0,
            "high_full": 0,
            "low_incremental": 0,
            "low_full": 0,
        }
        # Telemetry (out-of-band, rule RL006): instruments are resolved
        # once here so the per-evaluation cost is a flag check plus one
        # locked add — gated <=5% by benchmarks/test_bench_obs.py.
        _cache_ev = "repro_evaluator_cache_events_total"
        _cache_help = "Full-evaluation cache hits and misses."
        self._obs_full_hit = obs.counter(_cache_ev, _cache_help, {"cache": "full", "event": "hit"})
        self._obs_full_miss = obs.counter(_cache_ev, _cache_help, {"cache": "full", "event": "miss"})
        _memo = "repro_evaluator_routing_memo_total"
        _memo_help = "Shared routing-memo hits and misses."
        self._obs_memo_hit = obs.counter(_memo, _memo_help, {"event": "hit"})
        self._obs_memo_miss = obs.counter(_memo, _memo_help, {"event": "miss"})
        _builds = "repro_evaluator_layer_builds_total"
        _builds_help = "Cache-missed layers by build path (incremental vs full)."
        self._obs_builds = {
            (layer, path): obs.counter(_builds, _builds_help, {"layer": layer, "path": path})
            for layer in ("high", "low")
            for path in ("incremental", "full")
        }
        self._obs_eval_seconds = obs.histogram(
            "repro_evaluator_evaluate_seconds",
            "Full dual-topology evaluation latency (cache misses).",
        )
        self._obs_layer_seconds = {
            layer: obs.histogram(
                "repro_evaluator_layer_seconds",
                "Per-layer build latency on cache miss.",
                {"layer": layer},
            )
            for layer in ("high", "low")
        }

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def network(self) -> Network:
        """The network being evaluated."""
        return self._net

    @property
    def high_traffic(self) -> TrafficMatrix:
        """High-priority traffic matrix."""
        return self._high_traffic

    @property
    def low_traffic(self) -> TrafficMatrix:
        """Low-priority traffic matrix."""
        return self._low_traffic

    def evaluate(
        self,
        high_weights: np.ndarray,
        low_weights: np.ndarray,
        *,
        high_base: Optional[np.ndarray] = None,
        high_delta: Optional[WeightDelta] = None,
        low_base: Optional[np.ndarray] = None,
        low_delta: Optional[WeightDelta] = None,
    ) -> Evaluation:
        """Full evaluation of a dual weight setting.

        The keyword arguments are optional incremental-SPF hints: when
        ``high_base``/``high_delta`` are given, ``high_weights`` must equal
        ``high_delta.apply(high_base)`` and a cache miss on the high layer
        is derived from the (expected cached) layer of ``high_base``
        instead of rebuilt; likewise for the low layer.  Hints never
        change the result — only how a missed layer is computed.

        Returns a :class:`LoadCostEvaluation` in load mode or a
        :class:`SlaCostEvaluation` in SLA mode; both expose ``.objective``
        (the lexicographic cost) and the per-link sort keys the search
        routines consume.
        """
        self.evaluations += 1
        # Validate BEFORE keying: a bare int64 cast truncates fractional
        # weights, silently keying `w + 0.5` as `floor(w)` and returning a
        # cached result computed for different weights.
        hw = as_weight_array(high_weights, self._net.num_links)
        lw = as_weight_array(low_weights, self._net.num_links)
        hk = weights_key(hw)
        lk = weights_key(lw)
        full_key = hk + b"|" + lk
        cached = self._full_cache.get(full_key)
        if cached is not None:
            self._obs_full_hit.inc()
            return cached
        self._obs_full_miss.inc()
        started = perf_counter()

        with obs.span("evaluate", mode=self.mode):
            hbk = (
                weights_key(as_weight_array(high_base, self._net.num_links))
                if high_base is not None
                else None
            )
            lbk = (
                weights_key(as_weight_array(low_base, self._net.num_links))
                if low_base is not None
                else None
            )
            high = self._high_layer(hk, hw, base_key=hbk, delta=high_delta)
            low = self._low_layer(lk, lw, base_key=lbk, delta=low_delta)
            per_link_low = fortz_cost_vector(low.loads, high.residual)
            utilization = (high.loads + low.loads) / self._net.capacities()

            if self.mode == LOAD_MODE:
                result: Evaluation = LoadCostEvaluation(
                    phi_high=float(high.per_link_cost.sum()),
                    phi_low=float(per_link_low.sum()),
                    per_link_high=high.per_link_cost,
                    per_link_low=per_link_low,
                    high_loads=high.loads,
                    low_loads=low.loads,
                    residual=high.residual,
                    utilization=utilization,
                )
            else:
                result = SlaCostEvaluation(
                    penalty=high.penalty,
                    phi_low=float(per_link_low.sum()),
                    violations=high.violations,
                    pair_delays_ms=high.pair_delays,
                    link_delays=high.link_delays,
                    per_link_low=per_link_low,
                    high_loads=high.loads,
                    low_loads=low.loads,
                    residual=high.residual,
                    utilization=utilization,
                    params=self.sla_params,
                )
            self._full_cache.put(full_key, result)
        self._obs_eval_seconds.observe(perf_counter() - started)
        return result

    def evaluate_str(self, weights: np.ndarray) -> Evaluation:
        """Evaluate single-topology routing: both classes on ``weights``."""
        return self.evaluate(weights, weights)

    def evaluate_high_neighbor(
        self, high_base: np.ndarray, low_weights: np.ndarray, delta: WeightDelta
    ) -> tuple[np.ndarray, Evaluation]:
        """Evaluate a FindH move: ``delta`` applied to ``high_base``.

        Returns:
            ``(neighbor_high_weights, evaluation)``.
        """
        hw = delta.apply(high_base)
        return hw, self.evaluate(
            hw, low_weights, high_base=high_base, high_delta=delta
        )

    def evaluate_low_neighbor(
        self, high_weights: np.ndarray, low_base: np.ndarray, delta: WeightDelta
    ) -> tuple[np.ndarray, Evaluation]:
        """Evaluate a FindL move: ``delta`` applied to ``low_base``.

        Returns:
            ``(neighbor_low_weights, evaluation)``.
        """
        lw = delta.apply(low_base)
        return lw, self.evaluate(
            high_weights, lw, low_base=low_base, low_delta=delta
        )

    def evaluate_str_neighbor(
        self, base: np.ndarray, delta: WeightDelta
    ) -> tuple[np.ndarray, Evaluation]:
        """Evaluate an STR move: ``delta`` applied to ``base`` in both classes.

        Returns:
            ``(neighbor_weights, evaluation)``.
        """
        w = delta.apply(base)
        return w, self.evaluate(
            w, w, high_base=base, high_delta=delta, low_base=base, low_delta=delta
        )

    def high_routing(self, high_weights: np.ndarray) -> Routing:
        """The (cached) high-priority routing for ``high_weights``."""
        hw = as_weight_array(high_weights, self._net.num_links)
        return self._high_layer(weights_key(hw), hw).routing

    def low_routing(self, low_weights: np.ndarray) -> Routing:
        """The (cached) low-priority routing for ``low_weights``."""
        lw = as_weight_array(low_weights, self._net.num_links)
        return self._low_layer(weights_key(lw), lw).routing

    def cache_stats(self) -> dict[str, int]:
        """Hit/miss counters of the cache layers plus incremental-SPF counters.

        ``high_incremental``/``low_incremental`` count cache-missed layers
        derived from a parent via incremental SPF; ``high_full``/``low_full``
        count layers rebuilt from scratch.
        """
        return {
            "high_hits": self._high_cache.hits,
            "high_misses": self._high_cache.misses,
            "low_hits": self._low_cache.hits,
            "low_misses": self._low_cache.misses,
            "full_hits": self._full_cache.hits,
            "full_misses": self._full_cache.misses,
            **self._incremental_stats,
        }

    # ------------------------------------------------------------------
    # Layers
    # ------------------------------------------------------------------
    def _high_layer(
        self,
        key: bytes,
        weights: np.ndarray,
        base_key: Optional[bytes] = None,
        delta: Optional[WeightDelta] = None,
    ) -> _HighLayer:
        layer = self._high_cache.get(key)
        if layer is not None:
            return layer
        parent = None
        if self.incremental and delta is not None and delta.num_changes:
            parent = self._high_cache.peek(base_key)
        started = perf_counter()
        if parent is not None:
            layer = self._build_high_layer(
                weights, parent=parent, delta=delta, child_key=key, parent_key=base_key
            )
            self._incremental_stats["high_incremental"] += 1
            self._obs_builds[("high", "incremental")].inc()
            if self.verify_incremental:
                self._verify_layer(layer, self._build_high_layer(weights), "high")
        else:
            layer = self._build_high_layer(weights, child_key=key)
            self._incremental_stats["high_full"] += 1
            self._obs_builds[("high", "full")].inc()
        self._obs_layer_seconds["high"].observe(perf_counter() - started)
        self._high_cache.put(key, layer)
        return layer

    def _low_layer(
        self,
        key: bytes,
        weights: np.ndarray,
        base_key: Optional[bytes] = None,
        delta: Optional[WeightDelta] = None,
    ) -> _LowLayer:
        layer = self._low_cache.get(key)
        if layer is not None:
            return layer
        parent = None
        if self.incremental and delta is not None and delta.num_changes:
            parent = self._low_cache.peek(base_key)
        started = perf_counter()
        if parent is not None:
            layer = self._build_low_layer(
                weights, parent=parent, delta=delta, child_key=key, parent_key=base_key
            )
            self._incremental_stats["low_incremental"] += 1
            self._obs_builds[("low", "incremental")].inc()
            if self.verify_incremental:
                self._verify_layer(layer, self._build_low_layer(weights), "low")
        else:
            layer = self._build_low_layer(weights, child_key=key)
            self._incremental_stats["low_full"] += 1
            self._obs_builds[("low", "full")].inc()
        self._obs_layer_seconds["low"].observe(perf_counter() - started)
        self._low_cache.put(key, layer)
        return layer

    def _derive_or_build(
        self,
        weights: np.ndarray,
        parent_routing: Optional[Routing],
        delta: Optional[WeightDelta],
        child_key: Optional[bytes] = None,
        parent_key: Optional[bytes] = None,
    ) -> tuple[Routing, Optional[set[int]]]:
        """Child routing plus its affected-destination set (``None`` = all).

        Routings are memoized by weight key and shared across the high and
        low layers (an STR move builds the routing once, not twice).
        ``child_key=None`` bypasses the memo — the verification rebuild
        must not be handed the very derived routing it is checking.
        """
        memo = self._routing_memo.peek(child_key)
        if memo is not None:
            self._obs_memo_hit.inc()
            routing, memo_parent_key, affected = memo
            if parent_routing is None or delta is None:
                return routing, None
            if memo_parent_key == parent_key and affected is not None:
                return routing, affected
            return routing, set(
                int(t)
                for t in affected_destinations(
                    self._net, parent_routing.distance_matrix, delta
                )
            )
        self._obs_memo_miss.inc()
        if parent_routing is None or delta is None:
            routing, affected = Routing(self._net, weights, vectorized=self.vectorized), None
        else:
            derived, affected_array = derive_routing(parent_routing, delta)
            if not np.array_equal(derived.weights, np.asarray(weights, dtype=np.int64)):
                raise ValueError(
                    "incremental hint mismatch: delta applied to base does not "
                    "produce the requested weight vector"
                )
            routing = derived
            affected = set(int(t) for t in affected_array)
        if child_key is not None:
            self._routing_memo.put(child_key, (routing, parent_key, affected))
        return routing, affected

    def _dest_rows(
        self,
        routing: Routing,
        active: np.ndarray,
        demands: np.ndarray,
        parent_rows: Optional[np.ndarray],
        affected: Optional[set[int]],
    ) -> np.ndarray:
        """Per-destination load rows, reusing parent rows where possible.

        Rows are computed through :meth:`Routing.destination_rows` — one
        batched kernel pass over every destination that needs rebuilding
        instead of a per-destination Python loop.
        """
        if affected is None:
            if active.size == 0:
                return np.empty((0, self._net.num_links))
            if active.size == demands.shape[1]:
                # Every destination active: the transpose view skips a
                # full-matrix column gather (the kernel copies anyway).
                return routing.destination_rows(active, demands.T)
            return routing.destination_rows(active, demands[:, active].T)
        rows = parent_rows.copy()
        idx = [i for i, t in enumerate(active) if int(t) in affected]
        if idx:
            ts = active[idx]
            rows[idx] = routing.destination_rows(ts, demands[:, ts].T)
        return rows

    def _build_high_layer(
        self,
        weights: np.ndarray,
        parent: Optional[_HighLayer] = None,
        delta: Optional[WeightDelta] = None,
        child_key: Optional[bytes] = None,
        parent_key: Optional[bytes] = None,
    ) -> _HighLayer:
        routing, affected = self._derive_or_build(
            weights, parent.routing if parent else None, delta, child_key, parent_key
        )
        rows = self._dest_rows(
            routing,
            self._high_active,
            self._high_demands,
            parent.dest_rows if parent else None,
            affected,
        )
        loads = _ordered_row_sum(rows, self._net.num_links)
        capacities = self._net.capacities()
        residual = residual_capacities(capacities, loads)
        per_link_cost = fortz_cost_vector(loads, capacities)
        layer = _HighLayer(
            routing=routing,
            dest_rows=rows,
            loads=loads,
            residual=residual,
            per_link_cost=per_link_cost,
        )
        if self.mode == SLA_MODE:
            delays = link_delays_ms(
                self._net, loads, per_link_cost, self.sla_params.packet_size_bits
            )
            # Pairs sharing a destination share its DAG: group them so
            # each destination's fractions come from one batched kernel
            # pass, then fold penalties in the original pairs() order
            # (the accumulation order is part of the bit-identity
            # contract with the non-grouped build).
            by_dest: dict[int, list[int]] = {}
            for s, t, _rate in self._high_traffic.pairs():
                if affected is not None and t not in affected:
                    continue
                by_dest.setdefault(t, []).append(s)
            fresh: dict[tuple[int, int], np.ndarray] = {}
            for t, sources in by_dest.items():
                frac_rows = routing.pair_fraction_rows(t, sources)
                for j, s in enumerate(sources):
                    fresh[(s, t)] = frac_rows[j].copy()
            fractions: dict[tuple[int, int], np.ndarray] = {}
            pair_delays: dict[tuple[int, int], float] = {}
            penalty = 0.0
            violations = 0
            for s, t, _rate in self._high_traffic.pairs():
                frac = fresh.get((s, t))
                if frac is None:
                    frac = parent.pair_fractions[(s, t)]
                fractions[(s, t)] = frac
                xi = float(frac @ delays)
                pair_delays[(s, t)] = xi
                pair_penalty = self.sla_params.pair_penalty(xi)
                if pair_penalty > 0:
                    violations += 1
                    penalty += pair_penalty
            layer.link_delays = delays
            layer.pair_fractions = fractions
            layer.pair_delays = pair_delays
            layer.penalty = penalty
            layer.violations = violations
        return layer

    def _build_low_layer(
        self,
        weights: np.ndarray,
        parent: Optional[_LowLayer] = None,
        delta: Optional[WeightDelta] = None,
        child_key: Optional[bytes] = None,
        parent_key: Optional[bytes] = None,
    ) -> _LowLayer:
        routing, affected = self._derive_or_build(
            weights, parent.routing if parent else None, delta, child_key, parent_key
        )
        rows = self._dest_rows(
            routing,
            self._low_active,
            self._low_demands,
            parent.dest_rows if parent else None,
            affected,
        )
        return _LowLayer(
            routing=routing,
            dest_rows=rows,
            loads=_ordered_row_sum(rows, self._net.num_links),
        )

    def _verify_layer(self, derived, rebuilt, which: str) -> None:
        """Cross-check a derived layer against a full rebuild.

        Derived and rebuilt layers are contractually *bit-identical*, so
        the per-destination rows and every derived field are compared
        exactly — a corrupted row that still sums within the loads
        tolerance (the old blind spot) cannot slip through and resurface
        later via row reuse.
        """
        if not np.allclose(
            derived.routing.distance_matrix,
            rebuilt.routing.distance_matrix,
            rtol=1e-12,
            atol=1e-9,
        ):
            raise IncrementalMismatchError(f"{which} layer: distance matrices differ")
        if not np.array_equal(derived.dest_rows, rebuilt.dest_rows):
            raise IncrementalMismatchError(
                f"{which} layer: per-destination rows differ"
            )
        if not np.allclose(derived.loads, rebuilt.loads, rtol=1e-12, atol=1e-9):
            raise IncrementalMismatchError(f"{which} layer: link loads differ")
        if which == "high":
            if not np.array_equal(derived.residual, rebuilt.residual):
                raise IncrementalMismatchError("high layer: residuals differ")
            if not np.array_equal(derived.per_link_cost, rebuilt.per_link_cost):
                raise IncrementalMismatchError("high layer: per-link costs differ")
        if which == "high" and self.mode == SLA_MODE:
            if not np.array_equal(derived.link_delays, rebuilt.link_delays):
                raise IncrementalMismatchError("high layer: link delays differ")
            if set(derived.pair_fractions) != set(rebuilt.pair_fractions):
                raise IncrementalMismatchError("high layer: pair sets differ")
            for pair, frac in rebuilt.pair_fractions.items():
                if not np.array_equal(derived.pair_fractions[pair], frac):
                    raise IncrementalMismatchError(
                        f"high layer: pair fractions differ for {pair}"
                    )
            if derived.pair_delays != rebuilt.pair_delays:
                raise IncrementalMismatchError("high layer: pair delays differ")
            if derived.violations != rebuilt.violations:
                raise IncrementalMismatchError("high layer: violation counts differ")
            if abs(derived.penalty - rebuilt.penalty) > 1e-9 * max(
                1.0, abs(rebuilt.penalty)
            ):
                raise IncrementalMismatchError("high layer: SLA penalties differ")
