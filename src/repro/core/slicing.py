"""Multi-topology traffic slicing (Balon & Leduc [6]) for the low class.

The paper's related work proposes approximating optimal traffic
engineering by dividing the traffic matrix into slices, each routed on its
own topology: more slices, better approximation.  This module applies that
idea inside the paper's service-differentiation setting — the
high-priority class keeps its dedicated topology (optimized first,
lexicographically), while the low-priority matrix is split into ``k``
slices routed on ``k`` independent weight vectors, optimized by coordinate
descent with the FindL neighborhood.  ``k = 1`` degenerates to DTR.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.core.evaluator import DualTopologyEvaluator, LOAD_MODE
from repro.core.lexicographic import LexCost
from repro.core.neighborhood import NeighborhoodSampler
from repro.core.perturbation import perturb_weights
from repro.core.search_params import SearchParams
from repro.costs.fortz import fortz_cost_vector
from repro.costs.residual import residual_capacities
from repro.determinism import default_rng
from repro.routing.state import Routing
from repro.routing.weights import weights_key
from repro.traffic.matrix import TrafficMatrix


def slice_traffic_matrix(
    tm: TrafficMatrix, num_slices: int, rng: Optional[random.Random] = None
) -> list[TrafficMatrix]:
    """Split a matrix into volume-balanced slices of whole SD pairs.

    Pairs are sorted by decreasing volume and greedily assigned to the
    currently lightest slice (longest-processing-time balancing), with
    random tie order for same-volume pairs.

    Args:
        tm: Matrix to slice.
        num_slices: Number of slices ``k`` (>= 1).
        rng: Source of randomness; a fresh unseeded one is created if omitted.

    Returns:
        ``k`` matrices summing (exactly) to ``tm``.
    """
    if num_slices < 1:
        raise ValueError(f"num_slices must be >= 1, got {num_slices}")
    rng = rng or default_rng("core/slicing")
    pairs = list(tm.pairs())
    rng.shuffle(pairs)
    pairs.sort(key=lambda e: -e[2])
    buckets = [np.zeros((tm.num_nodes, tm.num_nodes)) for _ in range(num_slices)]
    volumes = [0.0] * num_slices
    for s, t, rate in pairs:
        idx = min(range(num_slices), key=lambda i: volumes[i])
        buckets[idx][s, t] += rate
        volumes[idx] += rate
    return [TrafficMatrix(bucket) for bucket in buckets]


@dataclass
class SlicedResult:
    """Outcome of a sliced-MTR optimization.

    Attributes:
        high_weights: Weight vector of the high-priority topology.
        slice_weights: One weight vector per low-priority slice.
        slices: The sliced low-priority matrices.
        objective: Final lexicographic cost ``<Phi_H, Phi_L>``.
        history: ``(round, Phi_L)`` recorded at each improvement.
    """

    high_weights: np.ndarray
    slice_weights: list[np.ndarray]
    slices: list[TrafficMatrix]
    objective: LexCost
    history: list[tuple[int, float]] = field(default_factory=list)

    @property
    def num_topologies(self) -> int:
        """Total topologies in use (1 high + k slices)."""
        return 1 + len(self.slice_weights)


class _SliceLoadCache:
    """Caches per-slice link loads keyed by (slice index, weight bytes)."""

    def __init__(self, net, slices: Sequence[TrafficMatrix]) -> None:
        self._net = net
        self._slices = slices
        self._cache: dict[tuple[int, bytes], np.ndarray] = {}

    def loads(self, index: int, weights: np.ndarray) -> np.ndarray:
        key = (index, weights_key(np.asarray(weights, dtype=np.int64)))
        cached = self._cache.get(key)
        if cached is None:
            cached = Routing(self._net, weights).link_loads(self._slices[index])
            if len(self._cache) > 512:
                self._cache.clear()
            self._cache[key] = cached
        return cached


def optimize_sliced_low(
    evaluator: DualTopologyEvaluator,
    high_weights: Sequence[int],
    num_slices: int,
    params: Optional[SearchParams] = None,
    rng: Optional[random.Random] = None,
    rounds: Optional[int] = None,
) -> SlicedResult:
    """Optimize ``k`` low-priority slice topologies below a fixed high topology.

    Coordinate descent: each round sweeps the slices in order; for each
    slice a FindL-style step perturbs that slice's weights against the
    residual capacities left by the high class, holding the other slices'
    loads fixed.

    Args:
        evaluator: A *load-mode* evaluator carrying the traffic matrices.
        high_weights: High-priority weights (typically a DTR result).
        num_slices: Number of low-priority slices ``k``.
        params: Search knobs; the per-slice step budget is
            ``iterations_low`` split across slices and rounds.
        rng: Source of randomness; a fresh unseeded one is created if omitted.
        rounds: Coordinate-descent rounds; derived from the budget if omitted.

    Returns:
        A :class:`SlicedResult`.

    Raises:
        ValueError: if the evaluator is not in load mode.
    """
    if evaluator.mode != LOAD_MODE:
        raise ValueError("sliced optimization requires a load-mode evaluator")
    params = params or SearchParams()
    rng = rng or default_rng("core/slicing")
    net = evaluator.network
    high_weights = np.array(high_weights, dtype=np.int64)

    high_loads = evaluator.high_routing(high_weights).link_loads(evaluator.high_traffic)
    residual = residual_capacities(net.capacities(), high_loads)
    phi_high = float(fortz_cost_vector(high_loads, net.capacities()).sum())

    slices = slice_traffic_matrix(evaluator.low_traffic, num_slices, rng)
    cache = _SliceLoadCache(net, slices)
    slice_weights = [high_weights.copy() for _ in range(num_slices)]
    sampler = NeighborhoodSampler(params, rng)

    def total_low_loads() -> np.ndarray:
        loads = np.zeros(net.num_links)
        for idx, weights in enumerate(slice_weights):
            loads += cache.loads(idx, weights)
        return loads

    def phi_low_of(loads: np.ndarray) -> float:
        return float(fortz_cost_vector(loads, residual).sum())

    best_phi_low = phi_low_of(total_low_loads())
    best_slice_weights = [w.copy() for w in slice_weights]
    history = [(0, best_phi_low)]
    if rounds is None:
        rounds = max(1, params.iterations_low // max(1, num_slices))

    stale = 0
    for round_idx in range(1, rounds + 1):
        for idx in range(num_slices):
            others = total_low_loads() - cache.loads(idx, slice_weights[idx])
            current_loads = cache.loads(idx, slice_weights[idx])
            per_link = fortz_cost_vector(others + current_loads, residual)
            order = list(np.argsort(-per_link, kind="stable"))
            best_neighbor = None
            best_value = phi_low_of(others + current_loads)
            for neighbor in sampler.neighbors(slice_weights[idx], order):
                candidate = phi_low_of(others + cache.loads(idx, neighbor))
                if candidate < best_value:
                    best_value = candidate
                    best_neighbor = neighbor
            if best_neighbor is not None:
                slice_weights[idx] = best_neighbor
        phi_low = phi_low_of(total_low_loads())
        if phi_low < best_phi_low:
            best_phi_low = phi_low
            best_slice_weights = [w.copy() for w in slice_weights]
            history.append((round_idx, phi_low))
            stale = 0
        else:
            stale += 1
        if stale >= params.diversification_interval:
            victim = rng.randrange(num_slices)
            slice_weights[victim] = perturb_weights(
                slice_weights[victim],
                params.perturb_low_fraction,
                rng,
                params.min_weight,
                params.max_weight,
            )
            stale = 0

    return SlicedResult(
        high_weights=high_weights,
        slice_weights=best_slice_weights,
        slices=slices,
        objective=LexCost(phi_high, best_phi_low),
        history=history,
    )
