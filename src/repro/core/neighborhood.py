"""Neighborhood construction of Algorithm 2 (FindH / FindL).

Given the links sorted by decreasing cost, two candidate sets are formed:
``A`` holds ``m`` consecutive links starting at a heavy-tailed random rank
near the top (high cost — weight should *increase* to push traffic away),
and ``B`` holds ``m`` consecutive links ending at a heavy-tailed random
rank from the bottom (low cost — weight should *decrease* to attract
traffic).  Each of the ``m`` neighbors pairs one link drawn from ``A``
(without replacement) with one from ``B`` and moves both weights.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.rank_selection import draw_rank
from repro.core.search_params import SearchParams
from repro.routing.incremental import WeightDelta


@dataclass(frozen=True)
class CandidateSets:
    """The high-cost set ``A`` and low-cost set ``B`` of one neighborhood."""

    high_cost_links: tuple[int, ...]
    low_cost_links: tuple[int, ...]


class NeighborhoodSampler:
    """Samples Algorithm-2 neighborhoods for one weight vector at a time."""

    def __init__(self, params: SearchParams, rng: random.Random) -> None:
        self._params = params
        self._rng = rng

    def candidate_sets(self, order_desc: Sequence[int]) -> CandidateSets:
        """Pick the sets ``A`` and ``B`` from a cost-descending link order.

        Args:
            order_desc: Link indices sorted by decreasing link cost
                (``L_{Pi(1)} >= L_{Pi(2)} >= ...`` in the paper's notation).

        Returns:
            The two candidate sets, each of size ``min(m, n)``.
        """
        n = len(order_desc)
        m = min(self._params.neighborhood_size, n)
        max_rank = n - m + 1
        k1 = draw_rank(max_rank, self._params.tau, self._rng)
        k2 = draw_rank(max_rank, self._params.tau, self._rng)
        high = tuple(order_desc[k1 - 1 : k1 - 1 + m])
        low = tuple(order_desc[n - k2 - j] for j in range(m))
        return CandidateSets(high_cost_links=high, low_cost_links=low)

    def neighbor_deltas(
        self, weights: np.ndarray, order_desc: Sequence[int]
    ) -> list[WeightDelta]:
        """Generate ``m`` neighbors of ``weights`` as sparse weight deltas.

        Each neighbor increases the weight of one link drawn without
        replacement from ``A`` and decreases the weight of one link drawn
        without replacement from ``B``, clamped to the weight range.  A
        move that clamps to no change on both links yields an empty delta,
        preserving the neighbor count.  Deltas are the native currency of
        the evaluator's incremental-SPF path
        (:meth:`repro.core.evaluator.DualTopologyEvaluator.evaluate_high_neighbor`).
        """
        base = np.asarray(weights, dtype=np.int64)
        sets = self.candidate_sets(order_desc)
        ups = list(sets.high_cost_links)
        downs = list(sets.low_cost_links)
        self._rng.shuffle(ups)
        self._rng.shuffle(downs)
        params = self._params
        out = []
        for up_link, down_link in zip(ups, downs):
            step_up = self._rng.choice(params.weight_steps)
            step_down = self._rng.choice(params.weight_steps)
            neighbor = np.array(base, copy=True)
            neighbor[up_link] = min(params.max_weight, neighbor[up_link] + step_up)
            neighbor[down_link] = max(params.min_weight, neighbor[down_link] - step_down)
            out.append(WeightDelta.from_weights(base, neighbor))
        return out

    def neighbors(
        self, weights: np.ndarray, order_desc: Sequence[int]
    ) -> list[np.ndarray]:
        """Generate ``m`` neighbors of ``weights`` as full weight vectors.

        Array-vector view of :meth:`neighbor_deltas` (same moves, same
        RNG stream).
        """
        base = np.asarray(weights, dtype=np.int64)
        return [d.apply(base) for d in self.neighbor_deltas(weights, order_desc)]

    def single_change_deltas(
        self, weights: np.ndarray, order_desc: Sequence[int]
    ) -> list[WeightDelta]:
        """Deltas changing a *single* link weight, no-op moves dropped.

        Used by the STR baseline ("single weight change" heuristic of
        Fortz-Thorup): links from ``A`` get an increase, links from ``B``
        a decrease, one change per neighbor.
        """
        base = np.asarray(weights, dtype=np.int64)
        sets = self.candidate_sets(order_desc)
        params = self._params
        out = []
        for link, direction in [(l, +1) for l in sets.high_cost_links] + [
            (l, -1) for l in sets.low_cost_links
        ]:
            step = self._rng.choice(params.weight_steps) * direction
            new_weight = int(
                np.clip(base[link] + step, params.min_weight, params.max_weight)
            )
            if new_weight != base[link]:
                out.append(WeightDelta.single(link, int(base[link]), new_weight))
        return out

    def single_change_neighbors(
        self, weights: np.ndarray, order_desc: Sequence[int]
    ) -> list[np.ndarray]:
        """Neighbors differing from ``weights`` in a *single* link weight.

        Array-vector view of :meth:`single_change_deltas` (same moves,
        same RNG stream).
        """
        base = np.asarray(weights, dtype=np.int64)
        return [d.apply(base) for d in self.single_change_deltas(weights, order_desc)]
