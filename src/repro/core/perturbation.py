"""Diversification: random perturbation of a fraction of link weights.

Algorithm 1 escapes local optima by randomly perturbing a small percentage
of link weights (g1 = g2 = 5 % in the first two routines, g3 = 3 % in the
refinement routine) whenever ``M`` iterations pass without improvement.
"""

from __future__ import annotations

import random

import numpy as np

from repro.routing.weights import MAX_WEIGHT, MIN_WEIGHT


def perturb_weights(
    weights: np.ndarray,
    fraction: float,
    rng: random.Random,
    min_weight: int = MIN_WEIGHT,
    max_weight: int = MAX_WEIGHT,
) -> np.ndarray:
    """Return a copy with ``fraction`` of the weights redrawn uniformly.

    At least one weight is always redrawn, so diversification can never be
    a no-op on tiny networks.

    Args:
        weights: Current integer weight vector.
        fraction: Fraction of links to perturb, in (0, 1].
        rng: Source of randomness.
        min_weight: Lower bound of the redraw range.
        max_weight: Upper bound of the redraw range.

    Returns:
        A new weight vector (the input is never modified).
    """
    if not 0 < fraction <= 1:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    if min_weight > max_weight:
        raise ValueError(f"invalid weight range [{min_weight}, {max_weight}]")
    count = max(1, round(fraction * len(weights)))
    indices = rng.sample(range(len(weights)), count)
    perturbed = np.array(weights, dtype=np.int64, copy=True)
    for idx in indices:
        perturbed[idx] = rng.randint(min_weight, max_weight)
    return perturbed
