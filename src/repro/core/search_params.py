"""Search hyper-parameters (paper Section 5.1.3)."""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.routing.weights import MAX_WEIGHT, MIN_WEIGHT


@dataclass(frozen=True)
class SearchParams:
    """Knobs of the STR and DTR weight-search heuristics.

    Paper values (Section 5.1.3): ``N = 300000`` iterations for each of the
    first two routines, ``K = 800000`` for the refinement routine,
    neighborhood size ``m = 5``, diversification interval ``M = 300``,
    diversification fractions ``g1 = g2 = 5 %`` and ``g3 = 3 %``, rank-bias
    exponent ``tau = 1.5``, and integer weights in ``[1, 30]``.

    Library defaults keep every structural constant from the paper but
    scale the iteration budgets down so experiments run on a laptop; use
    :meth:`paper` for the published budgets and :meth:`scaled` for
    proportional budgets.

    ``progress_interval`` is how often (in iterations) the searches invoke
    an optional progress callback (campaign workers use it to emit
    heartbeats); it never affects the search trajectory.
    """

    iterations_high: int = 300
    iterations_low: int = 300
    iterations_refine: int = 800
    diversification_interval: int = 50
    neighborhood_size: int = 5
    perturb_high_fraction: float = 0.05
    perturb_low_fraction: float = 0.05
    perturb_refine_fraction: float = 0.03
    tau: float = 1.5
    min_weight: int = MIN_WEIGHT
    max_weight: int = MAX_WEIGHT
    weight_steps: tuple[int, ...] = (1, 2, 4, 8)
    progress_interval: int = 50

    def __post_init__(self) -> None:
        for name in ("iterations_high", "iterations_low", "iterations_refine"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.diversification_interval < 1:
            raise ValueError("diversification_interval must be >= 1")
        if self.neighborhood_size < 1:
            raise ValueError("neighborhood_size must be >= 1")
        for name in (
            "perturb_high_fraction",
            "perturb_low_fraction",
            "perturb_refine_fraction",
        ):
            frac = getattr(self, name)
            if not 0 < frac <= 1:
                raise ValueError(f"{name} must be in (0, 1], got {frac}")
        if self.tau < 0:
            raise ValueError("tau must be non-negative")
        if not MIN_WEIGHT <= self.min_weight <= self.max_weight:
            raise ValueError(
                f"invalid weight range [{self.min_weight}, {self.max_weight}]"
            )
        if not self.weight_steps or any(s < 1 for s in self.weight_steps):
            raise ValueError("weight_steps must be positive integers")
        if self.progress_interval < 1:
            raise ValueError("progress_interval must be >= 1")

    @classmethod
    def paper(cls) -> "SearchParams":
        """The published budgets: N = 300000, K = 800000, M = 300."""
        return cls(
            iterations_high=300_000,
            iterations_low=300_000,
            iterations_refine=800_000,
            diversification_interval=300,
        )

    @classmethod
    def scaled(cls, scale: float, base: "SearchParams" = None) -> "SearchParams":
        """Budgets proportional to the defaults by ``scale`` (> 0)."""
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        base = base or cls()
        return replace(
            base,
            iterations_high=max(1, round(base.iterations_high * scale)),
            iterations_low=max(1, round(base.iterations_low * scale)),
            iterations_refine=max(1, round(base.iterations_refine * scale)),
            diversification_interval=max(5, round(base.diversification_interval * scale)),
        )

    def total_iterations(self) -> int:
        """Sum of the three routines' iteration budgets."""
        return self.iterations_high + self.iterations_low + self.iterations_refine
