"""Lexicographically ordered cost tuples.

The paper's objectives are lexicographic: ``A = <Phi_H, Phi_L>`` (Eq. 2)
and ``S = <Lambda, Phi_L>`` (Eq. 5), where ``<x1, y1> > <x2, y2>`` iff
``x1 > x2``, or ``x1 == x2`` and ``y1 > y2``.
"""

from __future__ import annotations

import math
from functools import total_ordering
from typing import Iterator


@total_ordering
class LexCost:
    """An immutable, totally ordered tuple of cost components.

    Comparison is exact lexicographic tuple comparison, which keeps the
    order total and transitive (a float tolerance would break
    transitivity).  Costs produced from identical weight vectors compare
    equal bit-for-bit because the evaluation pipeline is deterministic.
    """

    __slots__ = ("_values",)

    def __init__(self, *values: float) -> None:
        if not values:
            raise ValueError("LexCost needs at least one component")
        self._values = tuple(float(v) for v in values)

    @classmethod
    def infinite(cls, arity: int = 2) -> "LexCost":
        """A cost larger than any finite cost (search initialization)."""
        return cls(*([math.inf] * arity))

    @property
    def values(self) -> tuple[float, ...]:
        """The cost components, most significant first."""
        return self._values

    @property
    def primary(self) -> float:
        """The most significant component (``Phi_H`` or ``Lambda``)."""
        return self._values[0]

    @property
    def secondary(self) -> float:
        """The second component (``Phi_L``), or ``0.0`` for 1-tuples."""
        return self._values[1] if len(self._values) > 1 else 0.0

    def is_finite(self) -> bool:
        """Whether every component is finite."""
        return all(math.isfinite(v) for v in self._values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LexCost):
            return NotImplemented
        return self._values == other._values

    def __lt__(self, other: "LexCost") -> bool:
        if not isinstance(other, LexCost):
            return NotImplemented
        if len(self._values) != len(other._values):
            raise ValueError("cannot compare LexCosts of different arity")
        return self._values < other._values

    def __hash__(self) -> int:
        return hash(self._values)

    def __iter__(self) -> Iterator[float]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:
        inner = ", ".join(f"{v:.6g}" for v in self._values)
        return f"<{inner}>"
