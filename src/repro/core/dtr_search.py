"""DTR link-weight search: the paper's Algorithm 1 with FindH/FindL (Algorithm 2).

Routine 1 optimizes the high-priority weights ``W_H`` under the full
lexicographic objective with the low-priority weights held fixed.
Routine 2 freezes the best ``W_H`` and optimizes ``W_L`` by the
low-priority cost alone (``W_L`` cannot affect the high-priority class).
Routine 3 refines both vectors together in a small neighborhood of the
incumbent, alternating FindH and FindL steps.  Each routine diversifies by
randomly perturbing a fraction of weights after ``M`` stale iterations.
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.core.evaluator import DualTopologyEvaluator, Evaluation
from repro.core.lexicographic import LexCost
from repro.core.neighborhood import NeighborhoodSampler
from repro.core.perturbation import perturb_weights
from repro.core.progress import ProgressFn, ProgressTicker
from repro.core.search_params import SearchParams
from repro.determinism import default_rng
from repro.routing.weights import random_weights

PHASE_HIGH = "high"
PHASE_LOW = "low"
PHASE_REFINE = "refine"


@dataclass
class DtrResult:
    """Outcome of a DTR search.

    Attributes:
        high_weights: Best high-priority weight vector ``W_H*``.
        low_weights: Best low-priority weight vector ``W_L*``.
        objective: Lexicographic cost of the best setting.
        evaluation: Full evaluation of the best setting.
        history: ``(phase, iteration, objective)`` at each improvement.
        evaluations: Weight settings evaluated during the search.
    """

    high_weights: np.ndarray
    low_weights: np.ndarray
    objective: LexCost
    evaluation: Evaluation
    history: list[tuple[str, int, LexCost]] = field(default_factory=list)
    evaluations: int = 0


class _DtrSearch:
    """One run of Algorithm 1."""

    def __init__(
        self,
        evaluator: DualTopologyEvaluator,
        params: SearchParams,
        rng: random.Random,
        initial_high: np.ndarray,
        initial_low: np.ndarray,
        progress: Optional[ProgressFn] = None,
    ) -> None:
        self.evaluator = evaluator
        self.params = params
        self.rng = rng
        self.ticker = ProgressTicker(progress, params.progress_interval)
        self.sampler = NeighborhoodSampler(params, rng)
        self.wh = initial_high.copy()
        self.wl = initial_low.copy()
        self.best_wh = initial_high.copy()
        self.best_wl = initial_low.copy()
        self.best_objective = evaluator.evaluate(self.wh, self.wl).objective
        self.history: list[tuple[str, int, LexCost]] = [
            (PHASE_HIGH, 0, self.best_objective)
        ]

    def _tick(self, phase: str, iteration: int, total: int) -> None:
        """Invoke the progress callback on heartbeat iterations."""
        self.ticker.tick(phase, iteration, total)

    # -- Algorithm 2 -----------------------------------------------------
    def find_step(self, which: str) -> None:
        """One FindH (``which='high'``) or FindL (``which='low'``) move.

        Replaces the current solution with the best neighbor if that
        neighbor improves it; otherwise the current solution is kept.
        """
        evaluation = self.evaluator.evaluate(self.wh, self.wl)
        if which == PHASE_HIGH:
            keys = evaluation.high_link_sort_keys()
            order = sorted(range(len(keys)), key=lambda i: keys[i], reverse=True)
            current, metric = self.wh, evaluation.objective
        else:
            keys = evaluation.low_link_sort_keys()
            order = list(np.argsort(-np.asarray(keys), kind="stable"))
            current, metric = self.wl, evaluation.phi_low

        best_neighbor = None
        best_metric = metric
        for delta in self.sampler.neighbor_deltas(current, order):
            if which == PHASE_HIGH:
                neighbor, candidate = self.evaluator.evaluate_high_neighbor(
                    current, self.wl, delta
                )
                candidate_metric = candidate.objective
            else:
                neighbor, candidate = self.evaluator.evaluate_low_neighbor(
                    self.wh, current, delta
                )
                candidate_metric = candidate.phi_low
            if candidate_metric < best_metric:
                best_metric = candidate_metric
                best_neighbor = neighbor
        if best_neighbor is not None:
            if which == PHASE_HIGH:
                self.wh = best_neighbor
            else:
                self.wl = best_neighbor

    # -- Algorithm 1 routines ---------------------------------------------
    def routine_high(self) -> None:
        """Routine 1: optimize ``W_H`` with ``W_L`` fixed (lines 3-12)."""
        stale = 0
        for iteration in range(1, self.params.iterations_high + 1):
            self._tick(PHASE_HIGH, iteration, self.params.iterations_high)
            self.find_step(PHASE_HIGH)
            objective = self.evaluator.evaluate(self.wh, self.wl).objective
            if objective < self.best_objective:
                self.best_objective = objective
                self.best_wh = self.wh.copy()
                self.best_wl = self.wl.copy()
                self.history.append((PHASE_HIGH, iteration, objective))
                stale = 0
            else:
                stale += 1
            if stale >= self.params.diversification_interval:
                self.wh = self._perturb(self.wh, self.params.perturb_high_fraction)
                stale = 0
        self.ticker.finish(PHASE_HIGH, self.params.iterations_high)

    def routine_low(self) -> None:
        """Routine 2: freeze ``W_H*``, optimize ``W_L`` by ``Phi_L`` (lines 13-24)."""
        self.wh = self.best_wh.copy()
        self.wl = self.best_wl.copy()
        best_phi_low = self.evaluator.evaluate(self.wh, self.wl).phi_low
        stale = 0
        for iteration in range(1, self.params.iterations_low + 1):
            self._tick(PHASE_LOW, iteration, self.params.iterations_low)
            self.find_step(PHASE_LOW)
            evaluation = self.evaluator.evaluate(self.wh, self.wl)
            if evaluation.phi_low < best_phi_low:
                best_phi_low = evaluation.phi_low
                self.best_wl = self.wl.copy()
                self.best_objective = evaluation.objective
                self.history.append((PHASE_LOW, iteration, evaluation.objective))
                stale = 0
            else:
                stale += 1
            if stale >= self.params.diversification_interval:
                self.wl = self._perturb(self.wl, self.params.perturb_low_fraction)
                stale = 0
        self.ticker.finish(PHASE_LOW, self.params.iterations_low)

    def routine_refine(self) -> None:
        """Routine 3: joint refinement around the incumbent (lines 25-38)."""
        self.wh = self.best_wh.copy()
        self.wl = self.best_wl.copy()
        stale = 0
        for iteration in range(1, self.params.iterations_refine + 1):
            self._tick(PHASE_REFINE, iteration, self.params.iterations_refine)
            self.find_step(PHASE_HIGH)
            self.find_step(PHASE_LOW)
            objective = self.evaluator.evaluate(self.wh, self.wl).objective
            if objective < self.best_objective:
                self.best_objective = objective
                self.best_wh = self.wh.copy()
                self.best_wl = self.wl.copy()
                self.history.append((PHASE_REFINE, iteration, objective))
                stale = 0
            else:
                stale += 1
            if stale >= self.params.diversification_interval:
                self.wh = self._perturb(self.best_wh, self.params.perturb_refine_fraction)
                self.wl = self._perturb(self.best_wl, self.params.perturb_refine_fraction)
                stale = 0
        self.ticker.finish(PHASE_REFINE, self.params.iterations_refine)

    def _perturb(self, weights: np.ndarray, fraction: float) -> np.ndarray:
        return perturb_weights(
            weights, fraction, self.rng, self.params.min_weight, self.params.max_weight
        )


def optimize_dtr(
    evaluator: DualTopologyEvaluator,
    params: Optional[SearchParams] = None,
    rng: Optional[random.Random] = None,
    initial_high: Optional[Sequence[int]] = None,
    initial_low: Optional[Sequence[int]] = None,
    progress: Optional[ProgressFn] = None,
) -> DtrResult:
    """Deprecated entry point: delegates to the ``"dtr"`` strategy.

    Use :func:`repro.api.optimize` with ``strategy="dtr"`` instead; this
    shim wraps the evaluator in a :class:`repro.api.Session`, routes the
    call through the strategy registry, and unwraps the legacy
    :class:`DtrResult` — results are identical for a fixed ``rng``.
    """
    warnings.warn(
        "optimize_dtr is deprecated; use "
        "repro.api.optimize(session, strategy='dtr')",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.api import optimize as api_optimize
    from repro.api.session import Session

    result = api_optimize(
        Session.from_evaluator(evaluator),
        strategy="dtr",
        params=params,
        rng=rng or default_rng("core/dtr_search"),
        initial_high=initial_high,
        initial_low=initial_low,
        progress=progress,
    )
    return result.raw


def _optimize_dtr_impl(
    evaluator: DualTopologyEvaluator,
    params: Optional[SearchParams] = None,
    rng: Optional[random.Random] = None,
    initial_high: Optional[Sequence[int]] = None,
    initial_low: Optional[Sequence[int]] = None,
    progress: Optional[ProgressFn] = None,
) -> DtrResult:
    """Search for a dual weight setting minimizing the lexicographic objective.

    The implementation behind the registered ``"dtr"`` strategy (the
    paper's Algorithms 1-2).

    Args:
        evaluator: Cost evaluator (load or SLA mode).
        params: Search budgets; library defaults if omitted.
        rng: Source of randomness; a fresh unseeded one is created if omitted.
        initial_high: Starting high-priority weights; random if omitted.
            Seeding both vectors with an STR solution guarantees DTR never
            ends lexicographically worse than that solution.
        initial_low: Starting low-priority weights; defaults to
            ``initial_high`` when that is given, otherwise random.
        progress: Optional heartbeat callback, called as
            ``progress(phase, iteration, total)`` with phase one of
            ``"high"`` / ``"low"`` / ``"refine"`` every
            ``params.progress_interval`` iterations.

    Returns:
        A :class:`DtrResult`.
    """
    params = params or SearchParams()
    rng = rng or default_rng("core/dtr_search")
    num_links = evaluator.network.num_links

    if initial_high is None:
        wh0 = random_weights(num_links, rng, params.min_weight, params.max_weight)
    else:
        wh0 = np.array(initial_high, dtype=np.int64)
    if initial_low is None:
        wl0 = wh0.copy() if initial_high is not None else random_weights(
            num_links, rng, params.min_weight, params.max_weight
        )
    else:
        wl0 = np.array(initial_low, dtype=np.int64)

    start_evals = evaluator.evaluations
    search = _DtrSearch(evaluator, params, rng, wh0, wl0, progress=progress)
    search.routine_high()
    search.routine_low()
    search.routine_refine()

    return DtrResult(
        high_weights=search.best_wh,
        low_weights=search.best_wl,
        objective=search.best_objective,
        evaluation=evaluator.evaluate(search.best_wh, search.best_wl),
        history=search.history,
        evaluations=evaluator.evaluations - start_evals,
    )
