"""Simulated-annealing baseline for STR weight search.

The weight-setting literature the paper cites spans local search [2],
genetic [3], and memetic [4] algorithms.  This module provides a
simulated-annealing optimizer over the same solution space (integer
weights in ``[1, 30]``, lexicographic objective) as an independent
baseline for the paper's rank-biased local search — used by the ablation
benchmarks to show the heuristic's structure earns its keep under equal
evaluation budgets.
"""

from __future__ import annotations

import math
import random
import warnings
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.core.evaluator import DualTopologyEvaluator, Evaluation
from repro.core.lexicographic import LexCost
from repro.core.progress import ProgressFn, ProgressTicker
from repro.core.search_params import SearchParams
from repro.determinism import default_rng
from repro.routing.incremental import WeightDelta
from repro.routing.weights import random_weights


@dataclass(frozen=True)
class AnnealingParams:
    """Simulated-annealing schedule.

    Attributes:
        iterations: Proposal count.
        initial_temperature: Starting temperature, in units of *relative*
            secondary-cost increase (primary-cost increases are always
            rejected to respect the lexicographic precedence).
        cooling: Geometric cooling factor per iteration.
        moves_per_proposal: Links mutated per proposal.
    """

    iterations: int = 1400
    initial_temperature: float = 0.3
    cooling: float = 0.997
    moves_per_proposal: int = 1

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if self.initial_temperature <= 0:
            raise ValueError("initial_temperature must be positive")
        if not 0 < self.cooling < 1:
            raise ValueError("cooling must be in (0, 1)")
        if self.moves_per_proposal < 1:
            raise ValueError("moves_per_proposal must be >= 1")


@dataclass
class AnnealingResult:
    """Outcome of a simulated-annealing run."""

    weights: np.ndarray
    objective: LexCost
    evaluation: Evaluation
    accepted: int = 0
    rejected: int = 0
    history: list[tuple[int, LexCost]] = field(default_factory=list)


def _acceptance_probability(
    current: LexCost, candidate: LexCost, temperature: float
) -> float:
    """Lexicographic Metropolis rule.

    Improvements are always accepted.  A candidate that worsens only the
    secondary cost is accepted with probability
    ``exp(-relative_increase / T)``.  A candidate that worsens the primary
    cost is always rejected, preserving the class precedence.
    """
    if candidate <= current:
        return 1.0
    if candidate.primary > current.primary:
        return 0.0
    base = max(current.secondary, 1e-12)
    increase = (candidate.secondary - current.secondary) / base
    return math.exp(-increase / max(temperature, 1e-12))


def anneal_str(
    evaluator: DualTopologyEvaluator,
    params: Optional[AnnealingParams] = None,
    search_params: Optional[SearchParams] = None,
    rng: Optional[random.Random] = None,
    initial_weights: Optional[Sequence[int]] = None,
    progress: Optional[ProgressFn] = None,
) -> AnnealingResult:
    """Deprecated entry point: delegates to the ``"anneal"`` strategy.

    Use :func:`repro.api.optimize` with ``strategy="anneal"`` instead;
    this shim wraps the evaluator in a :class:`repro.api.Session`, routes
    the call through the strategy registry, and unwraps the legacy
    :class:`AnnealingResult` — results are identical for a fixed ``rng``.
    """
    warnings.warn(
        "anneal_str is deprecated; use "
        "repro.api.optimize(session, strategy='anneal')",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.api import optimize as api_optimize
    from repro.api.session import Session

    result = api_optimize(
        Session.from_evaluator(evaluator),
        strategy="anneal",
        params=search_params,
        annealing_params=params,
        rng=rng or default_rng("core/annealing"),
        initial_weights=initial_weights,
        progress=progress,
    )
    return result.raw


def _anneal_str_impl(
    evaluator: DualTopologyEvaluator,
    params: Optional[AnnealingParams] = None,
    search_params: Optional[SearchParams] = None,
    rng: Optional[random.Random] = None,
    initial_weights: Optional[Sequence[int]] = None,
    progress: Optional[ProgressFn] = None,
) -> AnnealingResult:
    """Simulated-annealing search for a single (STR) weight vector.

    The implementation behind the registered ``"anneal"`` strategy.

    Args:
        evaluator: Cost evaluator (load or SLA mode).
        params: Annealing schedule; defaults roughly match the evaluation
            budget of the default :class:`SearchParams` local search.
        search_params: Supplies the weight range and progress interval;
            defaults if omitted.
        rng: Source of randomness; a fresh unseeded one is created if omitted.
        initial_weights: Starting point; random weights if omitted.
        progress: Optional heartbeat callback, called as
            ``progress("anneal", iteration, total)`` every
            ``search_params.progress_interval`` iterations and once at
            termination.

    Returns:
        An :class:`AnnealingResult` with the best (not final) state.
    """
    params = params or AnnealingParams()
    search_params = search_params or SearchParams()
    rng = rng or default_rng("core/annealing")
    num_links = evaluator.network.num_links

    if initial_weights is None:
        current = random_weights(
            num_links, rng, search_params.min_weight, search_params.max_weight
        )
    else:
        current = np.array(initial_weights, dtype=np.int64)

    current_eval = evaluator.evaluate_str(current)
    best = current.copy()
    best_objective = current_eval.objective
    history = [(0, best_objective)]
    temperature = params.initial_temperature
    accepted = 0
    rejected = 0
    ticker = ProgressTicker(progress, search_params.progress_interval)

    for iteration in range(1, params.iterations + 1):
        ticker.tick("anneal", iteration, params.iterations)
        candidate = current.copy()
        for _ in range(params.moves_per_proposal):
            link = rng.randrange(num_links)
            candidate[link] = rng.randint(
                search_params.min_weight, search_params.max_weight
            )
        delta = WeightDelta.from_weights(current, candidate)
        candidate_eval = evaluator.evaluate(
            candidate,
            candidate,
            high_base=current,
            high_delta=delta,
            low_base=current,
            low_delta=delta,
        )
        probability = _acceptance_probability(
            current_eval.objective, candidate_eval.objective, temperature
        )
        if rng.random() < probability:
            current, current_eval = candidate, candidate_eval
            accepted += 1
            if current_eval.objective < best_objective:
                best = current.copy()
                best_objective = current_eval.objective
                history.append((iteration, best_objective))
        else:
            rejected += 1
        temperature *= params.cooling

    ticker.finish("anneal", params.iterations)
    return AnnealingResult(
        weights=best,
        objective=best_objective,
        evaluation=evaluator.evaluate_str(best),
        accepted=accepted,
        rejected=rejected,
        history=history,
    )
