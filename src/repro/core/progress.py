"""Progress-event plumbing shared by every search strategy.

All searches report liveness through one callback shape so callers
(campaign heartbeat writers, CLI spinners, the ``repro.api`` facade)
never need per-strategy plumbing.  The contract:

* an event fires every ``SearchParams.progress_interval`` iterations;
* one *terminal* event ``(phase, total, total)`` is always emitted when a
  phase ends — including zero-iteration phases, where it is the only
  event — so a consumer can rely on seeing completion without tracking
  interval alignment;
* callbacks observe the search only: they never consume randomness and
  must not mutate search state, so attaching one cannot change the
  trajectory.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro import obs

ProgressFn = Callable[[str, int, int], None]
"""Progress callback ``(phase, iteration, total_iterations)``."""


class ProgressTicker:
    """Emits interval-aligned heartbeats plus a guaranteed terminal event.

    Searches call :meth:`tick` once per iteration and :meth:`finish` once
    when a phase terminates.  ``finish`` emits ``(phase, total, total)``
    unless the final iteration's tick already did, so consumers see the
    terminal event exactly once per phase.

    Args:
        progress: The callback, or ``None`` to disable all events.
        interval: Iterations between heartbeats (>= 1).
    """

    def __init__(self, progress: Optional[ProgressFn], interval: int) -> None:
        if interval < 1:
            raise ValueError("progress interval must be >= 1")
        self._progress = progress
        self._interval = interval
        self._last: Optional[tuple[str, int]] = None
        # The obs bridge: interval-aligned events also land as counters/
        # gauges (out-of-band, rule RL006), even with no callback
        # attached.  Captured once — a ticker lives for one phase.
        self._obs_active = obs.enabled()

    def tick(self, phase: str, iteration: int, total: int) -> None:
        """Heartbeat for one iteration; fires on interval alignment or at the end."""
        if self._progress is None and not self._obs_active:
            return
        if iteration % self._interval == 0 or iteration == total:
            self._emit(phase, iteration, total)

    def finish(self, phase: str, total: int) -> None:
        """Terminal event for a phase; always fires unless the tick at
        ``iteration == total`` already emitted it."""
        if self._progress is None and not self._obs_active:
            return
        if self._last != (phase, total):
            self._emit(phase, total, total)

    def _emit(self, phase: str, iteration: int, total: int) -> None:
        self._last = (phase, iteration)
        if self._obs_active:
            obs.counter(
                "repro_search_progress_events_total",
                "Interval-aligned search progress events by phase.",
                {"phase": phase},
            ).inc()
            obs.gauge(
                "repro_search_phase_iteration",
                "Last reported iteration by phase.",
                {"phase": phase},
            ).set(iteration)
        if self._progress is not None:
            self._progress(phase, iteration, total)
