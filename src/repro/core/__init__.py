"""Core contribution: DTR link-weight search (paper Algorithms 1 and 2).

This package implements the paper's heuristic for jointly optimizing the
two link-weight vectors of dual-topology routing under a lexicographic
objective, plus the single-topology (STR) Fortz-Thorup-style baseline and
its epsilon-relaxed variant (Sections 3.3.2 and 5.3).
"""

from repro.core.lexicographic import LexCost
from repro.core.progress import ProgressFn, ProgressTicker
from repro.core.search_params import SearchParams
from repro.core.evaluator import DualTopologyEvaluator
from repro.core.rank_selection import draw_rank, rank_probabilities
from repro.core.perturbation import perturb_weights
from repro.core.neighborhood import NeighborhoodSampler
from repro.core.str_search import StrResult, optimize_str
from repro.core.dtr_search import DtrResult, optimize_dtr
from repro.core.joint_search import JointResult, alpha_sweep, optimize_joint
from repro.core.annealing import AnnealingParams, AnnealingResult, anneal_str
from repro.core.slicing import SlicedResult, optimize_sliced_low, slice_traffic_matrix

__all__ = [
    "SlicedResult",
    "optimize_sliced_low",
    "slice_traffic_matrix",
    "JointResult",
    "optimize_joint",
    "alpha_sweep",
    "AnnealingParams",
    "AnnealingResult",
    "anneal_str",
    "LexCost",
    "ProgressFn",
    "ProgressTicker",
    "SearchParams",
    "DualTopologyEvaluator",
    "draw_rank",
    "rank_probabilities",
    "perturb_weights",
    "NeighborhoodSampler",
    "optimize_str",
    "StrResult",
    "optimize_dtr",
    "DtrResult",
]
