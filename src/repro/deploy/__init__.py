"""Deployment artifacts: MT-OSPF router configuration generation."""

from repro.deploy.config_gen import (
    RouterConfig,
    generate_router_configs,
    parse_router_config,
    render_router_config,
)

__all__ = [
    "RouterConfig",
    "generate_router_configs",
    "render_router_config",
    "parse_router_config",
]
