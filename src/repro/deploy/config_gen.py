"""MT-OSPF router configuration generation from optimized weight vectors.

Turns a multi-topology weight assignment into per-router configuration
stanzas in an IOS-like syntax (RFC 4915 multi-topology OSPF: one cost per
interface per topology).  The renderer and parser round-trip, so the
configs double as a portable serialization of a deployment.

Example output for one router::

    router ospf 1
     node 3
     topology high tid 32
     topology low tid 33
    !
    interface link-3-7
     description to node 7
     topology high cost 12
     topology low cost 4
    !
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.network.graph import Network

BASE_TOPOLOGY_ID = 32
"""First RFC 4915 multi-topology ID assigned to a traffic class."""


@dataclass(frozen=True)
class RouterConfig:
    """Configuration of one router.

    Attributes:
        node: Node id this router implements.
        topology_ids: Class label -> MT-ID mapping.
        interface_costs: ``(neighbor, class label) -> cost``.
    """

    node: int
    topology_ids: Mapping[str, int]
    interface_costs: Mapping[tuple[int, str], int]

    def neighbors(self) -> list[int]:
        """Neighbors with configured interfaces, sorted."""
        return sorted({neighbor for neighbor, _ in self.interface_costs})


def generate_router_configs(
    net: Network, weights_by_class: Mapping[str, Sequence[int]]
) -> list[RouterConfig]:
    """Build one :class:`RouterConfig` per node from class weight vectors.

    Args:
        net: The network; each directed link becomes an interface on its
            source router.
        weights_by_class: Class label -> per-link weight vector.

    Returns:
        Configs for nodes ``0 .. num_nodes - 1`` in order.

    Raises:
        ValueError: if any weight vector has the wrong length.
    """
    if not weights_by_class:
        raise ValueError("at least one traffic class is required")
    arrays = {}
    for label, weights in weights_by_class.items():
        arr = np.asarray(weights)
        if arr.shape != (net.num_links,):
            raise ValueError(
                f"class {label!r}: expected {net.num_links} weights, got {arr.shape}"
            )
        arrays[label] = arr
    topology_ids = {
        label: BASE_TOPOLOGY_ID + i for i, label in enumerate(sorted(arrays))
    }
    configs = []
    for node in net.nodes():
        costs = {}
        for link in net.out_links(node):
            for label, arr in arrays.items():
                costs[(link.dst, label)] = int(arr[link.index])
        configs.append(
            RouterConfig(node=node, topology_ids=topology_ids, interface_costs=costs)
        )
    return configs


def render_router_config(config: RouterConfig) -> str:
    """Render one router's configuration as IOS-like text."""
    lines = ["router ospf 1", f" node {config.node}"]
    for label in sorted(config.topology_ids):
        lines.append(f" topology {label} tid {config.topology_ids[label]}")
    lines.append("!")
    for neighbor in config.neighbors():
        lines.append(f"interface link-{config.node}-{neighbor}")
        lines.append(f" description to node {neighbor}")
        for label in sorted(config.topology_ids):
            cost = config.interface_costs[(neighbor, label)]
            lines.append(f" topology {label} cost {cost}")
        lines.append("!")
    return "\n".join(lines) + "\n"


def parse_router_config(text: str) -> RouterConfig:
    """Parse the output of :func:`render_router_config` back.

    Raises:
        ValueError: on malformed input.
    """
    node = None
    topology_ids: dict[str, int] = {}
    interface_costs: dict[tuple[int, str], int] = {}
    current_neighbor = None
    in_router_block = False
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line == "router ospf 1":
            in_router_block = True
        elif line == "!":
            in_router_block = False
            current_neighbor = None
        elif line.startswith("node ") and in_router_block:
            node = int(line.split()[1])
        elif line.startswith("topology ") and " tid " in line:
            parts = line.split()
            topology_ids[parts[1]] = int(parts[3])
        elif line.startswith("interface link-"):
            _, _, endpoints = line.partition("link-")
            src, _, dst = endpoints.partition("-")
            current_neighbor = int(dst)
        elif line.startswith("topology ") and " cost " in line:
            if current_neighbor is None:
                raise ValueError(f"cost outside an interface block: {line!r}")
            parts = line.split()
            interface_costs[(current_neighbor, parts[1])] = int(parts[3])
        elif line.startswith("description"):
            continue
        else:
            raise ValueError(f"unrecognized config line: {line!r}")
    if node is None:
        raise ValueError("missing 'node' statement")
    return RouterConfig(
        node=node, topology_ids=topology_ids, interface_costs=interface_costs
    )
