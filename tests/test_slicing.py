"""Tests for multi-topology traffic slicing (Balon-Leduc MTR TE)."""

import random

import numpy as np
import pytest

from repro.core.evaluator import DualTopologyEvaluator
from repro.core.search_params import SearchParams
from repro.core.slicing import SlicedResult, optimize_sliced_low, slice_traffic_matrix
from repro.routing.weights import unit_weights
from repro.traffic.gravity import gravity_traffic_matrix
from repro.traffic.matrix import TrafficMatrix

FAST = SearchParams(
    iterations_high=10, iterations_low=30, iterations_refine=10, diversification_interval=10
)


class TestSliceTrafficMatrix:
    def test_slices_sum_to_original(self):
        tm = gravity_traffic_matrix(10, random.Random(1))
        slices = slice_traffic_matrix(tm, 4, random.Random(2))
        assert len(slices) == 4
        total = slices[0]
        for part in slices[1:]:
            total = total + part
        np.testing.assert_allclose(total.demands, tm.demands)

    def test_pairs_not_split_across_slices(self):
        tm = gravity_traffic_matrix(8, random.Random(3))
        slices = slice_traffic_matrix(tm, 3, random.Random(4))
        for s, t, rate in tm.pairs():
            holders = [sl for sl in slices if sl.rate(s, t) > 0]
            assert len(holders) == 1
            assert holders[0].rate(s, t) == pytest.approx(rate)

    def test_volume_balanced(self):
        tm = gravity_traffic_matrix(12, random.Random(5))
        slices = slice_traffic_matrix(tm, 3, random.Random(6))
        volumes = [sl.total() for sl in slices]
        assert max(volumes) / min(volumes) < 1.3

    def test_single_slice_is_identity(self):
        tm = gravity_traffic_matrix(6, random.Random(7))
        (only,) = slice_traffic_matrix(tm, 1, random.Random(8))
        assert only == tm

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            slice_traffic_matrix(TrafficMatrix.zeros(4), 0)


class TestOptimizeSlicedLow:
    @pytest.fixture
    def evaluator(self, isp_net, small_traffic):
        high, low = small_traffic
        return DualTopologyEvaluator(isp_net, high, low, mode="load")

    def test_requires_load_mode(self, isp_net, small_traffic):
        high, low = small_traffic
        sla_eval = DualTopologyEvaluator(isp_net, high, low, mode="sla")
        with pytest.raises(ValueError, match="load-mode"):
            optimize_sliced_low(sla_eval, unit_weights(isp_net.num_links), 2)

    def test_result_shape(self, evaluator):
        wh = unit_weights(evaluator.network.num_links)
        result = optimize_sliced_low(
            evaluator, wh, num_slices=2, params=FAST, rng=random.Random(1)
        )
        assert isinstance(result, SlicedResult)
        assert result.num_topologies == 3
        assert len(result.slice_weights) == 2
        assert len(result.slices) == 2

    def test_phi_high_matches_high_weights(self, evaluator):
        wh = unit_weights(evaluator.network.num_links)
        result = optimize_sliced_low(
            evaluator, wh, num_slices=2, params=FAST, rng=random.Random(2)
        )
        reference = evaluator.evaluate(wh, wh)
        assert result.objective.primary == pytest.approx(reference.phi_high)

    def test_improves_over_shared_weights(self, evaluator):
        """Slicing must not end worse than routing all low traffic on w_H."""
        wh = unit_weights(evaluator.network.num_links)
        start = evaluator.evaluate(wh, wh)
        result = optimize_sliced_low(
            evaluator, wh, num_slices=2, params=FAST, rng=random.Random(3)
        )
        assert result.objective.secondary <= start.phi_low + 1e-9

    def test_history_monotone(self, evaluator):
        wh = unit_weights(evaluator.network.num_links)
        result = optimize_sliced_low(
            evaluator, wh, num_slices=3, params=FAST, rng=random.Random(4)
        )
        values = [v for _, v in result.history]
        assert all(b <= a for a, b in zip(values, values[1:]))
        assert result.history[-1][1] == pytest.approx(result.objective.secondary)

    def test_best_weights_reproduce_best_cost(self, evaluator):
        """Replaying the returned slice weights yields the reported Phi_L."""
        from repro.costs.fortz import fortz_cost_vector
        from repro.costs.residual import residual_capacities
        from repro.routing.state import Routing

        net = evaluator.network
        wh = unit_weights(net.num_links)
        result = optimize_sliced_low(
            evaluator, wh, num_slices=2, params=FAST, rng=random.Random(5)
        )
        high_loads = Routing(net, wh).link_loads(evaluator.high_traffic)
        residual = residual_capacities(net.capacities(), high_loads)
        low_loads = np.zeros(net.num_links)
        for weights, part in zip(result.slice_weights, result.slices):
            low_loads += Routing(net, weights).link_loads(part)
        phi_low = float(fortz_cost_vector(low_loads, residual).sum())
        assert phi_low == pytest.approx(result.objective.secondary)

    def test_deterministic(self, evaluator):
        wh = unit_weights(evaluator.network.num_links)
        a = optimize_sliced_low(evaluator, wh, 2, params=FAST, rng=random.Random(42))
        b = optimize_sliced_low(evaluator, wh, 2, params=FAST, rng=random.Random(42))
        assert a.objective == b.objective
