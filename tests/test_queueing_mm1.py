"""Tests for the analytic M/M/1 priority formulas."""

import pytest

from repro.queueing.mm1 import (
    mm1_mean_response_time,
    mm1_utilization,
    nonpreemptive_priority_response_times,
    preemptive_priority_response_times,
)


def test_mm1_utilization():
    assert mm1_utilization(3.0, 10.0) == pytest.approx(0.3)


def test_mm1_response_time():
    assert mm1_mean_response_time(0.5, 1.0) == pytest.approx(2.0)
    assert mm1_mean_response_time(0.0, 2.0) == pytest.approx(0.5)


def test_mm1_unstable_rejected():
    with pytest.raises(ValueError, match="unstable"):
        mm1_mean_response_time(1.0, 1.0)


def test_invalid_rates_rejected():
    with pytest.raises(ValueError):
        mm1_mean_response_time(-1.0, 1.0)
    with pytest.raises(ValueError):
        mm1_mean_response_time(0.5, 0.0)


def test_preemptive_high_class_sees_private_queue():
    """High priority is impervious to low-priority load (paper's premise)."""
    t_high_alone, _ = preemptive_priority_response_times(0.3, 1e-9, 1.0)
    t_high_loaded, _ = preemptive_priority_response_times(0.3, 0.6, 1.0)
    assert t_high_loaded == pytest.approx(t_high_alone)
    assert t_high_loaded == pytest.approx(mm1_mean_response_time(0.3, 1.0))


def test_preemptive_low_class_degrades_with_high_load():
    _, t_low_light = preemptive_priority_response_times(0.1, 0.3, 1.0)
    _, t_low_heavy = preemptive_priority_response_times(0.5, 0.3, 1.0)
    assert t_low_heavy > t_low_light


def test_preemptive_formula_values():
    t_high, t_low = preemptive_priority_response_times(0.3, 0.3, 1.0)
    assert t_high == pytest.approx(1.0 / 0.7)
    assert t_low == pytest.approx(1.0 / (0.7 * 0.4))


def test_preemptive_saturation_rejected():
    with pytest.raises(ValueError, match="saturates"):
        preemptive_priority_response_times(1.0, 0.0, 1.0)
    with pytest.raises(ValueError, match="saturates"):
        preemptive_priority_response_times(0.5, 0.5, 1.0)


def test_nonpreemptive_formula_values():
    t_high, t_low = nonpreemptive_priority_response_times(0.3, 0.3, 1.0)
    residual = 0.6
    assert t_high == pytest.approx(residual / 0.7 + 1.0)
    assert t_low == pytest.approx(residual / (0.7 * 0.4) + 1.0)


def test_nonpreemptive_high_sees_low_residual():
    """Unlike preemptive, the high class does feel low-priority residuals."""
    t_high_alone, _ = nonpreemptive_priority_response_times(0.3, 1e-9, 1.0)
    t_high_loaded, _ = nonpreemptive_priority_response_times(0.3, 0.6, 1.0)
    assert t_high_loaded > t_high_alone


def test_nonpreemptive_saturation_rejected():
    with pytest.raises(ValueError, match="saturates"):
        nonpreemptive_priority_response_times(0.7, 0.3, 1.0)


def test_classes_converge_when_high_vanishes():
    _, t_low = preemptive_priority_response_times(0.0, 0.5, 1.0)
    assert t_low == pytest.approx(mm1_mean_response_time(0.5, 1.0))
