"""Tests for the strategy/cost-model registries and their error paths."""

import pytest

from repro.api import (
    COST_MODELS,
    STRATEGIES,
    DuplicateRegistrationError,
    JointCostModel,
    Registry,
    UnknownNameError,
    available_cost_models,
    available_strategies,
    get_cost_model,
    get_strategy,
    register_strategy,
)


class TestRegistry:
    def test_register_and_get(self):
        reg = Registry("widget")
        reg.register("a", 1)
        assert reg.get("a") == 1
        assert reg.names() == ("a",)
        assert "a" in reg

    def test_unknown_name_lists_alternatives(self):
        reg = Registry("widget")
        reg.register("alpha", 1)
        reg.register("beta", 2)
        with pytest.raises(UnknownNameError) as exc:
            reg.get("gamma")
        message = str(exc.value)
        assert "gamma" in message
        assert "alpha" in message and "beta" in message
        assert "widget" in message

    def test_unknown_name_on_empty_registry(self):
        with pytest.raises(UnknownNameError, match=r"\(none\)"):
            Registry("widget").get("anything")

    def test_duplicate_registration_rejected(self):
        reg = Registry("widget")
        reg.register("a", 1)
        with pytest.raises(DuplicateRegistrationError, match="already registered"):
            reg.register("a", 2)
        assert reg.get("a") == 1  # the original survives

    def test_replace_allows_override(self):
        reg = Registry("widget")
        reg.register("a", 1)
        reg.register("a", 2, replace=True)
        assert reg.get("a") == 2

    def test_empty_name_rejected(self):
        with pytest.raises(Exception, match="non-empty"):
            Registry("widget").register("", 1)

    def test_iteration_is_sorted(self):
        reg = Registry("widget")
        reg.register("b", 1)
        reg.register("a", 2)
        assert list(reg) == ["a", "b"]


class TestStrategyRegistry:
    def test_builtins_registered(self):
        assert set(available_strategies()) >= {"str", "dtr", "joint", "anneal"}

    def test_unknown_strategy_lists_builtins(self):
        with pytest.raises(UnknownNameError) as exc:
            get_strategy("gradient-descent")
        message = str(exc.value)
        for name in ("str", "dtr", "joint", "anneal"):
            assert name in message

    def test_duplicate_strategy_registration_rejected(self):
        with pytest.raises(DuplicateRegistrationError):

            @register_strategy("str")
            class Impostor:
                name = "str"

                def run(self, session, params=None, **options):
                    raise AssertionError("never runs")

        assert get_strategy("str").__class__.__name__ == "StrStrategy"

    def test_plugin_strategy_roundtrip(self):
        @register_strategy("test-noop")
        class NoopStrategy:
            name = "test-noop"

            def run(self, session, params=None, **options):
                raise NotImplementedError

        try:
            assert "test-noop" in available_strategies()
            assert isinstance(get_strategy("test-noop"), NoopStrategy)
        finally:
            STRATEGIES.unregister("test-noop")


class TestCostModelRegistry:
    def test_builtins_registered(self):
        assert set(available_cost_models()) >= {"load", "sla", "fortz", "joint"}

    def test_unknown_cost_model(self):
        with pytest.raises(UnknownNameError, match="cost model"):
            get_cost_model("entropy")

    def test_factory_kwargs(self):
        model = get_cost_model("joint", alpha=2.5)
        assert isinstance(model, JointCostModel)
        assert model.alpha == 2.5

    def test_instance_passthrough(self):
        model = JointCostModel(alpha=0.5)
        assert get_cost_model(model) is model

    def test_instance_with_kwargs_rejected(self):
        with pytest.raises(ValueError, match="name"):
            get_cost_model(JointCostModel(), alpha=1.0)

    def test_duplicate_cost_model_rejected(self):
        with pytest.raises(DuplicateRegistrationError):
            COST_MODELS.register("load", object)


class TestCliErrorPath:
    def test_optimize_unknown_strategy_lists_registered_names(self, capsys):
        from repro.cli import main

        code = main(
            [
                "optimize", "--strategy", "bogus", "--topology", "isp",
                "--utilization", "0.5", "--scale", "0.02", "--seed", "2",
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "bogus" in err
        for name in ("str", "dtr", "joint", "anneal"):
            assert name in err
