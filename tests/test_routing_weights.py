"""Tests for link-weight helpers."""

import random

import numpy as np
import pytest

from repro.routing.weights import (
    MAX_WEIGHT,
    MIN_WEIGHT,
    as_weight_array,
    random_weights,
    unit_weights,
    validate_weights,
    weights_key,
)


def test_paper_weight_range():
    assert MIN_WEIGHT == 1
    assert MAX_WEIGHT == 30


def test_unit_weights():
    w = unit_weights(5)
    assert w.shape == (5,)
    assert np.all(w == 1)
    assert w.dtype == np.int64


def test_random_weights_in_range():
    w = random_weights(1000, random.Random(1))
    assert np.all(w >= MIN_WEIGHT)
    assert np.all(w <= MAX_WEIGHT)
    assert len(np.unique(w)) > 5


def test_random_weights_custom_range():
    w = random_weights(100, random.Random(2), min_weight=3, max_weight=4)
    assert set(np.unique(w)) <= {3, 4}


def test_random_weights_invalid_range():
    with pytest.raises(ValueError):
        random_weights(10, min_weight=5, max_weight=3)
    with pytest.raises(ValueError):
        random_weights(10, min_weight=0, max_weight=3)


def test_as_weight_array_validates_shape():
    with pytest.raises(ValueError, match="expected 3"):
        as_weight_array([1, 2], 3)


def test_as_weight_array_rejects_non_integers():
    with pytest.raises(ValueError, match="integers"):
        as_weight_array([1.5, 2, 3], 3)


def test_as_weight_array_accepts_integral_floats():
    w = as_weight_array([1.0, 2.0, 3.0], 3)
    assert w.dtype == np.int64
    assert list(w) == [1, 2, 3]


def test_as_weight_array_read_only():
    w = as_weight_array([1, 2, 3], 3)
    with pytest.raises(ValueError):
        w[0] = 9


def test_validate_weights_bounds():
    validate_weights(np.array([1, 30]))
    with pytest.raises(ValueError, match=">="):
        validate_weights(np.array([0, 5]))
    with pytest.raises(ValueError, match="<="):
        validate_weights(np.array([1, 31]))


def test_weights_key_distinguishes_vectors():
    a = weights_key(np.array([1, 2, 3], dtype=np.int64))
    b = weights_key(np.array([1, 2, 4], dtype=np.int64))
    c = weights_key(np.array([1, 2, 3], dtype=np.int64))
    assert a != b
    assert a == c
