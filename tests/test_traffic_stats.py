"""Tests for traffic-matrix statistics."""

import random

import numpy as np
import pytest

from repro.traffic.gravity import gravity_traffic_matrix
from repro.traffic.highpriority import random_high_priority
from repro.traffic.matrix import TrafficMatrix
from repro.traffic.stats import class_mix, gini_coefficient, traffic_stats


class TestGini:
    def test_uniform_is_zero(self):
        assert gini_coefficient(np.ones(10)) == pytest.approx(0.0)

    def test_concentrated_near_one(self):
        values = np.zeros(100)
        values[0] = 100.0
        assert gini_coefficient(values) > 0.95

    def test_empty_and_zero(self):
        assert gini_coefficient(np.array([])) == 0.0
        assert gini_coefficient(np.zeros(5)) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gini_coefficient(np.array([1.0, -1.0]))

    def test_scale_invariant(self):
        values = np.array([1.0, 2.0, 5.0, 10.0])
        assert gini_coefficient(values) == pytest.approx(gini_coefficient(values * 7))


class TestTrafficStats:
    def test_basic_fields(self):
        tm = TrafficMatrix.from_pairs(4, [(0, 1, 10.0), (1, 2, 30.0)])
        stats = traffic_stats(tm)
        assert stats.total_mbps == 40.0
        assert stats.pair_count == 2
        assert stats.density == pytest.approx(2 / 12)
        assert stats.max_pair_mbps == 30.0
        assert stats.mean_pair_mbps == 20.0

    def test_empty_matrix(self):
        stats = traffic_stats(TrafficMatrix.zeros(4))
        assert stats.total_mbps == 0.0
        assert stats.gini == 0.0
        assert stats.hotspot_share == 0.0

    def test_gravity_matrix_has_hotspots(self):
        tm = gravity_traffic_matrix(40, random.Random(8))
        stats = traffic_stats(tm)
        assert 0 < stats.hotspot_share < 1
        assert stats.density == pytest.approx(1.0)
        assert stats.gini > 0.05

    def test_high_priority_density_matches_k(self):
        low = gravity_traffic_matrix(20, random.Random(9))
        ht = random_high_priority(low, density=0.25, fraction=0.3, rng=random.Random(9))
        stats = traffic_stats(ht.matrix)
        assert stats.density == pytest.approx(0.25, abs=0.01)


class TestClassMix:
    def test_fraction(self):
        low = gravity_traffic_matrix(10, random.Random(1))
        ht = random_high_priority(low, density=0.2, fraction=0.35, rng=random.Random(1))
        assert class_mix(ht.matrix, low) == pytest.approx(0.35)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            class_mix(TrafficMatrix.zeros(3), TrafficMatrix.zeros(3))
