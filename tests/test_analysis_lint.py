"""The repro-lint engine (:mod:`repro.analysis`): rules, suppression,
baseline partitioning, and the registry contract."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import (
    Baseline,
    BaselineEntry,
    BaselineError,
    LintConfigError,
    UnknownRuleError,
    all_rules,
    get_rule,
    lint_paths,
    parse_suppressions,
)

FIXTURES = Path(__file__).parent / "fixtures" / "lint"


def lint_file(name, **kwargs):
    return lint_paths([FIXTURES / name], **kwargs)


# ----------------------------------------------------------------------
# Each rule fires exactly once on its fixture, and nowhere else
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "fixture, rule",
    [
        ("rl001.py", "RL001"),
        ("rl002.py", "RL002"),
        ("rl003.py", "RL003"),
        ("serve/rl004.py", "RL004"),
        ("rl005.py", "RL005"),
        ("rl006.py", "RL006"),
    ],
)
def test_rule_fires_once_on_its_fixture(fixture, rule):
    report = lint_file(fixture)
    assert [f.rule for f in report.findings] == [rule]


def test_clean_fixture_produces_no_findings():
    report = lint_file("clean.py")
    assert report.findings == []
    assert report.exit_code() == 0


def test_findings_carry_position_and_context():
    (finding,) = lint_file("rl001.py").findings
    assert finding.path.endswith("rl001.py")
    assert finding.line > 0 and finding.col >= 0
    assert finding.context == "BAD = random.Random()"
    assert finding.format().startswith(f"{finding.path}:{finding.line}:")


def test_rl004_only_applies_to_serve_paths(tmp_path):
    # The same source outside a serve/ directory is not RL004's business.
    source = (FIXTURES / "serve" / "rl004.py").read_text()
    elsewhere = tmp_path / "handlers.py"
    elsewhere.write_text(source)
    assert lint_paths([elsewhere]).findings == []


def test_rl004_lock_containment_is_lexical(tmp_path):
    serve_dir = tmp_path / "serve"
    serve_dir.mkdir()
    path = serve_dir / "nested.py"
    path.write_text(
        "def handler(session, jobs):\n"
        "    with session.lock:\n"
        "        for job in jobs:\n"
        "            session.evaluate()\n"
        "        thunk = lambda: session.what_if(1, 2)\n"
        "    return thunk\n"
    )
    assert lint_paths([path]).findings == []


# ----------------------------------------------------------------------
# Inline suppression
# ----------------------------------------------------------------------
def test_inline_directives_silence_both_styles():
    report = lint_file("suppressed.py")
    assert report.findings == []
    assert sorted(f.rule for f in report.suppressed) == ["RL001", "RL001"]


def test_rl006_suppression_is_honored():
    report = lint_file("rl006_suppressed.py")
    assert report.findings == []
    assert [f.rule for f in report.suppressed] == ["RL006"]


def test_rl006_taints_every_obs_import_style(tmp_path):
    path = tmp_path / "leaky.py"
    path.write_text(
        "import repro.obs\n"
        "from repro.obs import snapshot as grab\n"
        "from repro.serve.encoding import canonical_body\n"
        "\n"
        "def respond(payload):\n"
        "    a = canonical_body({'t': repro.obs.snapshot()})\n"
        "    b = canonical_body({'t': grab()})\n"
        "    return a, b\n"
    )
    report = lint_paths([path])
    assert [f.rule for f in report.findings] == ["RL006", "RL006"]


def test_rl006_ignores_out_of_band_telemetry(tmp_path):
    # Instrumented modules that keep obs out of the payload are clean.
    path = tmp_path / "instrumented.py"
    path.write_text(
        "from repro import obs\n"
        "from repro.serve.encoding import canonical_body\n"
        "\n"
        "def respond(payload):\n"
        "    obs.counter('repro_requests_total', 'Requests.').inc()\n"
        "    with obs.span('respond'):\n"
        "        return canonical_body({'result': payload})\n"
    )
    assert lint_paths([path]).findings == []


def test_directive_inside_string_literal_does_not_count():
    source = 'TEXT = "# repro-lint: disable=RL001"\n'
    suppressions = parse_suppressions(source)
    assert not suppressions.by_line and not suppressions.file_wide


def test_disable_file_directive_covers_whole_file(tmp_path):
    path = tmp_path / "wide.py"
    path.write_text(
        "# repro-lint: disable-file=RL001\n"
        "import random\n"
        "A = random.Random()\n"
        "\n"
        "B = random.Random()\n"
    )
    report = lint_paths([path])
    assert report.findings == []
    assert len(report.suppressed) == 2


def test_disable_all_silences_every_rule(tmp_path):
    path = tmp_path / "anything.py"
    path.write_text("import random\nA = random.Random()  # repro-lint: disable=all\n")
    assert lint_paths([path]).findings == []


# ----------------------------------------------------------------------
# Baseline: grandfathering, staleness, round-trip
# ----------------------------------------------------------------------
def test_baseline_absorbs_matching_findings():
    raw = lint_file("rl001.py")
    baseline = Baseline.from_findings(raw.findings)
    report = lint_file("rl001.py", baseline=baseline)
    assert report.findings == []
    assert len(report.grandfathered) == 1
    assert report.stale_baseline == []
    assert report.exit_code(strict=True) == 0


def test_baseline_entries_go_stale_when_code_changes():
    baseline = Baseline(
        [BaselineEntry(rule="RL001", path="gone.py", context="x = random.Random()")]
    )
    report = lint_file("clean.py", baseline=baseline)
    assert report.findings == []
    assert len(report.stale_baseline) == 1
    assert report.exit_code(strict=False) == 0
    assert report.exit_code(strict=True) == 1  # CI mode keeps the baseline tight


def test_baseline_count_bounds_absorption(tmp_path):
    path = tmp_path / "twice.py"
    path.write_text("import random\nA = random.Random()\nB = random.Random()\n")
    raw = lint_paths([path])
    assert len(raw.findings) == 2
    # The two findings share a rule but differ in context, so a baseline
    # for only the first line leaves the second fresh.
    baseline = Baseline.from_findings(raw.findings[:1])
    report = lint_paths([path], baseline=baseline)
    assert len(report.findings) == 1
    assert len(report.grandfathered) == 1


def test_baseline_save_load_round_trip(tmp_path):
    raw = lint_file("rl005.py")
    baseline = Baseline.from_findings(raw.findings)
    path = tmp_path / "baseline.json"
    baseline.save(path)
    assert Baseline.load(path).entries == baseline.entries


@pytest.mark.parametrize("payload", ["not json", "[]", '{"findings": 3}'])
def test_malformed_baseline_raises(tmp_path, payload):
    path = tmp_path / "baseline.json"
    path.write_text(payload)
    with pytest.raises(BaselineError):
        Baseline.load(path)


# ----------------------------------------------------------------------
# Registry and runner config errors
# ----------------------------------------------------------------------
def test_registry_holds_the_six_builtins():
    assert [rule.id for rule in all_rules()] == [
        "RL001", "RL002", "RL003", "RL004", "RL005", "RL006",
    ]
    assert get_rule("RL003").name == "unordered-iteration-to-canonical-output"
    assert get_rule("RL006").name == "telemetry-in-canonical-output"


def test_unknown_rule_error_lists_alternatives():
    with pytest.raises(UnknownRuleError, match="RL001"):
        get_rule("RL999")
    with pytest.raises(UnknownRuleError):
        lint_paths([FIXTURES / "clean.py"], rules=["RL999"])


def test_rule_selection_restricts_the_run():
    report = lint_paths([FIXTURES], rules=["RL002"])
    assert [f.rule for f in report.findings] == ["RL002"]


def test_missing_path_is_a_config_error():
    with pytest.raises(LintConfigError):
        lint_paths([FIXTURES / "does-not-exist.py"])


def test_unparseable_source_is_a_config_error(tmp_path):
    path = tmp_path / "broken.py"
    path.write_text("def oops(:\n")
    with pytest.raises(LintConfigError):
        lint_paths([path])


def test_json_report_shape():
    report = lint_file("rl002.py")
    doc = report.to_jsonable()
    assert doc["files"] == 1
    (finding,) = doc["findings"]
    assert finding["rule"] == "RL002"
    assert set(finding) >= {"path", "line", "col", "rule", "message", "context"}
