"""Bit-identity of the struct-of-arrays kernels against the scalar loop.

The vectorized numeric core (:mod:`repro.routing.soa`, the batched mask
and Dijkstra helpers in :mod:`repro.routing.spf`, and the batched
derivation in :mod:`repro.routing.incremental`) promises *exact* — not
approximate — agreement with the scalar reference path.  Every test here
asserts ``np.array_equal`` / ``==``, never ``allclose``.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.network.graph import Network
from repro.network.topology_isp import isp_topology
from repro.network.topology_powerlaw import powerlaw_topology
from repro.network.topology_random import random_topology
from repro.routing.incremental import (
    WeightDelta,
    derive_routing,
    derive_routings_batch,
)
from repro.routing.soa import build_schedule
from repro.routing.spf import (
    RoutingError,
    distances_to_subset,
    distances_to_subsets_batched,
    shortest_path_dag_mask,
    shortest_path_dag_masks,
)
from repro.routing.state import Routing
from repro.routing.weights import random_weights, unit_weights


def _instances():
    """(network, weights) pairs across all three topology families."""
    out = []
    for seed, build in (
        (7, lambda r: random_topology(rng=r)),
        (11, lambda r: powerlaw_topology(rng=r)),
        (3, lambda r: isp_topology()),
    ):
        net = build(random.Random(seed))
        out.append((net, random_weights(net.num_links, random.Random(seed + 1))))
        out.append((net, unit_weights(net.num_links)))
    return out


def _random_injections(net, rng, k):
    """k injection rows with a mix of dense, sparse, and zero entries."""
    n = net.num_nodes
    inj = np.zeros((k, n))
    for i in range(k):
        style = i % 3
        if style == 0:
            inj[i] = [rng.random() * 10 for _ in range(n)]
        elif style == 1:
            for _ in range(3):
                inj[i, rng.randrange(n)] = rng.random() * 5
        # style 2: all-zero row — must produce an all-zero load row.
    return inj


# ----------------------------------------------------------------------
# Kernel vs scalar reference
# ----------------------------------------------------------------------
def test_destination_rows_bitwise_equal_scalar():
    for net, weights in _instances():
        vec = Routing(net, weights, vectorized=True)
        ref = Routing(net, weights, vectorized=False)
        rng = random.Random(net.num_links)
        dests = [rng.randrange(net.num_nodes) for _ in range(8)]
        inj = _random_injections(net, rng, len(dests))
        inj[np.arange(len(dests)), dests] = 0.0
        got = vec.destination_rows(dests, inj)
        want = ref.destination_rows(dests, inj)
        assert got.shape == want.shape == (len(dests), net.num_links)
        np.testing.assert_array_equal(got, want)


def test_destination_rows_handles_repeated_destinations():
    net, weights = _instances()[0]
    vec = Routing(net, weights, vectorized=True)
    ref = Routing(net, weights, vectorized=False)
    rng = random.Random(0)
    dests = [5, 5, 9, 5]
    inj = _random_injections(net, rng, len(dests))
    inj[:, 5] = 0.0
    inj[:, 9] = 0.0
    np.testing.assert_array_equal(
        vec.destination_rows(dests, inj), ref.destination_rows(dests, inj)
    )


def test_destination_rows_empty_batch():
    net, weights = _instances()[0]
    routing = Routing(net, weights)
    out = routing.destination_rows([], np.empty((0, net.num_nodes)))
    assert out.shape == (0, net.num_links)


def test_destination_link_loads_matches_link_loads_sum():
    """Summing vectorized per-destination rows reproduces link_loads."""
    for net, weights in _instances()[:2]:
        routing = Routing(net, weights, vectorized=True)
        rng = random.Random(1)
        demands = np.zeros((net.num_nodes, net.num_nodes))
        for _ in range(25):
            s, t = rng.sample(range(net.num_nodes), 2)
            demands[s, t] = rng.random() * 8
        active = np.flatnonzero(demands.sum(axis=0) > 0)
        rows = routing.destination_rows(active, demands[:, active].T)
        total = np.zeros(net.num_links)
        for row in rows:
            total += row
        np.testing.assert_allclose(total, routing.link_loads(demands))


def test_pair_fractions_bitwise_equal_scalar():
    for net, weights in _instances():
        vec = Routing(net, weights, vectorized=True)
        ref = Routing(net, weights, vectorized=False)
        rng = random.Random(2)
        for _ in range(6):
            s, t = rng.sample(range(net.num_nodes), 2)
            np.testing.assert_array_equal(
                vec.pair_link_fractions(s, t), ref.pair_link_fractions(s, t)
            )


def test_pair_fraction_rows_match_single_pair_calls():
    net, weights = _instances()[1]
    routing = Routing(net, weights, vectorized=True)
    dst = 4
    sources = [s for s in range(net.num_nodes) if s != dst][:10]
    rows = routing.pair_fraction_rows(dst, sources)
    assert rows.shape == (len(sources), net.num_links)
    for i, s in enumerate(sources):
        np.testing.assert_array_equal(rows[i], routing.pair_link_fractions(s, dst))
    assert routing.pair_fraction_rows(dst, []).shape == (0, net.num_links)


def test_pair_fraction_rows_validation():
    net, weights = _instances()[0]
    routing = Routing(net, weights)
    with pytest.raises(ValueError, match="differ"):
        routing.pair_fraction_rows(3, [0, 3])


def test_dag_out_links_csr_matches_mask_path():
    for net, weights in _instances()[:3]:
        vec = Routing(net, weights, vectorized=True)
        ref = Routing(net, weights, vectorized=False)
        for dst in range(0, net.num_nodes, 5):
            assert vec.dag_out_links(dst) == ref.dag_out_links(dst)


def test_unreachable_error_message_matches_scalar():
    net = Network(3)
    net.add_duplex_link(0, 1)
    net.add_link(1, 2)  # node 2 cannot reach anything
    inj = np.zeros((1, 3))
    inj[0, 2] = 1.0
    messages = []
    for vectorized in (True, False):
        routing = Routing(net, unit_weights(3), vectorized=vectorized)
        with pytest.raises(RoutingError) as err:
            routing.destination_rows([0], inj)
        messages.append(str(err.value))
    assert messages[0] == messages[1]
    assert "node 0 unreachable from node 2" in messages[0]


def test_injection_shape_validated():
    net, weights = _instances()[0]
    routing = Routing(net, weights)
    with pytest.raises(ValueError, match="shape"):
        routing.destination_rows([0, 1], np.zeros((3, net.num_nodes)))


# ----------------------------------------------------------------------
# Batched masks and Dijkstra
# ----------------------------------------------------------------------
def test_dag_masks_broadcast_equals_per_destination():
    for net, weights in _instances()[:4]:
        routing = Routing(net, weights)
        dist = routing.distance_matrix
        dests = np.arange(net.num_nodes)
        masks = shortest_path_dag_masks(net, weights, dist[dests])
        assert masks.shape == (net.num_nodes, net.num_links)
        for t in dests:
            np.testing.assert_array_equal(
                masks[t], shortest_path_dag_mask(net, weights, dist[t])
            )


def test_batched_dijkstra_equals_per_task():
    rng = random.Random(17)
    tasks = []
    for net, weights in _instances()[:4]:
        dests = np.asarray(
            sorted(rng.sample(range(net.num_nodes), 5)), dtype=np.int64
        )
        tasks.append((net, weights, dests))
    # Include an empty subset: its block must come back with zero rows.
    empty_net, empty_w = _instances()[0]
    tasks.append((empty_net, empty_w, np.empty(0, dtype=np.int64)))
    blocks = distances_to_subsets_batched(tasks)
    assert len(blocks) == len(tasks)
    for (net, weights, dests), block in zip(tasks, blocks):
        if dests.size == 0:
            assert block.shape == (0, net.num_nodes)
            continue
        np.testing.assert_array_equal(
            block, distances_to_subset(net, weights, dests)
        )


def test_batched_dijkstra_all_empty():
    net, weights = _instances()[0]
    blocks = distances_to_subsets_batched(
        [(net, weights, np.empty(0, dtype=np.int64))] * 2
    )
    assert all(b.shape == (0, net.num_nodes) for b in blocks)


# ----------------------------------------------------------------------
# Batched derivation
# ----------------------------------------------------------------------
def test_derive_routings_batch_equals_sequential():
    net, weights = _instances()[1]
    parent = Routing(net, weights)
    rng = random.Random(23)
    deltas = []
    while len(deltas) < 8:
        link = rng.randrange(net.num_links)
        new_w = rng.randint(1, 30)
        if new_w != weights[link]:
            deltas.append(WeightDelta.single(link, int(weights[link]), new_w))
    batched = derive_routings_batch(parent, deltas)
    assert len(batched) == len(deltas)
    for delta, (child, affected) in zip(deltas, batched):
        seq_child, seq_affected = derive_routing(parent, delta)
        np.testing.assert_array_equal(affected, seq_affected)
        np.testing.assert_array_equal(
            child.distance_matrix, seq_child.distance_matrix
        )
        np.testing.assert_array_equal(child.weights, seq_child.weights)
        # Unaffected DAG caches are shared with the parent, like the
        # sequential path shares them.
        for t, dag in parent.soa_dag_cache().items():
            if t not in set(int(x) for x in affected):
                assert child.soa_dag_cache().get(t) is dag


def test_derive_routings_batch_empty():
    net, weights = _instances()[0]
    parent = Routing(net, weights)
    assert derive_routings_batch(parent, []) == []


# ----------------------------------------------------------------------
# Shared-state contracts
# ----------------------------------------------------------------------
def test_distance_matrix_is_read_only():
    net, weights = _instances()[0]
    routing = Routing(net, weights)
    with pytest.raises(ValueError, match="read-only"):
        routing.distance_matrix[0, 0] = 99.0
    with pytest.raises(ValueError, match="read-only"):
        routing.distances_to(0)[1] = 99.0


def test_from_precomputed_distance_matrix_is_read_only():
    net, weights = _instances()[0]
    parent = Routing(net, weights)
    dist = parent.distance_matrix.copy()
    child = Routing.from_precomputed(net, weights, dist)
    with pytest.raises(ValueError, match="read-only"):
        child.distance_matrix[0, 0] = 99.0


def test_schedule_shares_dag_cache_across_calls():
    """Repeated batched calls reuse the per-destination CSR DAGs."""
    net, weights = _instances()[0]
    routing = Routing(net, weights, vectorized=True)
    inj = np.zeros((2, net.num_nodes))
    inj[0, 1] = 1.0
    inj[1, 2] = 1.0
    routing.destination_rows([5, 6], inj)
    first = dict(routing.soa_dag_cache())
    routing.destination_rows([5, 6], inj)
    for t, dag in routing.soa_dag_cache().items():
        assert first[t] is dag


def test_build_schedule_rejects_mismatched_dims():
    net, weights = _instances()[0]
    routing = Routing(net, weights, vectorized=True)
    dags = routing.ensure_dags([0])
    schedule = build_schedule(
        dags, net.link_destinations(), net.num_nodes, net.num_links
    )
    from repro.routing.soa import accumulate_rows

    with pytest.raises(ValueError, match="shape"):
        accumulate_rows(schedule, np.zeros((2, net.num_nodes)))
