"""Tests for diversification perturbation."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.perturbation import perturb_weights


def test_perturbs_expected_count():
    weights = np.full(100, 15, dtype=np.int64)
    out = perturb_weights(weights, 0.05, random.Random(1))
    changed = np.count_nonzero(out != weights)
    assert changed <= 5


def test_input_unmodified():
    weights = np.full(20, 10, dtype=np.int64)
    original = weights.copy()
    perturb_weights(weights, 0.5, random.Random(2))
    np.testing.assert_array_equal(weights, original)


def test_at_least_one_redrawn():
    weights = np.full(3, 10, dtype=np.int64)
    rng = random.Random(3)
    redraw_indices = set()
    for _ in range(50):
        out = perturb_weights(weights, 0.01, rng)
        redraw_indices.update(np.flatnonzero(out != weights).tolist())
    assert redraw_indices


def test_respects_weight_range():
    weights = np.full(200, 15, dtype=np.int64)
    out = perturb_weights(weights, 1.0, random.Random(4), min_weight=2, max_weight=7)
    assert np.all(out >= 2)
    assert np.all(out <= 7)


def test_invalid_fraction():
    weights = np.ones(5, dtype=np.int64)
    for fraction in (0.0, -0.1, 1.5):
        with pytest.raises(ValueError):
            perturb_weights(weights, fraction, random.Random(1))


def test_invalid_range():
    with pytest.raises(ValueError):
        perturb_weights(np.ones(5, dtype=np.int64), 0.5, random.Random(1), 10, 5)


@settings(max_examples=50, deadline=None)
@given(
    size=st.integers(1, 200),
    fraction=st.floats(0.01, 1.0),
    seed=st.integers(0, 1000),
)
def test_changed_count_bounded_by_fraction(size, fraction, seed):
    weights = np.full(size, 15, dtype=np.int64)
    out = perturb_weights(weights, fraction, random.Random(seed))
    changed = np.count_nonzero(out != weights)
    assert changed <= max(1, round(fraction * size))
    assert np.all(out >= 1)
    assert np.all(out <= 30)
