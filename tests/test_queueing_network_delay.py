"""Tests for network-wide exact priority-delay estimates."""

import numpy as np
import pytest

from repro.queueing.network_delay import (
    SATURATED_DELAY_MS,
    link_class_delays,
    network_delay_report,
    pair_delay_ms,
)
from repro.routing.state import Routing
from repro.routing.weights import unit_weights
from repro.traffic.matrix import TrafficMatrix


def test_idle_network_delays(line4):
    zeros = np.zeros(line4.num_links)
    delays = link_class_delays(line4, zeros, zeros)
    service_ms = 12000.0 / (100.0 * 1e6) * 1e3
    np.testing.assert_allclose(delays.high_ms, service_ms + 2.0)
    np.testing.assert_allclose(delays.low_ms, service_ms + 2.0)
    assert len(delays.saturated_links()) == 0


def test_low_class_always_slower(line4):
    high = np.full(line4.num_links, 30.0)
    low = np.full(line4.num_links, 30.0)
    delays = link_class_delays(line4, high, low)
    assert np.all(delays.low_ms >= delays.high_ms)


def test_high_class_ignores_low_load(line4):
    high = np.full(line4.num_links, 30.0)
    delays_light = link_class_delays(line4, high, np.zeros(line4.num_links))
    delays_heavy = link_class_delays(line4, high, np.full(line4.num_links, 60.0))
    np.testing.assert_allclose(delays_light.high_ms, delays_heavy.high_ms)
    assert np.all(delays_heavy.low_ms > delays_light.low_ms)


def test_saturation_detected(line4):
    high = np.full(line4.num_links, 60.0)
    low = np.full(line4.num_links, 50.0)
    delays = link_class_delays(line4, high, low)
    assert np.all(delays.low_ms >= SATURATED_DELAY_MS)
    assert len(delays.saturated_links()) == line4.num_links
    assert np.all(delays.high_ms < SATURATED_DELAY_MS)


def test_high_saturation(line4):
    high = np.full(line4.num_links, 120.0)
    delays = link_class_delays(line4, high, np.zeros(line4.num_links))
    assert np.all(delays.high_ms >= SATURATED_DELAY_MS)


def test_shape_validation(line4):
    with pytest.raises(ValueError, match="link count"):
        link_class_delays(line4, np.zeros(3), np.zeros(line4.num_links))


def test_matches_mm1_formula(line4):
    """rho_H=0.4, rho_L=0.3 on a 100 Mb/s link: check against closed form."""
    high = np.full(line4.num_links, 40.0)
    low = np.full(line4.num_links, 30.0)
    delays = link_class_delays(line4, high, low)
    service_ms = 12000.0 / (100.0 * 1e6) * 1e3
    expected_high = service_ms / 0.6 + 2.0
    expected_low = service_ms / (0.6 * 0.3) + 2.0
    np.testing.assert_allclose(delays.high_ms, expected_high)
    np.testing.assert_allclose(delays.low_ms, expected_low)


def test_pair_delay(line4):
    routing = Routing(line4, unit_weights(line4.num_links))
    link_ms = np.arange(1.0, line4.num_links + 1)
    xi = pair_delay_ms(routing, link_ms, 0, 3)
    path_links = [
        line4.link_between(0, 1).index,
        line4.link_between(1, 2).index,
        line4.link_between(2, 3).index,
    ]
    assert xi == pytest.approx(sum(link_ms[i] for i in path_links))


def test_network_delay_report(line4):
    routing = Routing(line4, unit_weights(line4.num_links))
    high = TrafficMatrix.from_pairs(4, [(0, 3, 20.0)])
    low = TrafficMatrix.from_pairs(4, [(3, 0, 40.0), (1, 3, 10.0)])
    report = network_delay_report(line4, routing, routing, high, low)
    assert report.high_pairs == 1
    assert report.low_pairs == 2
    assert report.mean_low_ms >= report.mean_high_ms * 0.5
    assert report.worst_high_ms >= report.mean_high_ms - 1e-9
    assert report.worst_low_ms >= report.mean_low_ms - 1e-9


def test_report_empty_class(line4):
    routing = Routing(line4, unit_weights(line4.num_links))
    empty = TrafficMatrix.zeros(4)
    low = TrafficMatrix.from_pairs(4, [(0, 3, 10.0)])
    report = network_delay_report(line4, routing, routing, empty, low)
    assert report.high_pairs == 0
    assert report.mean_high_ms == 0.0
