"""Exit-code contract of ``repro-dtr lint`` (:mod:`repro.cli`):
0 clean, 1 findings, 2 usage/config error."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures" / "lint"


def run(capsys, *argv):
    code = main(["lint", *argv])
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_clean_file_exits_zero(capsys):
    code, out, _ = run(capsys, str(FIXTURES / "clean.py"), "--no-baseline")
    assert code == 0
    assert "0 finding(s)" in out


def test_findings_exit_one(capsys):
    code, out, err = run(capsys, str(FIXTURES), "--no-baseline")
    assert code == 1
    for rule in ("RL001", "RL002", "RL003", "RL004", "RL005", "RL006"):
        assert rule in out
    assert "6 unsuppressed" in err


def test_missing_path_is_usage_error(capsys):
    code, _, err = run(capsys, str(FIXTURES / "nope.py"), "--no-baseline")
    assert code == 2
    assert "no such file" in err


def test_unknown_rule_is_usage_error(capsys):
    code, _, err = run(capsys, str(FIXTURES), "--select", "RL999")
    assert code == 2
    assert "RL999" in err


def test_select_restricts_rules(capsys):
    code, out, _ = run(capsys, str(FIXTURES), "--no-baseline", "--select", "RL002")
    assert code == 1
    assert "RL002" in out and "RL001" not in out


def test_missing_explicit_baseline_is_usage_error(tmp_path, capsys):
    code, _, err = run(
        capsys, str(FIXTURES), "--baseline", str(tmp_path / "absent.json")
    )
    assert code == 2
    assert "baseline" in err


def test_malformed_baseline_is_usage_error(tmp_path, capsys):
    bad = tmp_path / "baseline.json"
    bad.write_text("[]")
    code, _, err = run(capsys, str(FIXTURES), "--baseline", str(bad))
    assert code == 2
    assert "malformed baseline" in err


def test_update_baseline_then_lint_is_clean(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    code, out, _ = run(
        capsys, str(FIXTURES), "--update-baseline", "--baseline", str(baseline)
    )
    assert code == 0
    assert "grandfathered" in out
    doc = json.loads(baseline.read_text())
    assert doc["version"] == 1
    assert len(doc["findings"]) == 6

    code, out, _ = run(capsys, str(FIXTURES), "--baseline", str(baseline), "--strict")
    assert code == 0
    assert "6 grandfathered" in out


def test_stale_baseline_fails_only_under_strict(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    baseline.write_text(
        json.dumps(
            {
                "version": 1,
                "findings": [
                    {
                        "rule": "RL001",
                        "path": "gone.py",
                        "context": "x = random.Random()",
                        "count": 1,
                    }
                ],
            }
        )
    )
    clean = str(FIXTURES / "clean.py")
    assert main(["lint", clean, "--baseline", str(baseline)]) == 0
    capsys.readouterr()
    code, out, err = run(capsys, clean, "--baseline", str(baseline), "--strict")
    assert code == 1
    assert "stale baseline" in out
    assert "stale" in err


def test_json_format_is_machine_readable(capsys):
    code, out, _ = run(
        capsys, str(FIXTURES / "rl003.py"), "--no-baseline", "--format", "json"
    )
    assert code == 1
    doc = json.loads(out)
    assert doc["exit_code"] == 1
    assert [f["rule"] for f in doc["findings"]] == ["RL003"]


def test_list_rules_exits_zero(capsys):
    code, out, _ = run(capsys, "--list-rules")
    assert code == 0
    for rule in ("RL001", "RL002", "RL003", "RL004", "RL005", "RL006"):
        assert rule in out


def test_baseline_and_no_baseline_conflict(capsys):
    code, _, err = run(
        capsys, str(FIXTURES), "--baseline", "x.json", "--no-baseline"
    )
    assert code == 2
    assert "exclusive" in err


def test_repo_tree_is_lint_clean(monkeypatch):
    # The merged tree must satisfy its own gate (ISSUE acceptance):
    # the committed baseline covers the grandfathered findings and
    # nothing is stale.  Baseline entries match on repo-relative paths,
    # so run from the repo root exactly as CI does.
    monkeypatch.chdir(Path(__file__).parent.parent)
    assert main(["lint", "src/repro", "--strict"]) == 0
