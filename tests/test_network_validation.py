"""Tests for network structural validation."""

import pytest

from repro.network.graph import Network
from repro.network.validation import NetworkValidationError, validate_network


def test_valid_network_passes(triangle):
    validate_network(triangle)


def test_empty_network_fails():
    with pytest.raises(NetworkValidationError, match="no links"):
        validate_network(Network(3))


def test_disconnected_network_fails():
    net = Network(4)
    net.add_duplex_link(0, 1)
    net.add_duplex_link(2, 3)
    with pytest.raises(NetworkValidationError, match="strongly connected"):
        validate_network(net)


def test_simplex_link_fails_duplex_requirement():
    net = Network(3)
    net.add_duplex_link(0, 1)
    net.add_duplex_link(1, 2)
    net.add_link(2, 0)
    with pytest.raises(NetworkValidationError, match="reverse"):
        validate_network(net)


def test_simplex_allowed_when_not_required():
    net = Network(3)
    net.add_link(0, 1)
    net.add_link(1, 2)
    net.add_link(2, 0)
    validate_network(net, require_duplex=False)


def test_connectivity_check_can_be_skipped():
    net = Network(4)
    net.add_duplex_link(0, 1)
    net.add_duplex_link(2, 3)
    validate_network(net, require_strongly_connected=False)


def test_isolated_node_fails():
    net = Network(3)
    net.add_duplex_link(0, 1)
    with pytest.raises(NetworkValidationError):
        validate_network(net, require_strongly_connected=False)
