"""Unit tests for repro.network.graph."""

import numpy as np
import pytest

from repro.network.graph import Network


def test_empty_network_properties():
    net = Network(5, name="empty")
    assert net.num_nodes == 5
    assert net.num_links == 0
    assert list(net.nodes()) == [0, 1, 2, 3, 4]
    assert not net.is_strongly_connected()


def test_too_few_nodes_rejected():
    with pytest.raises(ValueError, match="at least 2"):
        Network(1)


def test_add_link_and_lookup():
    net = Network(3)
    link = net.add_link(0, 1, capacity_mbps=100.0, prop_delay_ms=2.0)
    assert link.index == 0
    assert net.num_links == 1
    assert net.link(0) is net.links[0]
    assert net.link_between(0, 1) == link
    assert net.link_between(1, 0) is None
    assert net.has_link(0, 1)
    assert not net.has_link(1, 0)


def test_parallel_link_rejected():
    net = Network(3)
    net.add_link(0, 1)
    with pytest.raises(ValueError, match="already exists"):
        net.add_link(0, 1)


def test_self_loop_rejected():
    net = Network(3)
    with pytest.raises(ValueError):
        net.add_link(2, 2)


def test_out_of_range_node_rejected():
    net = Network(3)
    with pytest.raises(ValueError, match="outside range"):
        net.add_link(0, 3)


def test_add_duplex_link():
    net = Network(3)
    fwd, bwd = net.add_duplex_link(0, 2, capacity_mbps=42.0, prop_delay_ms=7.0)
    assert (fwd.src, fwd.dst) == (0, 2)
    assert (bwd.src, bwd.dst) == (2, 0)
    assert fwd.capacity_mbps == bwd.capacity_mbps == 42.0
    assert net.duplex_pairs() == [(0, 2)]


def test_adjacency_queries(triangle):
    assert sorted(triangle.neighbors(0)) == [1, 2]
    assert triangle.degree(0) == 2
    assert triangle.undirected_degree(0) == 2
    out = triangle.out_links(0)
    assert all(link.src == 0 for link in out)
    incoming = triangle.in_links(0)
    assert all(link.dst == 0 for link in incoming)
    assert triangle.out_link_indices(0) == [l.index for l in out]
    assert triangle.in_link_indices(0) == [l.index for l in incoming]


def test_numpy_views(triangle):
    caps = triangle.capacities()
    assert caps.shape == (6,)
    assert np.all(caps == 1.0)
    delays = triangle.prop_delays()
    assert np.all(delays == 1.0)
    srcs, dsts = triangle.link_sources(), triangle.link_destinations()
    for link in triangle.links:
        assert srcs[link.index] == link.src
        assert dsts[link.index] == link.dst


def test_numpy_views_cache_invalidated_on_add():
    net = Network(3)
    net.add_link(0, 1, capacity_mbps=10.0)
    assert net.capacities().shape == (1,)
    net.add_link(1, 2, capacity_mbps=20.0)
    caps = net.capacities()
    assert caps.shape == (2,)
    assert caps[1] == 20.0


def test_weight_matrix(triangle):
    weights = np.arange(1, 7)
    mat = triangle.weight_matrix(weights)
    assert mat.shape == (3, 3)
    for link in triangle.links:
        assert mat[link.src, link.dst] == weights[link.index]
    assert np.isinf(mat[0, 0])


def test_weight_matrix_validates_shape_and_sign(triangle):
    with pytest.raises(ValueError, match="expected 6 weights"):
        triangle.weight_matrix([1, 2, 3])
    with pytest.raises(ValueError, match="positive"):
        triangle.weight_matrix([0, 1, 1, 1, 1, 1])


def test_strong_connectivity():
    net = Network(3)
    net.add_link(0, 1)
    net.add_link(1, 2)
    assert not net.is_strongly_connected()
    net.add_link(2, 0)
    assert net.is_strongly_connected()


def test_copy_is_deep(triangle):
    dup = triangle.copy()
    assert dup == triangle
    dup.add_duplex_link(0, 1) if not dup.has_link(0, 1) else None
    triangle_links = triangle.num_links
    assert dup.num_links == triangle_links


def test_equality(triangle, diamond):
    assert triangle == triangle.copy()
    assert triangle != diamond


def test_repr(triangle):
    assert "triangle" in repr(triangle)
    assert "links=6" in repr(triangle)
