"""Plan cache: canonical keying, LRU eviction, hit/miss metrics."""

from __future__ import annotations

import threading

from repro.scenarios.spec import canonical_spec
from repro.serve.cache import PlanCache


def _compute_counter(payload):
    calls = {"n": 0}

    def compute():
        calls["n"] += 1
        return payload

    return compute, calls


def test_get_or_compute_computes_once_per_key():
    cache = PlanCache()
    compute, calls = _compute_counter({"x": 1})
    first, hit1 = cache.get_or_compute("s", "link:0-4", compute)
    again, hit2 = cache.get_or_compute("s", "link:0-4", compute)
    assert (hit1, hit2) == (False, True)
    assert first == again == {"x": 1}
    assert calls["n"] == 1
    assert cache.metrics() == {
        "hits": 1, "misses": 1, "lookups": 2, "evictions": 0,
        "size": 1, "capacity": 1024,
    }


def test_spelling_variants_hit_one_entry():
    """The scheduler canonicalizes before keying; variants collapse."""
    cache = PlanCache()
    compute, calls = _compute_counter({"x": 1})
    for text in ("link:0-4,2-5", "link:2-5, 0-4", " link:2-5,0-4 "):
        cache.get_or_compute("s", canonical_spec(text), compute)
    assert calls["n"] == 1
    assert len(cache) == 1


def test_session_keys_partition_the_cache():
    cache = PlanCache()
    cache.get_or_compute("a", "node:3", lambda: {"v": "a"})
    payload, hit = cache.get_or_compute("b", "node:3", lambda: {"v": "b"})
    assert not hit and payload == {"v": "b"}
    assert len(cache) == 2


def test_lru_eviction():
    cache = PlanCache(capacity=2)
    cache.get_or_compute("s", "node:1", lambda: {})
    cache.get_or_compute("s", "node:2", lambda: {})
    cache.get_or_compute("s", "node:1", lambda: {})  # refresh 1
    cache.get_or_compute("s", "node:3", lambda: {})  # evicts 2
    assert cache.metrics()["evictions"] == 1
    _, hit = cache.get_or_compute("s", "node:1", lambda: {})
    assert hit
    _, hit = cache.get_or_compute("s", "node:2", lambda: {})
    assert not hit


def test_concurrent_cold_misses_converge():
    """Races on one cold key are harmless: equal payloads, last write wins."""
    cache = PlanCache()
    barrier = threading.Barrier(4)
    results = []

    def worker():
        def compute():
            barrier.wait()  # force all four to miss together
            return {"v": 42}

        results.append(cache.get_or_compute("s", "node:3", compute))

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert all(payload == {"v": 42} for payload, _hit in results)
    assert len(cache) == 1
    _, hit = cache.get_or_compute("s", "node:3", lambda: {"v": 42})
    assert hit
