"""Exit-code contract of ``bench compare/baseline-update/trends`` and
``results render`` (:mod:`repro.cli`)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


def write_bench(directory, name="alpha", speedup=3.0):
    directory.mkdir(parents=True, exist_ok=True)
    (directory / f"BENCH_{name}.json").write_text(
        json.dumps(
            {
                "bench": name,
                "schema": 2,
                "metrics": {"run": {"speedup": speedup}},
                "python": "3.11.7",
                "scale": 0.05,
                "seed": 1,
                "git": None,
            }
        )
    )


@pytest.fixture
def store(tmp_path):
    """Seeded baselines (speedup=3.0, gated higher ±25%) + current dir."""
    baselines = tmp_path / "baselines"
    current = tmp_path / "current"
    write_bench(current)
    (tmp_path / "policy.json")  # no policy file: defaults apply
    assert (
        main(
            [
                "bench",
                "baseline-update",
                "--current-dir",
                str(current),
                "--baseline-dir",
                str(baselines),
            ]
        )
        == 0
    )
    (baselines / "policy.json").write_text(
        json.dumps(
            {
                "defaults": {
                    "direction": "higher",
                    "relative_band": 0.25,
                    "absolute_floor": 0.0,
                }
            }
        )
    )
    return baselines, current


def compare(baselines, current, *extra):
    return main(
        [
            "bench",
            "compare",
            "--current-dir",
            str(current),
            "--baseline-dir",
            str(baselines),
            *extra,
        ]
    )


def test_compare_clean_exits_zero(store, capsys):
    baselines, current = store
    assert compare(baselines, current, "--strict") == 0
    assert "verdict: OK" in capsys.readouterr().out


def test_compare_regression_exits_three_only_under_strict(store, capsys):
    baselines, current = store
    write_bench(current, speedup=1.0)
    assert compare(baselines, current) == 0  # informational
    assert compare(baselines, current, "--strict") == 3
    captured = capsys.readouterr()
    assert "alpha.run.speedup" in captured.err  # names the metric
    assert "REGRESSED" in captured.out


def test_compare_missing_bench_exits_two(store, tmp_path):
    baselines, _ = store
    empty = tmp_path / "empty"
    empty.mkdir()
    assert compare(baselines, empty, "--strict") == 2


def test_compare_truncated_artifact_exits_two(store):
    baselines, current = store
    (current / "BENCH_alpha.json").write_text('{"bench": "alpha", "sch')
    assert compare(baselines, current, "--strict") == 2


def test_compare_nonexistent_baseline_dir_exits_two(store, tmp_path):
    _, current = store
    assert compare(tmp_path / "nope", current) == 2


def test_compare_json_verdict(store, tmp_path, capsys):
    baselines, current = store
    write_bench(current, speedup=1.0)
    out = tmp_path / "verdict.json"
    assert compare(baselines, current, "--strict", "--json", str(out)) == 3
    payload = json.loads(out.read_text())
    assert payload["regressions"] == ["alpha.run.speedup"]
    assert payload["exit_code"] == 3


def test_baseline_update_partial_run_exits_two(store, capsys):
    baselines, current = store
    write_bench(current, "beta")
    assert (
        main(
            [
                "bench",
                "baseline-update",
                "--current-dir",
                str(current),
                "--baseline-dir",
                str(baselines),
            ]
        )
        == 0
    )
    (current / "BENCH_beta.json").unlink()
    code = main(
        [
            "bench",
            "baseline-update",
            "--current-dir",
            str(current),
            "--baseline-dir",
            str(baselines),
        ]
    )
    assert code == 2
    assert "partial" in capsys.readouterr().err


def test_baseline_update_no_new_exits_two(store):
    baselines, current = store
    write_bench(current, "beta")
    code = main(
        [
            "bench",
            "baseline-update",
            "--current-dir",
            str(current),
            "--baseline-dir",
            str(baselines),
            "--no-new",
        ]
    )
    assert code == 2


def test_bench_trends_prints_sparklines(store, capsys):
    baselines, current = store
    code = main(
        [
            "bench",
            "trends",
            "--baseline-dir",
            str(baselines),
            "--current-dir",
            str(current),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "== alpha" in out and "run.speedup" in out


def test_results_render_unknown_figure_exits_two(tmp_path, capsys):
    code = main(
        ["results", "render", "--out", str(tmp_path / "o"), "--figures", "fig99"]
    )
    assert code == 2
    assert "unknown figure id" in capsys.readouterr().err


def test_results_render_trends_only(store, tmp_path, capsys):
    baselines, current = store
    out = tmp_path / "render"
    code = main(
        [
            "results",
            "render",
            "--out",
            str(out),
            "--trends",
            str(current),
            "--baselines",
            str(baselines),
            "--figures",
            "fig3a",
            "--scale",
            "0.01",
        ]
    )
    assert code == 0
    assert (out / "trends" / "alpha.txt").exists()
    assert (out / "tables" / "fig3a.csv").read_text().count("\n") >= 2
    assert (out / "figures" / "fig3a.txt").exists()
    assert (out / "index.md").exists()
