"""Tests: all four strategies behind ``repro.api.optimize``, equivalent to legacy."""

import random

import numpy as np
import pytest

from repro.api import Session, optimize
from repro.api.strategies import OptimizationResult, TracePoint
from repro.core.evaluator import DualTopologyEvaluator
from repro.core.search_params import SearchParams

FAST = SearchParams(
    iterations_high=6,
    iterations_low=6,
    iterations_refine=6,
    diversification_interval=5,
    neighborhood_size=3,
)


@pytest.fixture
def make_session(isp_net, small_traffic):
    """Fresh sessions on demand (separate evaluators, no cache cross-talk)."""
    high, low = small_traffic

    def build(cost_model="load") -> Session:
        return Session(isp_net, high, low, cost_model=cost_model, seed=11)

    return build


class TestAllStrategiesRun:
    @pytest.mark.parametrize("name", ["str", "dtr", "joint", "anneal"])
    def test_runs_and_returns_common_result(self, make_session, name):
        session = make_session()
        options = {"alpha": 1.0} if name == "joint" else {}
        result = optimize(session, strategy=name, params=FAST, **options)
        assert isinstance(result, OptimizationResult)
        assert result.strategy == name
        assert result.high_weights.shape == (session.network.num_links,)
        assert result.low_weights.shape == (session.network.num_links,)
        assert result.objective.primary >= 0
        assert result.evaluations > 0
        assert result.wall_time_s > 0
        assert result.cost_trace and all(
            isinstance(p, TracePoint) for p in result.cost_trace
        )
        assert result.raw is not None
        # the session adopted the result as its what-if baseline
        np.testing.assert_array_equal(session.high_weights, result.high_weights)

    def test_only_dtr_is_dual(self, make_session):
        session = make_session()
        for name in ("str", "joint", "anneal"):
            result = optimize(session, strategy=name, params=FAST)
            assert not result.dual
            np.testing.assert_array_equal(result.weights, result.high_weights)

    def test_dual_result_guards_weights_accessor(self, make_session):
        session = make_session()
        result = optimize(session, strategy="dtr", params=FAST)
        if result.dual:
            with pytest.raises(ValueError, match="high_weights"):
                result.weights

    def test_routing_accessor(self, make_session):
        session = make_session()
        result = optimize(session, strategy="str", params=FAST)
        high_routing, low_routing = result.routing(session)
        np.testing.assert_array_equal(high_routing.weights, result.high_weights)
        np.testing.assert_array_equal(low_routing.weights, result.low_weights)

    def test_joint_requires_load_mode(self, make_session):
        session = make_session(cost_model="sla")
        with pytest.raises(ValueError, match="load-mode"):
            optimize(session, strategy="joint", params=FAST, alpha=1.0)

    def test_joint_alpha_defaults_to_cost_model(self, isp_net, small_traffic):
        high, low = small_traffic
        session = Session(isp_net, high, low, cost_model="joint")
        # JointCostModel(alpha=1.0) by name; verify the strategy picks it up
        result = optimize(session, strategy="joint", params=FAST)
        assert result.metadata["alpha"] == 1.0


class TestLegacyEquivalence:
    """The legacy entry points and the registry produce identical results."""

    def _evaluator(self, isp_net, small_traffic, mode="load"):
        high, low = small_traffic
        return DualTopologyEvaluator(isp_net, high, low, mode=mode)

    def test_str(self, isp_net, small_traffic):
        from repro.core.str_search import optimize_str

        with pytest.deprecated_call():
            legacy = optimize_str(
                self._evaluator(isp_net, small_traffic), FAST, random.Random(21)
            )
        session = Session.from_evaluator(self._evaluator(isp_net, small_traffic))
        modern = optimize(
            session, strategy="str", params=FAST, rng=random.Random(21)
        )
        np.testing.assert_array_equal(legacy.weights, modern.weights)
        assert legacy.objective == modern.objective

    def test_dtr(self, isp_net, small_traffic):
        from repro.core.dtr_search import optimize_dtr

        with pytest.deprecated_call():
            legacy = optimize_dtr(
                self._evaluator(isp_net, small_traffic), FAST, random.Random(22)
            )
        session = Session.from_evaluator(self._evaluator(isp_net, small_traffic))
        modern = optimize(
            session, strategy="dtr", params=FAST, rng=random.Random(22)
        )
        np.testing.assert_array_equal(legacy.high_weights, modern.high_weights)
        np.testing.assert_array_equal(legacy.low_weights, modern.low_weights)
        assert legacy.objective == modern.objective

    def test_joint(self, isp_net, small_traffic):
        from repro.core.joint_search import optimize_joint

        with pytest.deprecated_call():
            legacy = optimize_joint(
                self._evaluator(isp_net, small_traffic), 2.0, FAST, random.Random(23)
            )
        session = Session.from_evaluator(self._evaluator(isp_net, small_traffic))
        modern = optimize(
            session, strategy="joint", params=FAST, alpha=2.0, rng=random.Random(23)
        )
        np.testing.assert_array_equal(legacy.weights, modern.weights)
        assert legacy.joint_cost == modern.metadata["joint_cost"]
        assert legacy.lexicographic == modern.objective

    def test_anneal(self, isp_net, small_traffic):
        from repro.core.annealing import AnnealingParams, anneal_str

        schedule = AnnealingParams(iterations=40)
        with pytest.deprecated_call():
            legacy = anneal_str(
                self._evaluator(isp_net, small_traffic),
                schedule,
                FAST,
                random.Random(24),
            )
        session = Session.from_evaluator(self._evaluator(isp_net, small_traffic))
        modern = optimize(
            session,
            strategy="anneal",
            params=FAST,
            annealing_params=schedule,
            rng=random.Random(24),
        )
        np.testing.assert_array_equal(legacy.weights, modern.weights)
        assert legacy.objective == modern.objective
        assert legacy.accepted == modern.metadata["accepted"]


class TestDefaultRngStream:
    def test_omitted_rng_uses_session_search_stream(self, make_session):
        """Without an explicit rng, results are reproducible per session seed."""
        a = optimize(make_session(), strategy="str", params=FAST)
        b = optimize(make_session(), strategy="str", params=FAST)
        np.testing.assert_array_equal(a.weights, b.weights)
        assert a.objective == b.objective
