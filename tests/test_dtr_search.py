"""Tests for the DTR search (paper Algorithm 1)."""

import random

import numpy as np
import pytest

from repro.core.dtr_search import PHASE_HIGH, PHASE_LOW, PHASE_REFINE, optimize_dtr
from repro.core.evaluator import DualTopologyEvaluator
from repro.core.search_params import SearchParams
from repro.core.str_search import optimize_str
from repro.routing.weights import unit_weights

FAST = SearchParams(
    iterations_high=15, iterations_low=15, iterations_refine=20, diversification_interval=8
)


@pytest.fixture
def evaluator(isp_net, small_traffic):
    high, low = small_traffic
    return DualTopologyEvaluator(isp_net, high, low, mode="load")


def test_improves_over_initial(evaluator):
    initial = unit_weights(evaluator.network.num_links)
    result = optimize_dtr(
        evaluator, FAST, random.Random(1), initial_high=initial, initial_low=initial
    )
    assert result.objective <= evaluator.evaluate(initial, initial).objective


def test_result_consistency(evaluator):
    result = optimize_dtr(evaluator, FAST, random.Random(2))
    recomputed = evaluator.evaluate(result.high_weights, result.low_weights)
    assert recomputed.objective == result.objective
    assert result.evaluation.objective == result.objective


def test_weights_in_range(evaluator):
    result = optimize_dtr(evaluator, FAST, random.Random(3))
    for weights in (result.high_weights, result.low_weights):
        assert np.all(weights >= 1)
        assert np.all(weights <= 30)


def test_never_worse_than_str_seed(evaluator):
    """Seeding DTR with the STR optimum guarantees R_H, R_L >= 1."""
    rng = random.Random(4)
    str_result = optimize_str(evaluator, FAST, rng)
    dtr_result = optimize_dtr(
        evaluator,
        FAST,
        rng,
        initial_high=str_result.weights,
        initial_low=str_result.weights,
    )
    assert dtr_result.objective <= str_result.objective


def test_dual_weights_typically_diverge(evaluator):
    """The point of DTR: the two topologies end up different."""
    result = optimize_dtr(evaluator, FAST, random.Random(5))
    assert not np.array_equal(result.high_weights, result.low_weights)


def test_history_phases_ordered(evaluator):
    result = optimize_dtr(evaluator, FAST, random.Random(6))
    phase_order = {PHASE_HIGH: 0, PHASE_LOW: 1, PHASE_REFINE: 2}
    phases = [phase_order[phase] for phase, _, _ in result.history]
    assert phases == sorted(phases)


def test_history_objectives_monotone(evaluator):
    result = optimize_dtr(evaluator, FAST, random.Random(7))
    objectives = [obj for _, _, obj in result.history]
    assert all(b <= a for a, b in zip(objectives, objectives[1:]))


def test_deterministic_given_seed(evaluator):
    a = optimize_dtr(evaluator, FAST, random.Random(42))
    b = optimize_dtr(evaluator, FAST, random.Random(42))
    assert a.objective == b.objective
    np.testing.assert_array_equal(a.high_weights, b.high_weights)
    np.testing.assert_array_equal(a.low_weights, b.low_weights)


def test_initial_low_defaults_to_initial_high(evaluator):
    initial = unit_weights(evaluator.network.num_links)
    result = optimize_dtr(evaluator, FAST, random.Random(8), initial_high=initial)
    assert result.objective <= evaluator.evaluate(initial, initial).objective


def test_evaluations_counted(evaluator):
    result = optimize_dtr(evaluator, FAST, random.Random(9))
    assert result.evaluations > FAST.total_iterations()


def test_zero_iteration_budget(evaluator):
    params = SearchParams(
        iterations_high=0, iterations_low=0, iterations_refine=0
    )
    initial = unit_weights(evaluator.network.num_links)
    result = optimize_dtr(
        evaluator, params, random.Random(10), initial_high=initial, initial_low=initial
    )
    np.testing.assert_array_equal(result.high_weights, initial)
    np.testing.assert_array_equal(result.low_weights, initial)


def test_sla_mode(isp_net, small_traffic):
    high, low = small_traffic
    evaluator = DualTopologyEvaluator(isp_net, high, low, mode="sla")
    rng = random.Random(11)
    str_result = optimize_str(evaluator, FAST, rng)
    result = optimize_dtr(
        evaluator, FAST, rng,
        initial_high=str_result.weights, initial_low=str_result.weights,
    )
    assert result.objective <= str_result.objective


class TestProgressHook:
    def test_heartbeats_cover_all_phases(self, evaluator):
        params = SearchParams(
            iterations_high=10, iterations_low=10, iterations_refine=10,
            diversification_interval=8, progress_interval=5,
        )
        beats = []
        optimize_dtr(
            evaluator, params, random.Random(6),
            progress=lambda phase, i, total: beats.append((phase, i, total)),
        )
        assert {b[0] for b in beats} == {PHASE_HIGH, PHASE_LOW, PHASE_REFINE}
        assert all(i <= total for _, i, total in beats)

    def test_callback_does_not_change_trajectory(self, evaluator):
        plain = optimize_dtr(evaluator, FAST, random.Random(7))
        observed = optimize_dtr(
            evaluator, FAST, random.Random(7), progress=lambda *a: None
        )
        assert plain.objective == observed.objective
        np.testing.assert_array_equal(plain.high_weights, observed.high_weights)
        np.testing.assert_array_equal(plain.low_weights, observed.low_weights)
