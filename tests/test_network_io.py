"""Tests for network JSON persistence."""

import json

import pytest

from repro.network.io import (
    FORMAT_VERSION,
    load_network,
    network_from_dict,
    network_to_dict,
    save_network,
)
from repro.network.topology_isp import isp_topology


def test_round_trip_dict(triangle):
    assert network_from_dict(network_to_dict(triangle)) == triangle


def test_round_trip_file(tmp_path, diamond):
    path = tmp_path / "net.json"
    save_network(diamond, path)
    assert load_network(path) == diamond


def test_round_trip_isp(tmp_path):
    net = isp_topology()
    path = tmp_path / "isp.json"
    save_network(net, path)
    loaded = load_network(path)
    assert loaded == net
    assert loaded.name == "isp"


def test_dict_contents(triangle):
    data = network_to_dict(triangle)
    assert data["format_version"] == FORMAT_VERSION
    assert data["num_nodes"] == 3
    assert len(data["links"]) == 6
    first = data["links"][0]
    assert set(first) == {"src", "dst", "capacity_mbps", "prop_delay_ms"}


def test_file_is_valid_json(tmp_path, triangle):
    path = tmp_path / "net.json"
    save_network(triangle, path)
    parsed = json.loads(path.read_text())
    assert parsed["num_nodes"] == 3


def test_unknown_version_rejected(triangle):
    data = network_to_dict(triangle)
    data["format_version"] = 999
    with pytest.raises(ValueError, match="version"):
        network_from_dict(data)


def test_missing_fields_rejected(triangle):
    data = network_to_dict(triangle)
    del data["links"][0]["src"]
    with pytest.raises(KeyError):
        network_from_dict(data)
