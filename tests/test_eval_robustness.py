"""Tests for the single-failure robustness sweep."""

import random

import pytest

from repro.eval.robustness import failure_sweep
from repro.routing.weights import random_weights, unit_weights
from repro.traffic.gravity import gravity_traffic_matrix
from repro.traffic.highpriority import random_high_priority
from repro.traffic.scaling import scale_to_utilization


@pytest.fixture(scope="module")
def setup():
    from repro.network.topology_isp import isp_topology

    net = isp_topology()
    rng = random.Random(31)
    low = gravity_traffic_matrix(net.num_nodes, rng)
    high = random_high_priority(low, density=0.1, fraction=0.3, rng=rng)
    high_tm, low_tm = scale_to_utilization(net, high.matrix, low, 0.5)
    return net, high_tm, low_tm


def test_sweep_covers_all_adjacencies(setup):
    net, high_tm, low_tm = setup
    w = unit_weights(net.num_links)
    report = failure_sweep(net, w, w, high_tm, low_tm)
    assert len(report.outcomes) == 35
    assert report.skipped_disconnecting == 0
    assert report.baseline.failed_pair == (-1, -1)


def test_failures_never_improve_worst_case(setup):
    """Losing capacity cannot reduce the worst-case cost below baseline."""
    net, high_tm, low_tm = setup
    w = unit_weights(net.num_links)
    report = failure_sweep(net, w, w, high_tm, low_tm)
    assert report.worst_phi_low >= report.baseline.phi_low - 1e-9
    assert report.worst_phi_high >= report.baseline.phi_high - 1e-9
    assert report.degradation_factor() >= 1.0 - 1e-12


def test_mean_bounded_by_worst(setup):
    net, high_tm, low_tm = setup
    w = random_weights(net.num_links, random.Random(1))
    report = failure_sweep(net, w, w, high_tm, low_tm)
    assert report.mean_phi_low <= report.worst_phi_low + 1e-9
    assert report.mean_phi_high <= report.worst_phi_high + 1e-9


def test_dual_weights_evaluated_independently(setup):
    net, high_tm, low_tm = setup
    rng = random.Random(2)
    wh = random_weights(net.num_links, rng)
    wl = random_weights(net.num_links, rng)
    dual_report = failure_sweep(net, wh, wl, high_tm, low_tm)
    str_report = failure_sweep(net, wh, wh, high_tm, low_tm)
    assert dual_report.baseline.phi_high == pytest.approx(str_report.baseline.phi_high)
    assert dual_report.baseline.phi_low != pytest.approx(str_report.baseline.phi_low)


def test_outcomes_sorted_by_pair(setup):
    net, high_tm, low_tm = setup
    w = unit_weights(net.num_links)
    report = failure_sweep(net, w, w, high_tm, low_tm)
    pairs = [o.failed_pair for o in report.outcomes]
    assert pairs == sorted(pairs)


def test_disconnecting_failures_surfaced_not_skipped(line4):
    """Disconnecting failures are evaluated and flagged, never dropped."""
    from repro.traffic.matrix import TrafficMatrix

    high = TrafficMatrix.from_pairs(4, [(0, 3, 1.0)])
    low = TrafficMatrix.from_pairs(4, [(3, 0, 2.0)])
    w = unit_weights(line4.num_links)
    report = failure_sweep(line4, w, w, high, low)
    # Every adjacency of a chain disconnects the 0<->3 demand: all three
    # outcomes are present, flagged, and account for the lost volume.
    assert len(report.outcomes) == 3
    assert report.disconnected_count == 3
    assert report.skipped_disconnecting == 3  # deprecated alias
    for outcome in report.outcomes:
        assert outcome.disconnected
        assert outcome.lost_demand == pytest.approx(3.0)
    # Flagged outcomes stay out of the cost statistics, which fall back
    # to the baseline when no connected outcome exists.
    assert report.worst_phi_low == report.baseline.phi_low
    assert report.degradation_factor() == 1.0


def test_partial_disconnection_flags_only_cut_pairs(line4):
    """A failure that cuts one pair but not another flags only the former."""
    from repro.traffic.matrix import TrafficMatrix

    high = TrafficMatrix.from_pairs(4, [(0, 1, 1.0)])
    low = TrafficMatrix.from_pairs(4, [(2, 3, 2.0), (0, 1, 0.5)])
    w = unit_weights(line4.num_links)
    report = failure_sweep(line4, w, w, high, low)
    by_pair = {o.failed_pair: o for o in report.outcomes}
    # Failing 2-3 cuts only the (2, 3) demand; the (0, 1) pair keeps its
    # direct link, and the evaluation covers that routable remainder.
    assert by_pair[(2, 3)].disconnected
    assert by_pair[(2, 3)].lost_demand == pytest.approx(2.0)
    assert by_pair[(2, 3)].phi_low > 0  # evaluated over the remainder
    # Failing the middle adjacency 1-2 cuts nothing: both demand pairs
    # ride single surviving links.
    assert not by_pair[(1, 2)].disconnected
    assert by_pair[(1, 2)].lost_demand == 0.0
    assert report.disconnected_count == 2  # failing 0-1 also cuts (0, 1)
