"""Tests for convergence-trace analysis."""

import pytest

from repro.core.lexicographic import LexCost
from repro.eval.convergence import relative_gap, trace_from_history


def lex(a, b):
    return LexCost(float(a), float(b))


class TestTraceFromHistory:
    def test_str_history(self):
        history = [(0, lex(10, 100)), (3, lex(8, 90)), (7, lex(8, 50))]
        trace = trace_from_history(history, total_iterations=10)
        assert len(trace.iterations) == 11
        assert trace.objectives[0] == lex(10, 100)
        assert trace.objectives[2] == lex(10, 100)
        assert trace.objectives[3] == lex(8, 90)
        assert trace.objectives[7] == lex(8, 50)
        assert trace.final == lex(8, 50)
        assert trace.initial == lex(10, 100)

    def test_dtr_history_phases_concatenated(self):
        history = [
            ("high", 0, lex(10, 100)),
            ("high", 4, lex(8, 100)),
            ("low", 2, lex(8, 60)),
            ("refine", 1, lex(8, 55)),
        ]
        trace = trace_from_history(history, total_iterations=12)
        assert trace.final == lex(8, 55)
        assert trace.objectives[4] == lex(8, 100)
        assert trace.objectives[6] == lex(8, 60)

    def test_non_improving_events_ignored(self):
        history = [(0, lex(5, 50)), (2, lex(6, 10))]
        trace = trace_from_history(history, total_iterations=4)
        assert trace.final == lex(5, 50)

    def test_empty_history_rejected(self):
        with pytest.raises(ValueError):
            trace_from_history([], 5)

    def test_improvement_count(self):
        history = [(0, lex(10, 100)), (1, lex(9, 100)), (2, lex(9, 80))]
        trace = trace_from_history(history, total_iterations=3)
        assert trace.improvement_count() == 2


class TestIterationsToWithin:
    def test_exact_final(self):
        history = [(0, lex(10, 100)), (5, lex(8, 40))]
        trace = trace_from_history(history, total_iterations=10)
        assert trace.iterations_to_within(0.0) == 5

    def test_loose_fraction_hits_earlier(self):
        history = [(0, lex(8, 100)), (2, lex(8, 44)), (8, lex(8, 40))]
        trace = trace_from_history(history, total_iterations=10)
        assert trace.iterations_to_within(0.10) == 2
        assert trace.iterations_to_within(0.0) == 8

    def test_negative_fraction_rejected(self):
        trace = trace_from_history([(0, lex(1, 1))], 2)
        with pytest.raises(ValueError):
            trace.iterations_to_within(-0.1)


class TestRelativeGap:
    def test_equal_is_zero(self):
        assert relative_gap(lex(1, 50), lex(9, 50)) == 0.0

    def test_positive_gap(self):
        assert relative_gap(lex(1, 60), lex(1, 50)) == pytest.approx(0.2)

    def test_zero_reference(self):
        assert relative_gap(lex(1, 0), lex(1, 0)) == 0.0
        assert relative_gap(lex(1, 5), lex(1, 0)) == float("inf")
