"""Tests for the joint-cost STR search (paper Section 3.3.1 at scale)."""

import random

import numpy as np
import pytest

from repro.core.evaluator import DualTopologyEvaluator
from repro.core.joint_search import alpha_sweep, optimize_joint
from repro.core.search_params import SearchParams
from repro.core.str_search import optimize_str
from repro.routing.weights import unit_weights

FAST = SearchParams(
    iterations_high=12, iterations_low=12, iterations_refine=16, diversification_interval=8
)


@pytest.fixture
def evaluator(isp_net, small_traffic):
    high, low = small_traffic
    return DualTopologyEvaluator(isp_net, high, low, mode="load")


def test_requires_load_mode(isp_net, small_traffic):
    high, low = small_traffic
    sla_eval = DualTopologyEvaluator(isp_net, high, low, mode="sla")
    with pytest.raises(ValueError, match="load-mode"):
        optimize_joint(sla_eval, alpha=10.0)


def test_negative_alpha_rejected(evaluator):
    with pytest.raises(ValueError, match="non-negative"):
        optimize_joint(evaluator, alpha=-1.0)


def test_improves_over_initial(evaluator):
    initial = unit_weights(evaluator.network.num_links)
    result = optimize_joint(
        evaluator, alpha=10.0, params=FAST, rng=random.Random(1), initial_weights=initial
    )
    start = evaluator.evaluate_str(initial)
    assert result.joint_cost <= 10.0 * start.phi_high + start.phi_low


def test_result_consistency(evaluator):
    result = optimize_joint(evaluator, alpha=5.0, params=FAST, rng=random.Random(2))
    evaluation = evaluator.evaluate_str(result.weights)
    assert result.phi_high == pytest.approx(evaluation.phi_high)
    assert result.phi_low == pytest.approx(evaluation.phi_low)
    assert result.joint_cost == pytest.approx(5.0 * result.phi_high + result.phi_low)
    assert result.lexicographic.primary == pytest.approx(result.phi_high)


def test_history_monotone(evaluator):
    result = optimize_joint(evaluator, alpha=5.0, params=FAST, rng=random.Random(3))
    values = [j for _, j in result.history]
    assert all(b <= a + 1e-9 for a, b in zip(values, values[1:]))


def test_alpha_zero_ignores_high_priority(evaluator):
    """alpha=0 optimizes Phi_L alone; high priority can be sacrificed."""
    result = optimize_joint(evaluator, alpha=0.0, params=FAST, rng=random.Random(4))
    assert result.joint_cost == pytest.approx(result.phi_low)


def test_alpha_sweep_flags_inversions(evaluator):
    str_result = optimize_str(evaluator, FAST, random.Random(5))
    points = alpha_sweep(
        evaluator,
        alphas=(0.0, 1e6),
        reference_phi_high=str_result.evaluation.phi_high,
        params=FAST,
        seed=5,
    )
    assert len(points) == 2
    assert points[0].alpha == 0.0
    huge_alpha = points[1]
    assert not huge_alpha.priority_inversion or huge_alpha.phi_high <= (
        str_result.evaluation.phi_high * 1.5
    )


def test_triangle_alpha_30_inverts_priority(triangle):
    """Paper Section 3.3.1: alpha=30 on the triangle trades away Phi_H."""
    from repro.traffic.matrix import TrafficMatrix

    high = TrafficMatrix.from_pairs(3, [(0, 2, 1 / 3)])
    low = TrafficMatrix.from_pairs(3, [(0, 2, 2 / 3)])
    evaluator = DualTopologyEvaluator(triangle, high, low, mode="load")
    params = SearchParams(
        iterations_high=150,
        iterations_low=150,
        iterations_refine=150,
        diversification_interval=20,
    )
    initial = unit_weights(triangle.num_links)
    result30 = optimize_joint(
        evaluator, alpha=30.0, params=params, rng=random.Random(6), initial_weights=initial
    )
    result35 = optimize_joint(
        evaluator, alpha=35.0, params=params, rng=random.Random(6), initial_weights=initial
    )
    assert result30.joint_cost == pytest.approx(30 / 2 + 4 / 3)
    assert result35.joint_cost == pytest.approx(35 / 3 + 64 / 9)
    assert result30.phi_high > 1 / 3 + 1e-9
    assert result35.phi_high == pytest.approx(1 / 3)


def test_deterministic(evaluator):
    a = optimize_joint(evaluator, alpha=3.0, params=FAST, rng=random.Random(42))
    b = optimize_joint(evaluator, alpha=3.0, params=FAST, rng=random.Random(42))
    assert a.joint_cost == b.joint_cost
    np.testing.assert_array_equal(a.weights, b.weights)
