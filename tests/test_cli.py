"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.network.io import load_network


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_topology_command(tmp_path, capsys):
    out = tmp_path / "net.json"
    assert main(["topology", "--family", "isp", "--out", str(out)]) == 0
    net = load_network(out)
    assert net.num_nodes == 16
    assert "wrote" in capsys.readouterr().out


def test_topology_command_random_seeded(tmp_path):
    out1 = tmp_path / "a.json"
    out2 = tmp_path / "b.json"
    main(["topology", "--family", "random", "--seed", "4", "--out", str(out1)])
    main(["topology", "--family", "random", "--seed", "4", "--out", str(out2)])
    assert load_network(out1) == load_network(out2)


def test_figure_command(tmp_path, capsys):
    json_out = tmp_path / "fig.json"
    code = main(
        ["figure", "--id", "fig6", "--scale", "0.02", "--seed", "2", "--json", str(json_out)]
    )
    assert code == 0
    printed = capsys.readouterr().out
    assert "Fig.6" in printed
    data = json.loads(json_out.read_text())
    assert "curves" in data


def test_figure_command_unknown_id():
    with pytest.raises(SystemExit):
        main(["figure", "--id", "fig99"])


def test_compare_command(capsys):
    code = main(
        [
            "compare",
            "--topology",
            "isp",
            "--utilization",
            "0.5",
            "--scale",
            "0.02",
            "--seed",
            "2",
        ]
    )
    assert code == 0
    printed = capsys.readouterr().out
    assert "R_H=" in printed
    assert "STR objective" in printed


class TestOptimizeCommand:
    ARGS = ["--topology", "isp", "--utilization", "0.5", "--scale", "0.02", "--seed", "2"]

    def test_each_builtin_strategy_runs(self, capsys):
        for strategy in ("str", "dtr", "joint", "anneal"):
            code = main(["optimize", "--strategy", strategy, *self.ARGS])
            assert code == 0
            printed = capsys.readouterr().out
            assert f"strategy={strategy}" in printed
            assert "objective:" in printed
            assert "wall_time=" in printed

    def test_json_output(self, tmp_path, capsys):
        out = tmp_path / "result.json"
        code = main(["optimize", "--strategy", "dtr", *self.ARGS, "--json", str(out)])
        assert code == 0
        data = json.loads(out.read_text())
        assert data["strategy"] == "dtr"
        assert len(data["high_weights"]) == len(data["low_weights"])
        assert data["evaluations"] > 0

    def test_unknown_strategy_fails_with_choices(self, capsys):
        code = main(["optimize", "--strategy", "nope", *self.ARGS])
        assert code == 2
        err = capsys.readouterr().err
        assert "nope" in err and "dtr" in err

    def test_joint_in_sla_mode_is_a_clean_error(self, capsys):
        code = main(
            ["optimize", "--strategy", "joint", "--mode", "sla", *self.ARGS]
        )
        assert code == 2
        assert "load" in capsys.readouterr().err


class TestWhatifCommand:
    ARGS = ["--topology", "isp", "--utilization", "0.5", "--seed", "2"]

    def test_weight_move(self, capsys):
        code = main(["whatif", *self.ARGS, "--link", "3", "--new-weight", "17"])
        assert code == 0
        printed = capsys.readouterr().out
        assert "what-if [weights]" in printed
        assert "link 3: 1 -> 17" in printed

    def test_link_requires_new_weight(self, capsys):
        code = main(["whatif", *self.ARGS, "--link", "3"])
        assert code == 2
        assert "--new-weight" in capsys.readouterr().err

    def test_failure_query(self, capsys):
        code = main(["whatif", *self.ARGS, "--failure", "0", "4"])
        assert code == 0
        assert "what-if [failure]" in capsys.readouterr().out

    def test_traffic_scale_query(self, capsys):
        code = main(["whatif", *self.ARGS, "--traffic-scale", "1.2"])
        assert code == 0
        assert "what-if [traffic]" in capsys.readouterr().out

    def test_weights_file_baseline(self, tmp_path, capsys):
        from repro.network.topology_isp import isp_topology

        num_links = isp_topology().num_links
        weights_file = tmp_path / "w.json"
        weights_file.write_text(json.dumps([5] * num_links))
        code = main(
            ["whatif", *self.ARGS, "--weights", str(weights_file),
             "--link", "0", "--new-weight", "9"]
        )
        assert code == 0
        assert "link 0: 5 -> 9" in capsys.readouterr().out

    def test_query_flags_are_exclusive(self):
        with pytest.raises(SystemExit):
            main(["whatif", *self.ARGS, "--link", "1", "--traffic-scale", "2.0"])

    def test_link_flags_rejected_on_other_queries(self, capsys):
        code = main(["whatif", *self.ARGS, "--failure", "0", "4", "--new-weight", "9"])
        assert code == 2
        assert "--new-weight" in capsys.readouterr().err
        code = main(
            ["whatif", *self.ARGS, "--traffic-scale", "1.2", "--apply-to", "low"]
        )
        assert code == 2
        assert "--apply-to" in capsys.readouterr().err

    def test_bad_inputs_exit_cleanly(self, capsys):
        code = main(["whatif", *self.ARGS, "--link", "9999", "--new-weight", "5"])
        assert code == 2
        assert "out of range" in capsys.readouterr().err
        code = main(["whatif", *self.ARGS, "--failure", "0", "99"])
        assert code == 2
        assert "error:" in capsys.readouterr().err
        code = main(["whatif", *self.ARGS, "--traffic-scale", "-1"])
        assert code == 2
        assert "non-negative" in capsys.readouterr().err

    def test_malformed_weights_file_exits_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "w.json"
        bad.write_text(json.dumps([1, 2, 3]))  # wrong length
        code = main(
            ["whatif", *self.ARGS, "--weights", str(bad),
             "--link", "0", "--new-weight", "9"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestScenarioWhatif:
    """CLI paths of the composable ``whatif --scenario`` queries."""

    ARGS = ["--topology", "isp", "--utilization", "0.5", "--seed", "2"]

    def test_scenario_query(self, capsys):
        code = main(["whatif", *self.ARGS, "--scenario", "node:3"])
        assert code == 0
        printed = capsys.readouterr().out
        assert "what-if [scenario]" in printed
        assert "node failure 3" in printed

    def test_composed_scenario_query(self, capsys):
        code = main(
            ["whatif", *self.ARGS, "--scenario", "link:0-4+surge:3x2.0"]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "link failure 0-4" in printed
        assert "hot-spot surge at node 3" in printed

    def test_disconnecting_scenario_reports_lost_demand(self, capsys):
        # Failing a node cuts all of its demand; the result surfaces the
        # unroutable volume instead of erroring or dropping it silently.
        code = main(["whatif", *self.ARGS, "--scenario", "node:0"])
        assert code == 0
        printed = capsys.readouterr().out
        assert "disconnected:" in printed
        assert "unroutable" in printed

    def test_unknown_scenario_kind_exits_2_with_listing(self, capsys):
        """Mirrors the strategy registry: unknown kind -> exit 2 + choices."""
        code = main(["whatif", *self.ARGS, "--scenario", "warp:3"])
        assert code == 2
        err = capsys.readouterr().err
        assert "warp" in err
        for kind in ("link", "node", "srlg", "scale", "surge", "shift"):
            assert kind in err

    def test_malformed_scenario_arg_exits_2_with_syntax(self, capsys):
        code = main(["whatif", *self.ARGS, "--scenario", "surge:3"])
        assert code == 2
        assert "NODExFACTOR" in capsys.readouterr().err

    def test_scenario_on_missing_adjacency_exits_2(self, capsys):
        code = main(["whatif", *self.ARGS, "--scenario", "link:0-15"])
        assert code == 2
        assert "no duplex adjacency" in capsys.readouterr().err

    def test_scenario_is_exclusive_with_other_queries(self):
        with pytest.raises(SystemExit):
            main(
                ["whatif", *self.ARGS, "--scenario", "node:3",
                 "--traffic-scale", "1.2"]
            )


class TestCampaignScenarioGrids:
    """CLI error paths of campaign scenario grids (spec validation)."""

    def test_unknown_scenario_kind_exits_2_with_listing(self, tmp_path, capsys):
        code = main(
            ["campaign", "run", "--out", str(tmp_path / "c"),
             "--scenarios", "warp"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "warp" in err
        assert "link" in err and "node" in err  # the registered listing

    def test_non_enumerable_kind_exits_2(self, tmp_path, capsys):
        code = main(
            ["campaign", "run", "--out", str(tmp_path / "c"),
             "--scenarios", "shift"]
        )
        assert code == 2
        assert "no sweep grid" in capsys.readouterr().err

    def test_unknown_kind_in_spec_file_exits_2(self, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({
            "topologies": ["isp"], "scenario_kinds": ["warp"],
        }))
        code = main(
            ["campaign", "run", "--out", str(tmp_path / "c"),
             "--spec", str(spec)]
        )
        assert code == 2
        assert "warp" in capsys.readouterr().err


class TestSpaceSweepCommand:
    """The `sweep` verb and `campaign run --spaces`: shared exit-2 contract."""

    def test_unknown_space_exits_2_with_registry_listing(self, capsys):
        # Validated before any session build; lists the registered spaces.
        assert main(["sweep", "--topology", "isp", "--space", "space:warp"]) == 2
        err = capsys.readouterr().err
        assert "registered scenario space names" in err
        assert "all-link" in err and "surge-sample" in err

    def test_malformed_space_exits_2_with_syntax_help(self, capsys):
        code = main(["sweep", "--topology", "isp", "--space", "space:all-link-x"])
        assert code == 2
        err = capsys.readouterr().err
        assert "bad failure size" in err
        assert "syntax" in err

    def test_sweep_prints_streaming_aggregate(self, capsys):
        code = main([
            "sweep", "--topology", "isp", "--utilization", "0.5",
            "--space", "all-link-1",
        ])
        assert code == 0
        printed = capsys.readouterr().out
        assert "space sweep space:all-link-1" in printed
        assert "35 scenarios" in printed
        assert "cvar=" in printed

    def test_no_prune_evaluates_everything(self, capsys):
        code = main([
            "sweep", "--topology", "isp", "--utilization", "0.5",
            "--space", "all-link-1", "--no-prune",
        ])
        assert code == 0
        assert "0 pruned" in capsys.readouterr().out

    def test_campaign_unknown_space_exits_2(self, tmp_path, capsys):
        code = main([
            "campaign", "run", "--out", str(tmp_path / "c"),
            "--spaces", "space:warp",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "registered scenario space names" in err

    def test_campaign_malformed_space_in_spec_file_exits_2(self, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({
            "topologies": ["isp"], "scenario_spaces": ["space:all-link-x"],
        }))
        code = main(
            ["campaign", "run", "--out", str(tmp_path / "c"), "--spec", str(spec)]
        )
        assert code == 2
        assert "bad failure size" in capsys.readouterr().err

    def test_campaign_stores_space_aggregates(self, tmp_path, capsys):
        out = tmp_path / "camp"
        code = main([
            "campaign", "run", "--out", str(out), "--topologies", "isp",
            "--utilizations", "0.5", "--seeds", "1", "--scale", "0.02",
            "--spaces", "all-link-1", "--quiet",
        ])
        assert code == 0
        records = list((out / "records").glob("*.json"))
        assert len(records) == 1
        record = json.loads(records[0].read_text())
        spaces = record["scenario_spaces"]
        assert spaces["spaces"] == ["space:all-link-1"]
        for label in ("str", "dtr"):
            summary = spaces[label]["space:all-link-1"]
            assert summary["scenarios"] == 35
            assert summary["evaluated"] + summary["pruned"] == 35
            assert summary["worst_secondary"] >= summary["mean_secondary"]
            assert summary["degradation_factor"] >= 1.0


class TestCampaignCommand:
    def test_run_status_aggregate(self, tmp_path, capsys):
        out = tmp_path / "camp"
        args = [
            "campaign", "run", "--out", str(out), "--topologies", "isp",
            "--utilizations", "0.5", "--seeds", "1", "--scale", "0.02",
        ]
        assert main(args) == 0
        printed = capsys.readouterr().out
        assert "1 executed" in printed
        assert (out / "spec.json").exists()
        assert len(list((out / "records").glob("*.json"))) == 1

        assert main(["campaign", "status", "--out", str(out)]) == 0
        assert "1/1" in capsys.readouterr().out

        agg_json = tmp_path / "agg.json"
        assert main(
            ["campaign", "aggregate", "--out", str(out), "--json", str(agg_json)]
        ) == 0
        printed = capsys.readouterr().out
        assert "R_L" in printed
        assert "points" in json.loads(agg_json.read_text())

    def test_rerun_skips_completed(self, tmp_path, capsys):
        out = tmp_path / "camp"
        args = [
            "campaign", "run", "--out", str(out), "--topologies", "isp",
            "--utilizations", "0.5", "--seeds", "1", "--scale", "0.02", "--quiet",
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert "1 already stored, 0 executed" in capsys.readouterr().out

    def test_run_from_spec_file(self, tmp_path, capsys):
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(json.dumps({
            "topologies": ["isp"], "target_utilizations": [0.5],
            "seeds": [1], "scale": 0.02,
        }))
        out = tmp_path / "camp"
        assert main(
            ["campaign", "run", "--out", str(out), "--spec", str(spec_file), "--quiet"]
        ) == 0
        assert "1 executed" in capsys.readouterr().out


class TestServeAndQuery:
    """The online-service subcommands and the shared exit-2 contract."""

    @pytest.fixture()
    def live_server(self):
        import threading

        from repro.serve import ServeService, SessionSpec, WhatIfServer

        service = ServeService(SessionSpec(topology="isp", utilization=0.5))
        server = WhatIfServer(("127.0.0.1", 0), service)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield "http://127.0.0.1:%d" % server.server_address[1]
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)

    def test_unknown_subcommand_exits_2_with_listing(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["frobnicate"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "invalid choice" in err
        assert "query" in err and "serve" in err and "whatif" in err

    def test_query_malformed_scenario_exits_2_with_registry_listing(self, capsys):
        # Validated locally: exits 2 before any network traffic.
        assert main(["query", "--scenario", "bogus:1"]) == 2
        err = capsys.readouterr().err
        assert "registered scenario kind names" in err
        assert "link" in err and "srlg" in err

    def test_query_bad_syntax_exits_2(self, capsys):
        assert main(["query", "--scenario", "link:zap"]) == 2
        assert "syntax" in capsys.readouterr().err

    def test_query_unknown_sweep_kind_exits_2(self, capsys):
        assert main(["query", "--sweep", "nope"]) == 2
        assert "registered scenario kind names" in capsys.readouterr().err

    def test_query_unenumerable_sweep_kind_exits_2_locally(self, capsys):
        # 'shift' is registered but has no sweep grid; validation stays
        # local (no server involved) and lists the enumerable kinds.
        assert main(["query", "--sweep", "shift"]) == 2
        assert "no sweep grid" in capsys.readouterr().err

    def test_query_unreachable_server_exits_1(self, capsys):
        assert main(
            ["query", "--url", "http://127.0.0.1:1", "--scenario", "node:3"]
        ) == 1
        assert "cannot reach" in capsys.readouterr().err

    def test_query_whatif_against_live_server(self, live_server, capsys):
        assert main(
            ["query", "--url", live_server, "--scenario", "node:3"]
        ) == 0
        printed = capsys.readouterr().out
        assert "what-if [scenario] node failure 3" in printed
        assert "cache_hit=False" in printed
        # The repeat is answered from the plan cache.
        assert main(
            ["query", "--url", live_server, "--scenario", "node: 3"]
        ) == 0
        assert "cache_hit=True" in capsys.readouterr().out

    def test_query_sweep_and_metrics_against_live_server(self, live_server, capsys):
        assert main(["query", "--url", live_server, "--sweep", "link"]) == 0
        printed = capsys.readouterr().out
        assert "sweep: 35 scenarios" in printed
        assert "worst max utilization" in printed
        assert main(["query", "--url", live_server, "--metrics"]) == 0
        metrics = json.loads(capsys.readouterr().out)
        assert set(metrics) == {"pool", "scheduler", "plan_cache"}

    def test_query_unknown_space_exits_2_locally(self, capsys):
        # Validated locally: exits 2 before any network traffic.
        assert main(["query", "--space", "space:warp"]) == 2
        err = capsys.readouterr().err
        assert "registered scenario space names" in err

    def test_query_malformed_space_exits_2_locally(self, capsys):
        assert main(["query", "--space", "space:surge-sample:n=maybe"]) == 2
        assert "syntax" in capsys.readouterr().err

    def test_query_space_against_live_server(self, live_server, capsys):
        code = main(["query", "--url", live_server, "--space", "all-link-1"])
        assert code == 0
        printed = capsys.readouterr().out
        assert "space space:all-link-1: 35 scenarios" in printed
        assert "cvar=" in printed
        assert "max_utilization" in printed

    def test_serve_rejects_bad_weights_file(self, tmp_path, capsys):
        weights = tmp_path / "weights.json"
        weights.write_text("{not json")
        assert main(
            ["serve", "--topology", "isp", "--weights", str(weights)]
        ) == 2
        assert "error" in capsys.readouterr().err
