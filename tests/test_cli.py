"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.network.io import load_network


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_topology_command(tmp_path, capsys):
    out = tmp_path / "net.json"
    assert main(["topology", "--family", "isp", "--out", str(out)]) == 0
    net = load_network(out)
    assert net.num_nodes == 16
    assert "wrote" in capsys.readouterr().out


def test_topology_command_random_seeded(tmp_path):
    out1 = tmp_path / "a.json"
    out2 = tmp_path / "b.json"
    main(["topology", "--family", "random", "--seed", "4", "--out", str(out1)])
    main(["topology", "--family", "random", "--seed", "4", "--out", str(out2)])
    assert load_network(out1) == load_network(out2)


def test_figure_command(tmp_path, capsys):
    json_out = tmp_path / "fig.json"
    code = main(
        ["figure", "--id", "fig6", "--scale", "0.02", "--seed", "2", "--json", str(json_out)]
    )
    assert code == 0
    printed = capsys.readouterr().out
    assert "Fig.6" in printed
    data = json.loads(json_out.read_text())
    assert "curves" in data


def test_figure_command_unknown_id():
    with pytest.raises(SystemExit):
        main(["figure", "--id", "fig99"])


def test_compare_command(capsys):
    code = main(
        [
            "compare",
            "--topology",
            "isp",
            "--utilization",
            "0.5",
            "--scale",
            "0.02",
            "--seed",
            "2",
        ]
    )
    assert code == 0
    printed = capsys.readouterr().out
    assert "R_H=" in printed
    assert "STR objective" in printed
