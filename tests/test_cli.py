"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.network.io import load_network


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_topology_command(tmp_path, capsys):
    out = tmp_path / "net.json"
    assert main(["topology", "--family", "isp", "--out", str(out)]) == 0
    net = load_network(out)
    assert net.num_nodes == 16
    assert "wrote" in capsys.readouterr().out


def test_topology_command_random_seeded(tmp_path):
    out1 = tmp_path / "a.json"
    out2 = tmp_path / "b.json"
    main(["topology", "--family", "random", "--seed", "4", "--out", str(out1)])
    main(["topology", "--family", "random", "--seed", "4", "--out", str(out2)])
    assert load_network(out1) == load_network(out2)


def test_figure_command(tmp_path, capsys):
    json_out = tmp_path / "fig.json"
    code = main(
        ["figure", "--id", "fig6", "--scale", "0.02", "--seed", "2", "--json", str(json_out)]
    )
    assert code == 0
    printed = capsys.readouterr().out
    assert "Fig.6" in printed
    data = json.loads(json_out.read_text())
    assert "curves" in data


def test_figure_command_unknown_id():
    with pytest.raises(SystemExit):
        main(["figure", "--id", "fig99"])


def test_compare_command(capsys):
    code = main(
        [
            "compare",
            "--topology",
            "isp",
            "--utilization",
            "0.5",
            "--scale",
            "0.02",
            "--seed",
            "2",
        ]
    )
    assert code == 0
    printed = capsys.readouterr().out
    assert "R_H=" in printed
    assert "STR objective" in printed


class TestCampaignCommand:
    def test_run_status_aggregate(self, tmp_path, capsys):
        out = tmp_path / "camp"
        args = [
            "campaign", "run", "--out", str(out), "--topologies", "isp",
            "--utilizations", "0.5", "--seeds", "1", "--scale", "0.02",
        ]
        assert main(args) == 0
        printed = capsys.readouterr().out
        assert "1 executed" in printed
        assert (out / "spec.json").exists()
        assert len(list((out / "records").glob("*.json"))) == 1

        assert main(["campaign", "status", "--out", str(out)]) == 0
        assert "1/1" in capsys.readouterr().out

        agg_json = tmp_path / "agg.json"
        assert main(
            ["campaign", "aggregate", "--out", str(out), "--json", str(agg_json)]
        ) == 0
        printed = capsys.readouterr().out
        assert "R_L" in printed
        assert "points" in json.loads(agg_json.read_text())

    def test_rerun_skips_completed(self, tmp_path, capsys):
        out = tmp_path / "camp"
        args = [
            "campaign", "run", "--out", str(out), "--topologies", "isp",
            "--utilizations", "0.5", "--seeds", "1", "--scale", "0.02", "--quiet",
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert "1 already stored, 0 executed" in capsys.readouterr().out

    def test_run_from_spec_file(self, tmp_path, capsys):
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(json.dumps({
            "topologies": ["isp"], "target_utilizations": [0.5],
            "seeds": [1], "scale": 0.02,
        }))
        out = tmp_path / "camp"
        assert main(
            ["campaign", "run", "--out", str(out), "--spec", str(spec_file), "--quiet"]
        ) == 0
        assert "1 executed" in capsys.readouterr().out
