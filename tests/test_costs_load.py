"""Tests for the load-based objective, anchored on the paper's 3-node example."""

import numpy as np
import pytest

from repro.costs.load_cost import evaluate_load_cost
from repro.core.lexicographic import LexCost
from repro.routing.state import Routing
from repro.routing.weights import unit_weights
from repro.traffic.matrix import TrafficMatrix


@pytest.fixture
def triangle_traffic():
    """Paper Section 3.3.1: 1/3 high and 2/3 low priority from A=0 to C=2."""
    high = TrafficMatrix.from_pairs(3, [(0, 2, 1 / 3)])
    low = TrafficMatrix.from_pairs(3, [(0, 2, 2 / 3)])
    return high, low


def direct_weights(triangle):
    """Weights that route A->C on the direct link only."""
    return unit_weights(triangle.num_links)


def split_weights(triangle):
    """Weights that split A->C evenly over A-C and A-B-C."""
    weights = unit_weights(triangle.num_links).copy()
    weights[triangle.link_between(0, 2).index] = 2
    return weights


def test_paper_example_direct_routing(triangle, triangle_traffic):
    """Direct STR routing: Phi_H = 1/3, Phi_L = 64/9 (paper values)."""
    high, low = triangle_traffic
    routing = Routing(triangle, direct_weights(triangle))
    result = evaluate_load_cost(triangle, routing, routing, high, low)
    assert result.phi_high == pytest.approx(1 / 3)
    assert result.phi_low == pytest.approx(64 / 9)


def test_paper_example_split_routing(triangle, triangle_traffic):
    """ECMP-split STR routing: Phi_H = 1/2, Phi_L = 4/3 (paper values)."""
    high, low = triangle_traffic
    routing = Routing(triangle, split_weights(triangle))
    result = evaluate_load_cost(triangle, routing, routing, high, low)
    assert result.phi_high == pytest.approx(1 / 2)
    assert result.phi_low == pytest.approx(4 / 3)


def test_paper_example_dtr_dominates(triangle, triangle_traffic):
    """DTR: high on the direct link, low split - beats both STR options."""
    high, low = triangle_traffic
    high_routing = Routing(triangle, direct_weights(triangle))
    low_routing = Routing(triangle, split_weights(triangle))
    result = evaluate_load_cost(triangle, high_routing, low_routing, high, low)
    assert result.phi_high == pytest.approx(1 / 3)
    assert result.phi_low < 64 / 9


def test_objective_is_lexicographic(triangle, triangle_traffic):
    high, low = triangle_traffic
    routing = Routing(triangle, direct_weights(triangle))
    result = evaluate_load_cost(triangle, routing, routing, high, low)
    assert result.objective == LexCost(result.phi_high, result.phi_low)


def test_per_link_costs_sum_to_totals(triangle, triangle_traffic):
    high, low = triangle_traffic
    routing = Routing(triangle, split_weights(triangle))
    result = evaluate_load_cost(triangle, routing, routing, high, low)
    assert result.per_link_high.sum() == pytest.approx(result.phi_high)
    assert result.per_link_low.sum() == pytest.approx(result.phi_low)


def test_residual_reflects_high_load(triangle, triangle_traffic):
    high, low = triangle_traffic
    routing = Routing(triangle, direct_weights(triangle))
    result = evaluate_load_cost(triangle, routing, routing, high, low)
    direct = triangle.link_between(0, 2).index
    assert result.residual[direct] == pytest.approx(2 / 3)
    assert result.high_loads[direct] == pytest.approx(1 / 3)
    assert result.low_loads[direct] == pytest.approx(2 / 3)


def test_utilization_stats(triangle, triangle_traffic):
    high, low = triangle_traffic
    routing = Routing(triangle, direct_weights(triangle))
    result = evaluate_load_cost(triangle, routing, routing, high, low)
    direct = triangle.link_between(0, 2).index
    assert result.utilization[direct] == pytest.approx(1.0)
    assert result.max_utilization == pytest.approx(1.0)
    assert result.average_utilization == pytest.approx(1.0 / 6)


def test_sort_keys(triangle, triangle_traffic):
    high, low = triangle_traffic
    routing = Routing(triangle, direct_weights(triangle))
    result = evaluate_load_cost(triangle, routing, routing, high, low)
    keys = result.high_link_sort_keys()
    assert len(keys) == triangle.num_links
    direct = triangle.link_between(0, 2).index
    assert max(range(len(keys)), key=lambda i: keys[i]) == direct
    low_keys = result.low_link_sort_keys()
    assert np.argmax(low_keys) == direct


def test_empty_traffic_zero_cost(triangle):
    zeros = TrafficMatrix.zeros(3)
    routing = Routing(triangle, unit_weights(triangle.num_links))
    result = evaluate_load_cost(triangle, routing, routing, zeros, zeros)
    assert result.phi_high == 0.0
    assert result.phi_low == 0.0
    assert result.objective == LexCost(0.0, 0.0)
