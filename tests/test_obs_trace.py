"""Span tracing (:mod:`repro.obs.trace`): nesting, JSONL schema, the
no-op default, and the ``REPRO_TRACE`` bootstrap."""

from __future__ import annotations

import json
import subprocess
import sys
import threading
import time

import pytest

from repro import obs
from repro.obs.trace import _NULL_SPAN

RECORD_KEYS = {
    "seq", "span", "parent", "name", "start_s", "dur_ms", "pid", "thread",
    "attrs",
}


@pytest.fixture
def tracer(tmp_path):
    path = tmp_path / "spans.jsonl"
    obs.enable_tracing(path)
    yield path
    obs.disable_tracing()


def _records(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


def test_span_is_shared_noop_when_tracing_disabled():
    assert not obs.tracing_enabled()
    span = obs.span("evaluate", mode="load")
    assert span is _NULL_SPAN
    assert obs.span("other") is span  # one shared instance, zero alloc
    with span as inner:
        inner.set(late="attr")  # accepted and dropped


def test_records_match_schema_and_sequence(tracer):
    with obs.span("outer", attrs={"topology": "isp"}, mode="load"):
        time.sleep(0.001)
    records = _records(tracer)
    assert len(records) == 1
    (record,) = records
    assert set(record) == RECORD_KEYS
    assert record["seq"] == 0
    assert record["name"] == "outer"
    assert record["parent"] is None
    assert record["attrs"] == {"topology": "isp", "mode": "load"}
    assert record["dur_ms"] >= 1.0
    assert record["start_s"] >= 0.0


def test_nesting_records_parent_ids_child_first(tracer):
    with obs.span("parent") as outer:
        with obs.span("child"):
            pass
        with obs.span("sibling"):
            pass
    child, sibling, parent = _records(tracer)
    assert [r["name"] for r in (child, sibling, parent)] == [
        "child", "sibling", "parent",
    ]
    assert child["parent"] == parent["span"] == outer.span_id
    assert sibling["parent"] == parent["span"]
    assert [r["seq"] for r in (child, sibling, parent)] == [0, 1, 2]


def test_late_attributes_land_in_the_record(tracer):
    with obs.span("sized") as span:
        span.set(rows=17)
    (record,) = _records(tracer)
    assert record["attrs"] == {"rows": 17}


def test_nesting_is_per_thread(tracer):
    seen = {}

    def worker():
        with obs.span("thread-root") as span:
            seen["thread_root"] = span.span_id

    with obs.span("main-root"):
        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
    by_name = {r["name"]: r for r in _records(tracer)}
    # The worker's root span must not adopt the main thread's open span.
    assert by_name["thread-root"]["parent"] is None
    assert by_name["main-root"]["parent"] is None
    assert by_name["thread-root"]["thread"] != by_name["main-root"]["thread"]


def test_span_ids_unique_under_concurrency(tracer):
    def worker(_i):
        for _ in range(50):
            with obs.span("burst"):
                pass

    workers = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
    for w in workers:
        w.start()
    for w in workers:
        w.join()
    records = _records(tracer)
    assert len(records) == 8 * 50
    assert len({r["span"] for r in records}) == len(records)
    assert sorted(r["seq"] for r in records) == list(range(len(records)))


def test_enable_tracing_replaces_the_previous_tracer(tmp_path):
    first = tmp_path / "first.jsonl"
    second = tmp_path / "second.jsonl"
    obs.enable_tracing(first)
    try:
        with obs.span("one"):
            pass
        obs.enable_tracing(second)
        with obs.span("two"):
            pass
    finally:
        obs.disable_tracing()
    assert [r["name"] for r in _records(first)] == ["one"]
    assert [r["name"] for r in _records(second)] == ["two"]
    obs.disable_tracing()  # idempotent


def test_repro_trace_env_bootstraps_tracing(tmp_path):
    import os

    path = tmp_path / "env.jsonl"
    script = (
        "from repro import obs\n"
        "assert obs.tracing_enabled()\n"
        "with obs.span('booted'):\n"
        "    pass\n"
        "obs.disable_tracing()\n"
    )
    src = str(__import__("pathlib").Path(__file__).resolve().parents[1] / "src")
    python_path = os.pathsep.join(
        p for p in (src, os.environ.get("PYTHONPATH")) if p
    )
    subprocess.run(
        [sys.executable, "-c", script],
        check=True,
        env={**os.environ, "REPRO_TRACE": str(path), "PYTHONPATH": python_path},
    )
    assert [r["name"] for r in _records(path)] == ["booted"]
