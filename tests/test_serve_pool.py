"""Warm-session pool: canonical keys, LRU eviction, deterministic rebuild."""

from __future__ import annotations

import pytest

from repro.serve.cache import PlanCache
from repro.serve.encoding import canonical_body, whatif_payload
from repro.serve.pool import SessionPool, SessionSpec

ISP = dict(topology="isp", utilization=0.5)


# ----------------------------------------------------------------------
# SessionSpec canonicalization
# ----------------------------------------------------------------------
def test_key_is_deterministic_and_field_sensitive():
    a = SessionSpec(**ISP)
    b = SessionSpec(**ISP)
    assert a == b and a.key() == b.key()
    assert SessionSpec(topology="isp", utilization=0.6).key() != a.key()
    assert SessionSpec(**ISP, seed=2).key() != a.key()


def test_weight_spellings_share_one_key():
    """A list, a high-only dict, and int/float spellings are one baseline."""
    as_list = SessionSpec(**ISP, weights=[1] * 70)
    as_dict = SessionSpec(**ISP, weights={"high": [1] * 70})
    as_pair = SessionSpec(**ISP, weights={"high": [1] * 70, "low": [1] * 70})
    assert as_list.key() == as_dict.key() == as_pair.key()
    assert as_list.key() != SessionSpec(**ISP).key()  # symbolic "unit" differs


def test_from_jsonable_rejects_unknown_fields():
    with pytest.raises(ValueError, match="unknown session spec fields"):
        SessionSpec.from_jsonable({"topology": "isp", "bogus": 1})
    with pytest.raises(ValueError, match="must be an object"):
        SessionSpec.from_jsonable([1, 2])
    with pytest.raises(ValueError, match="unknown weight policy"):
        SessionSpec(**ISP, weights="hopcount")
    with pytest.raises(ValueError, match="unknown topology"):
        SessionSpec(topology="mesh")


def test_jsonable_round_trip():
    spec = SessionSpec(**ISP, weights={"high": [2] * 70, "low": [3] * 70})
    assert SessionSpec.from_jsonable(spec.to_jsonable()) == spec


# ----------------------------------------------------------------------
# Pool behavior
# ----------------------------------------------------------------------
def test_hit_returns_the_same_warm_session():
    pool = SessionPool(capacity=2)
    key1, s1 = pool.get(SessionSpec(**ISP))
    key2, s2 = pool.get(SessionSpec(**ISP))
    assert key1 == key2 and s1 is s2
    assert pool.metrics()["hits"] == 1
    assert pool.metrics()["builds"] == 1


def test_lru_eviction_and_rebuild_on_miss():
    pool = SessionPool(capacity=1)
    spec_a = SessionSpec(**ISP)
    spec_b = SessionSpec(**ISP, seed=2)
    _, a1 = pool.get(spec_a)
    pool.get(spec_b)  # evicts a
    assert pool.metrics()["evictions"] == 1
    _, a2 = pool.get(spec_a)  # rebuilt, not resurrected
    assert a2 is not a1
    assert pool.metrics()["builds"] == 3
    assert len(pool) == 1


def test_rebuild_is_deterministic_bit_for_bit():
    """Evict-and-rebuild must never change an answer (the pool's license
    to evict freely)."""
    spec = SessionSpec(**ISP)
    pool = SessionPool(capacity=1)
    _, before = pool.get(spec)
    answer_before = canonical_body(whatif_payload(before.under_scenario("node:3")))
    pool.get(SessionSpec(**ISP, seed=2))  # evict
    _, rebuilt = pool.get(spec)
    assert rebuilt is not before
    answer_after = canonical_body(whatif_payload(rebuilt.under_scenario("node:3")))
    assert answer_before == answer_after


def test_built_sessions_arrive_warm():
    _, session = SessionPool().get(SessionSpec(**ISP))
    # prepare() ran: baseline evaluation and sweep engine exist.
    assert session._sweep_engine_cache is not None
    assert session.evaluate() is session.evaluate()


def test_capacity_validation():
    with pytest.raises(ValueError):
        SessionPool(capacity=0)
    with pytest.raises(ValueError):
        PlanCache(capacity=0)
