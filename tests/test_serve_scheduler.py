"""Micro-batch scheduler: coalescing, bit-identity, thread safety.

The concurrency regression suite of the serving stack: a session shared
across the scheduler's callers is only ever driven under
``session.lock`` (see the thread-safety note on
:mod:`repro.api.session`), so answers under concurrent load must equal,
byte for byte, a serial single-threaded reference.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.scenarios.spec import canonical_spec
from repro.serve.cache import PlanCache
from repro.serve.encoding import canonical_body, whatif_payload
from repro.serve.pool import SessionSpec
from repro.serve.scheduler import MicroBatchScheduler

SPEC = SessionSpec(topology="isp", utilization=0.5)

# A mixed workload touching every scenario kind, with repeats.
QUERIES = [
    "link:0-4",
    "node:3",
    "srlg:0-4,2-5",
    "scale:1.25",
    "surge:3x2.0",
    "shift:2>5@0.3",
    "link:0-4+surge:3x2.0",
    "link: 0-4",  # spelling variant of an earlier query
    "node:3",     # literal repeat
]


@pytest.fixture(scope="module")
def reference():
    """Serial single-threaded answers from an independent warm session."""
    session = SPEC.build()
    return {
        q: canonical_body(whatif_payload(session.under_scenario(canonical_spec(q))))
        for q in QUERIES
    }


def test_submit_requires_a_running_scheduler():
    scheduler = MicroBatchScheduler()
    with pytest.raises(RuntimeError, match="not running"):
        scheduler.submit("k", SPEC.build(), "node:3")


def test_malformed_specs_fail_at_submit_time():
    with MicroBatchScheduler() as scheduler:
        with pytest.raises(ValueError, match="registered scenario kind"):
            scheduler.submit("k", None, "bogus:1")  # session never touched
    assert scheduler.metrics()["queries"] == 0


def test_concurrent_queries_are_bit_identical_to_serial(reference):
    session = SPEC.build()
    key = SPEC.key()
    with MicroBatchScheduler() as scheduler:
        with ThreadPoolExecutor(max_workers=8) as executor:
            futures = {
                (i, q): executor.submit(
                    lambda q=q: scheduler.submit(key, session, q).result()
                )
                for i in range(4)
                for q in QUERIES
            }
            for (_, q), outer in futures.items():
                payload, _hit = outer.result()
                assert canonical_body(payload) == reference[q], q
    stats = scheduler.metrics()
    assert stats["errors"] == 0
    assert stats["queries"] == 4 * len(QUERIES)
    # Repeats and spelling variants were answered from the plan cache.
    assert stats["cache_hits"] >= stats["queries"] - len(set(
        canonical_spec(q) for q in QUERIES
    ))


def test_window_coalesces_a_burst_into_one_batch(reference):
    session = SPEC.build()
    key = SPEC.key()
    cache = PlanCache()
    scheduler = MicroBatchScheduler(cache, window_s=0.25)
    # Stall the dispatcher behind one job so the burst queues up, then
    # assert the whole burst lands in a single batch.
    release = threading.Event()
    original = session.under_scenario

    def gated(*args, **kwargs):
        release.wait(timeout=5)
        return original(*args, **kwargs)

    session.under_scenario = gated
    try:
        scheduler.start()
        first = scheduler.submit(key, session, QUERIES[0])
        burst = [scheduler.submit(key, session, q) for q in QUERIES[1:]]
        release.set()
        payload, _ = first.result(timeout=10)
        assert canonical_body(payload) == reference[QUERIES[0]]
        for q, future in zip(QUERIES[1:], burst):
            payload, _ = future.result(timeout=10)
            assert canonical_body(payload) == reference[q]
    finally:
        session.under_scenario = original
        scheduler.stop()
    stats = scheduler.metrics()
    assert stats["max_batch_size"] >= 2
    assert stats["coalesced_queries"] >= 2
    assert stats["batches"] < stats["queries"]


def test_groups_isolate_sessions():
    """A batch spanning two baselines answers each from its own session."""
    spec_b = SessionSpec(topology="isp", utilization=0.4)
    session_a, session_b = SPEC.build(), spec_b.build()
    ref_a = canonical_body(whatif_payload(session_a.under_scenario("node:3")))
    ref_b = canonical_body(whatif_payload(session_b.under_scenario("node:3")))
    assert ref_a != ref_b  # different baselines, different answers
    with MicroBatchScheduler(window_s=0.05) as scheduler:
        fa = scheduler.submit(SPEC.key(), session_a, "node:3")
        fb = scheduler.submit(spec_b.key(), session_b, "node:3")
        assert canonical_body(fa.result(timeout=10)[0]) == ref_a
        assert canonical_body(fb.result(timeout=10)[0]) == ref_b


def test_stop_drains_queued_jobs():
    session = SPEC.build()
    scheduler = MicroBatchScheduler().start()
    future = scheduler.submit(SPEC.key(), session, "node:3")
    scheduler.stop()
    payload, _hit = future.result(timeout=10)
    assert payload["kind"] == "scenario"
