"""Fixture: exactly one RL005 violation (non-atomic artifact write)."""

import json
import os


def torn_write(path, payload):
    with open(path, "w") as handle:
        json.dump(payload, handle)


def atomic_write(path, payload):
    tmp = f"{path}.tmp"  # tmp + os.replace: the idiom itself, not a violation
    with open(tmp, "w") as handle:
        json.dump(payload, handle)
    os.replace(tmp, path)
