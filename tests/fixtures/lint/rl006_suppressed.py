"""Fixture: one RL006 violation, silenced by an inline directive."""

from repro import obs
from repro.serve.encoding import canonical_body


def debug_dump(payload):
    # A deliberate debugging endpoint outside the canonical store.
    return canonical_body(
        {"result": payload, "telemetry": obs.snapshot()}  # repro-lint: disable=RL006
    )
