"""Fixture: exactly one RL001 violation (unseeded random.Random())."""

import random

GOOD = random.Random(42)  # seeded: not a violation

BAD = random.Random()
