"""Fixture: exactly one RL006 violation (telemetry in canonical bytes)."""

from repro import obs
from repro.serve.encoding import canonical_body


def respond(payload):
    in_band = canonical_body({"result": payload, "telemetry": obs.snapshot()})
    out_of_band = canonical_body({"result": payload})  # clean: obs stays out
    return in_band, out_of_band
