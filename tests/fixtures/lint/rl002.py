"""Fixture: exactly one RL002 violation (time.time in a result path)."""

import time


def timed_result():
    start = time.perf_counter()  # monotonic: not a violation
    stamp = time.time()
    return {"stamp": stamp, "elapsed": time.perf_counter() - start}
