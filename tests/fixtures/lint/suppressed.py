"""Fixture: two violations, both silenced by inline directives."""

import random

TRAILING = random.Random()  # repro-lint: disable=RL001

# repro-lint: disable=RL001
ABOVE = random.Random()

NOT_A_DIRECTIVE = "# repro-lint: disable=RL001 inside a string does not count"
