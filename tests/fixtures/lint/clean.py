"""Fixture: violates no repro-lint rule (the exit-0 case)."""

import json
import random


def deterministic_blob(seed, data):
    rng = random.Random(seed)
    ordered = json.dumps(sorted(data.keys()))
    return rng.random(), ordered
