"""Fixture: exactly one RL004 violation (session mutation outside the lock).

Lives under a ``serve/`` directory because RL004 only applies to the
serve tier, where sessions are shared across threads.
"""


def handle(session, link, weight):
    with session.lock:
        session.evaluate()  # under the lock: not a violation
    return session.what_if(link, weight)
