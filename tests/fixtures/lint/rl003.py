"""Fixture: exactly one RL003 violation (.keys() view into json.dumps)."""

import json


def canonical(data):
    ordered = json.dumps(sorted(data.keys()))  # sorted: not a violation
    unordered = json.dumps(list(data.keys()))
    return ordered, unordered
