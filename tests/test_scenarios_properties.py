"""Executable laws of the scenario algebra (hypothesis).

* **Order-insensitivity** — composing scenarios with disjoint element
  sets lowers to the same normalized form regardless of order.  Traffic
  factors are drawn from powers of two so multiplicative transforms
  commute *exactly*, making the law bitwise, not approximate.
* **Idempotence/purity** — lowering the same scenario twice yields equal
  forms; ``compose`` of one scenario is that scenario; nested
  compositions flatten.
* **Round-trip** — ``project_loads_back`` followed by restriction to the
  surviving links is the identity, and failed links carry zero.
* **Explicit disconnection** — unroutable positive demand is always
  enumerated and accounted, never silently dropped.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.topology_isp import isp_topology
from repro.scenarios import (
    Compose,
    HotSpotSurge,
    LinkFailure,
    NodeFailure,
    SrlgFailure,
    TrafficScale,
    TrafficShift,
    compose,
)
from repro.traffic.gravity import gravity_traffic_matrix
from repro.traffic.highpriority import random_high_priority
from repro.traffic.scaling import scale_to_utilization

NET = isp_topology()
PAIRS = NET.duplex_pairs()

_rng = random.Random(77)
_low = gravity_traffic_matrix(NET.num_nodes, _rng)
_high = random_high_priority(_low, density=0.1, fraction=0.3, rng=_rng)
HIGH, LOW = scale_to_utilization(NET, _high.matrix, _low, 0.5)

# Powers of two multiply exactly in binary floating point, so transforms
# built from them commute bitwise — the order-insensitivity law can then
# demand full equality instead of tolerances.
POW2 = st.sampled_from([0.25, 0.5, 2.0, 4.0])
NODES = st.integers(min_value=0, max_value=NET.num_nodes - 1)

link_failures = st.lists(
    st.sampled_from(PAIRS), min_size=1, max_size=3, unique=True
).map(lambda pairs: LinkFailure(pairs=tuple(pairs)))
node_failures = NODES.map(NodeFailure.single)
srlg_failures = st.lists(
    st.sampled_from(PAIRS), min_size=2, max_size=3, unique=True
).map(lambda pairs: SrlgFailure(pairs=tuple(pairs), name="h"))
scales = POW2.map(lambda f: TrafficScale(factor=f))
surges = st.tuples(NODES, POW2).map(
    lambda t: HotSpotSurge(node=t[0], factor=t[1])
)
shifts = st.tuples(
    NODES, NODES, st.sampled_from([0.25, 0.5, 0.75])
).filter(lambda t: t[0] != t[1]).map(
    lambda t: TrafficShift(src=t[0], dst=t[1], fraction=t[2])
)
scenarios = st.one_of(
    link_failures, node_failures, srlg_failures, scales, surges, shifts
)


def lower(scenario):
    return scenario.lower(NET, HIGH, LOW)


# ----------------------------------------------------------------------
# Composition laws
# ----------------------------------------------------------------------
@given(a=scenarios, b=scenarios)
@settings(max_examples=60, deadline=None)
def test_composition_order_insensitive_for_disjoint_elements(a, b):
    if a.element_keys(NET) & b.element_keys(NET):
        return  # overlapping elements: order may legitimately matter
    assert lower(compose(a, b)) == lower(compose(b, a))


@given(a=scenarios, b=scenarios, c=scenarios)
@settings(max_examples=40, deadline=None)
def test_composition_flattens_and_associates(a, b, c):
    nested = compose(compose(a, b), c)
    flat = compose(a, b, c)
    assert isinstance(nested, Compose) and isinstance(flat, Compose)
    assert nested.parts == flat.parts
    assert lower(nested) == lower(flat)


@given(s=scenarios)
@settings(max_examples=40, deadline=None)
def test_compose_of_one_is_the_scenario_itself(s):
    assert compose(s) is s


@given(s=scenarios)
@settings(max_examples=40, deadline=None)
def test_lowering_is_idempotent(s):
    first = lower(s)
    second = lower(s)
    assert first == second
    # Lowering through a shared projection cache is the same form too.
    cache = {}
    assert s.lower(NET, HIGH, LOW, projections=cache) == first
    assert s.lower(NET, HIGH, LOW, projections=cache) == first


@given(a=scenarios, b=scenarios)
@settings(max_examples=40, deadline=None)
def test_composed_failure_sets_are_unions(a, b):
    composed = compose(a, b)
    assert set(composed.failed_link_indices(NET)) == set(
        a.failed_link_indices(NET)
    ) | set(b.failed_link_indices(NET))


# ----------------------------------------------------------------------
# Projection round-trips
# ----------------------------------------------------------------------
@given(s=st.one_of(link_failures, node_failures, srlg_failures),
       seed=st.integers(0, 2**16))
@settings(max_examples=40, deadline=None)
def test_project_loads_back_round_trips(s, seed):
    lowered = lower(s)
    projection = lowered.projection
    rng = np.random.default_rng(seed)
    loads = rng.uniform(0.0, 100.0, size=len(projection.surviving_links))
    full = lowered.project_loads_back(loads)
    assert full.shape == (NET.num_links,)
    # Restriction to the survivors is the identity...
    np.testing.assert_array_equal(
        full[projection.surviving_index_array()], loads
    )
    # ...and failed links carry exactly zero.
    assert all(full[l] == 0.0 for l in projection.failed_links)
    # Weight projection round-trips through the same index map.
    weights = rng.integers(1, 31, size=NET.num_links)
    np.testing.assert_array_equal(
        projection.project_weights(weights),
        weights[list(projection.surviving_links)],
    )


# ----------------------------------------------------------------------
# Explicit disconnected-demand handling
# ----------------------------------------------------------------------
@given(node=NODES)
@settings(max_examples=30, deadline=None)
def test_node_failure_disconnection_is_fully_accounted(node):
    lowered = lower(NodeFailure.single(node))
    demand = HIGH.demands + LOW.demands
    involving = {
        (s, t)
        for s, t in zip(*np.nonzero(demand > 0))
        if s == node or t == node
    }
    cut = set(lowered.disconnected_pairs)
    # Every positive pair touching the failed node is unroutable...
    assert involving <= cut
    # ...every listed pair had positive demand and is now zeroed...
    for s, t in cut:
        assert demand[s, t] > 0
        assert lowered.high_traffic.demands[s, t] == 0.0
        assert lowered.low_traffic.demands[s, t] == 0.0
    # ...and the lost volume is exactly the zeroed demand (summed in the
    # same row-major order and with the same numpy reduction).
    dropped = np.asarray([demand[s, t] for s, t in sorted(cut)])
    assert lowered.lost_demand == float(dropped.sum())
    # Every surviving pair is genuinely routable.
    reach = lowered.projection.reachable()
    remaining = lowered.high_traffic.demands + lowered.low_traffic.demands
    assert reach[remaining > 0].all()


@given(s=st.one_of(scales, surges, shifts))
@settings(max_examples=40, deadline=None)
def test_traffic_scenarios_disconnect_nothing(s):
    lowered = lower(s)
    assert not lowered.disconnected
    assert lowered.disconnected_pairs == ()
    assert lowered.lost_demand == 0.0
    assert lowered.projection.is_identity
    assert lowered.network is NET


# ----------------------------------------------------------------------
# Traffic-transform semantics
# ----------------------------------------------------------------------
@given(factor=POW2)
@settings(max_examples=20, deadline=None)
def test_scale_lowering_scales_totals_exactly(factor):
    lowered = lower(TrafficScale(factor=factor))
    assert lowered.high_traffic.total() == HIGH.total() * factor
    assert lowered.low_traffic.total() == LOW.total() * factor


@given(s=shifts)
@settings(max_examples=40, deadline=None)
def test_shift_conserves_volume_and_keeps_self_demand_rule(s):
    lowered = lower(s)
    for before, after in ((HIGH, lowered.high_traffic), (LOW, lowered.low_traffic)):
        assert after.total() == pytest.approx(before.total())
        # The dst origin cannot address itself: its demand toward src stays.
        assert after.demands[s.dst, s.src] == before.demands[s.dst, s.src]
        # Every other origin keeps exactly (1 - fraction) toward src.
        for o in range(NET.num_nodes):
            if o in (s.dst, s.src):
                continue
            moved = before.demands[o, s.src] * s.fraction
            assert after.demands[o, s.src] == before.demands[o, s.src] - moved
            assert after.demands[o, s.dst] == before.demands[o, s.dst] + moved
