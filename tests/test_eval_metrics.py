"""Tests for evaluation metrics."""

import numpy as np
import pytest

from repro.eval.metrics import safe_ratio, sorted_high_utilization, utilization_histogram


class TestSafeRatio:
    def test_normal(self):
        assert safe_ratio(6.0, 2.0) == 3.0

    def test_zero_over_zero_is_one(self):
        assert safe_ratio(0.0, 0.0) == 1.0

    def test_positive_over_zero_is_inf(self):
        assert safe_ratio(5.0, 0.0) == float("inf")

    def test_tiny_values_treated_as_zero(self):
        assert safe_ratio(1e-12, 1e-13) == 1.0


class TestUtilizationHistogram:
    def test_counts_sum_to_links(self):
        util = np.array([0.05, 0.15, 0.15, 0.95, 1.25])
        edges, counts = utilization_histogram(util, bin_width=0.1)
        assert counts.sum() == 5
        assert len(edges) == len(counts) + 1

    def test_bin_placement(self):
        util = np.array([0.05, 0.15, 0.15])
        edges, counts = utilization_histogram(util, bin_width=0.1, max_utilization=0.3)
        assert counts[0] == 1
        assert counts[1] == 2

    def test_covers_overload(self):
        util = np.array([2.4])
        edges, counts = utilization_histogram(util, bin_width=0.5)
        assert edges[-1] >= 2.4
        assert counts[-1] == 1

    def test_invalid_bin_width(self):
        with pytest.raises(ValueError):
            utilization_histogram(np.array([0.5]), bin_width=0.0)


class TestSortedHighUtilization:
    def test_descending(self):
        loads = np.array([10.0, 50.0, 30.0])
        caps = np.array([100.0, 100.0, 100.0])
        curve = sorted_high_utilization(loads, caps)
        np.testing.assert_allclose(curve, [0.5, 0.3, 0.1])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            sorted_high_utilization(np.ones(2), np.ones(3))
