"""Tests for link-failure modeling."""

import pytest

from repro.network.failures import (
    count_critical_adjacencies,
    remove_adjacency,
    single_failure_scenarios,
)
from repro.network.graph import Network


def test_remove_adjacency_basic(triangle):
    scenario = remove_adjacency(triangle, 0, 2)
    assert scenario.failed_pair == (0, 2)
    assert scenario.network.num_links == 4
    assert not scenario.network.has_link(0, 2)
    assert not scenario.network.has_link(2, 0)
    assert scenario.network.has_link(0, 1)


def test_remove_adjacency_preserves_attributes(isp_net):
    scenario = remove_adjacency(isp_net, 0, 1)
    for new_idx, old_idx in enumerate(scenario.surviving_links):
        old = isp_net.link(old_idx)
        new = scenario.network.link(new_idx)
        assert (new.src, new.dst) == (old.src, old.dst)
        assert new.capacity_mbps == old.capacity_mbps
        assert new.prop_delay_ms == old.prop_delay_ms


def test_remove_missing_adjacency_rejected(triangle):
    big = Network(4)
    big.add_duplex_link(0, 1)
    with pytest.raises(ValueError, match="no duplex adjacency"):
        remove_adjacency(big, 0, 2)


def test_project_weights(triangle):
    scenario = remove_adjacency(triangle, 0, 2)
    weights = list(range(1, triangle.num_links + 1))
    projected = scenario.project_weights(weights)
    assert len(projected) == 4
    for new_idx, old_idx in enumerate(scenario.surviving_links):
        assert projected[new_idx] == weights[old_idx]


def test_project_loads_back(triangle):
    import numpy as np

    scenario = remove_adjacency(triangle, 0, 2)
    loads = np.arange(1.0, 5.0)
    full = scenario.project_loads_back(loads, triangle.num_links)
    assert full.shape == (6,)
    assert full[triangle.link_between(0, 2).index] == 0.0
    assert full.sum() == pytest.approx(loads.sum())


def test_project_loads_back_shape_validated(triangle):
    import numpy as np

    scenario = remove_adjacency(triangle, 0, 2)
    with pytest.raises(ValueError, match="expected"):
        scenario.project_loads_back(np.zeros(3), triangle.num_links)


def test_single_failure_scenarios_count(triangle):
    scenarios = list(single_failure_scenarios(triangle))
    assert len(scenarios) == 3
    assert {s.failed_pair for s in scenarios} == {(0, 1), (0, 2), (1, 2)}


def test_disconnecting_failures_skipped(line4):
    assert list(single_failure_scenarios(line4)) == []
    assert len(list(single_failure_scenarios(line4, require_connected=False))) == 3


def test_count_critical_adjacencies(line4, triangle, isp_net):
    assert count_critical_adjacencies(line4) == 3
    assert count_critical_adjacencies(triangle) == 0
    assert count_critical_adjacencies(isp_net) == 0


def test_isp_survives_any_single_failure(isp_net):
    scenarios = list(single_failure_scenarios(isp_net))
    assert len(scenarios) == 35
    for scenario in scenarios:
        assert scenario.network.is_strongly_connected()
