"""Equivalence of the evaluator's incremental-SPF path and full recomputation.

The property the incremental engine guarantees: given a cached parent
evaluation, evaluating a weight delta through
``evaluate_high_neighbor`` / ``evaluate_low_neighbor`` /
``evaluate_str_neighbor`` produces *bit-identical* costs and loads to an
evaluator that recomputes every neighbor from scratch
(``incremental=False``).
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.evaluator import (
    LOAD_MODE,
    SLA_MODE,
    DualTopologyEvaluator,
    IncrementalMismatchError,
)
from repro.eval.experiment import ExperimentConfig, build_network, build_traffic
from repro.routing.incremental import WeightDelta
from repro.routing.weights import random_weights

TOPOLOGIES = ("random", "isp", "powerlaw")
NUM_MOVES = 50


def _setup(topology: str, mode: str, seed: int = 5):
    config = ExperimentConfig(topology=topology, mode=mode)
    rng = random.Random(seed)
    net = build_network(topology, seed)
    high, low, _meta = build_traffic(net, config, rng)
    incremental = DualTopologyEvaluator(
        net, high, low, mode=mode, incremental=True, verify_incremental=True
    )
    full = DualTopologyEvaluator(net, high, low, mode=mode, incremental=False)
    return net, incremental, full, rng


def _random_single_deltas(base, num_links, rng, count):
    deltas = []
    while len(deltas) < count:
        link = rng.randrange(num_links)
        new_w = rng.randint(1, 30)
        if new_w != base[link]:
            deltas.append(WeightDelta.single(link, int(base[link]), new_w))
    return deltas


def _assert_same_evaluation(mode, incremental_eval, full_eval):
    assert incremental_eval.objective == full_eval.objective
    assert incremental_eval.phi_low == full_eval.phi_low
    np.testing.assert_array_equal(incremental_eval.high_loads, full_eval.high_loads)
    np.testing.assert_array_equal(incremental_eval.low_loads, full_eval.low_loads)
    np.testing.assert_array_equal(incremental_eval.utilization, full_eval.utilization)
    if mode == SLA_MODE:
        assert incremental_eval.penalty == full_eval.penalty
        assert incremental_eval.violations == full_eval.violations
        assert incremental_eval.pair_delays_ms == full_eval.pair_delays_ms


@pytest.mark.parametrize("topology", TOPOLOGIES)
def test_str_single_weight_moves_match_full(topology):
    net, incremental, full, rng = _setup(topology, LOAD_MODE)
    base = random_weights(net.num_links, rng)
    incremental.evaluate_str(base)
    for delta in _random_single_deltas(base, net.num_links, rng, NUM_MOVES):
        neighbor, via_delta = incremental.evaluate_str_neighbor(base, delta)
        from_scratch = full.evaluate_str(neighbor)
        _assert_same_evaluation(LOAD_MODE, via_delta, from_scratch)
    stats = incremental.cache_stats()
    assert stats["high_incremental"] >= NUM_MOVES
    assert stats["low_incremental"] >= NUM_MOVES


@pytest.mark.parametrize("topology", TOPOLOGIES)
def test_dual_topology_moves_match_full(topology):
    net, incremental, full, rng = _setup(topology, LOAD_MODE, seed=9)
    wh = random_weights(net.num_links, rng)
    wl = random_weights(net.num_links, rng)
    incremental.evaluate(wh, wl)
    for i, delta in enumerate(
        _random_single_deltas(wh, net.num_links, rng, 10)
        + _random_single_deltas(wl, net.num_links, rng, 10)
    ):
        if i < 10:
            neighbor, via_delta = incremental.evaluate_high_neighbor(wh, wl, delta)
            from_scratch = full.evaluate(neighbor, wl)
        else:
            neighbor, via_delta = incremental.evaluate_low_neighbor(wh, wl, delta)
            from_scratch = full.evaluate(wh, neighbor)
        _assert_same_evaluation(LOAD_MODE, via_delta, from_scratch)


def test_sla_mode_moves_match_full():
    net, incremental, full, rng = _setup("isp", SLA_MODE, seed=13)
    base = random_weights(net.num_links, rng)
    incremental.evaluate_str(base)
    for delta in _random_single_deltas(base, net.num_links, rng, 25):
        neighbor, via_delta = incremental.evaluate_str_neighbor(base, delta)
        from_scratch = full.evaluate_str(neighbor)
        _assert_same_evaluation(SLA_MODE, via_delta, from_scratch)


def test_two_link_moves_match_full():
    net, incremental, full, rng = _setup("powerlaw", LOAD_MODE, seed=21)
    base = random_weights(net.num_links, rng)
    incremental.evaluate_str(base)
    for _ in range(25):
        a, b = rng.sample(range(net.num_links), 2)
        candidate = base.copy()
        candidate[a] = rng.randint(1, 30)
        candidate[b] = rng.randint(1, 30)
        delta = WeightDelta.from_weights(base, candidate)
        if delta.num_changes == 0:
            continue
        neighbor, via_delta = incremental.evaluate_str_neighbor(base, delta)
        from_scratch = full.evaluate_str(neighbor)
        _assert_same_evaluation(LOAD_MODE, via_delta, from_scratch)


def test_incremental_disabled_never_derives():
    net, _inc, full, rng = _setup("isp", LOAD_MODE, seed=2)
    base = random_weights(net.num_links, rng)
    full.evaluate_str(base)
    for delta in _random_single_deltas(base, net.num_links, rng, 5):
        full.evaluate_str_neighbor(base, delta)
    stats = full.cache_stats()
    assert stats["high_incremental"] == 0
    assert stats["low_incremental"] == 0
    assert stats["high_full"] >= 1


def test_missing_parent_falls_back_to_full():
    net, incremental, _full, rng = _setup("isp", LOAD_MODE, seed=4)
    base = random_weights(net.num_links, rng)
    # No evaluation of `base` first: the parent layer is not cached, so the
    # delta hint cannot be honored and the layer is rebuilt from scratch.
    delta = _random_single_deltas(base, net.num_links, rng, 1)[0]
    _neighbor, evaluation = incremental.evaluate_str_neighbor(base, delta)
    assert evaluation is not None
    stats = incremental.cache_stats()
    assert stats["high_incremental"] == 0
    assert stats["high_full"] == 1


def test_search_results_identical_with_and_without_incremental():
    from repro.core.search_params import SearchParams
    from repro.core.str_search import optimize_str

    params = SearchParams(
        iterations_high=6, iterations_low=4, iterations_refine=2, neighborhood_size=3
    )
    config = ExperimentConfig(topology="isp", mode=LOAD_MODE)
    rng = random.Random(6)
    net = build_network("isp", 6)
    high, low, _meta = build_traffic(net, config, rng)
    results = []
    for incremental in (True, False):
        evaluator = DualTopologyEvaluator(net, high, low, incremental=incremental)
        result = optimize_str(evaluator, params=params, rng=random.Random(42))
        results.append(result)
    assert results[0].objective == results[1].objective
    np.testing.assert_array_equal(results[0].weights, results[1].weights)


def test_mismatched_hint_rejected():
    net, incremental, _full, rng = _setup("isp", LOAD_MODE, seed=3)
    base = random_weights(net.num_links, rng)
    incremental.evaluate_str(base)
    delta = _random_single_deltas(base, net.num_links, rng, 1)[0]
    other = delta.apply(base)
    other[(delta.links()[0] + 1) % net.num_links] += 1  # not delta.apply(base)
    with pytest.raises(ValueError, match="hint mismatch"):
        incremental.evaluate(
            other, other, high_base=base, high_delta=delta, low_base=base, low_delta=delta
        )


def _reused_row_scenario(seed):
    """A cached parent layer plus a delta that leaves some row reused."""
    from repro.routing.incremental import affected_destinations
    from repro.routing.weights import weights_key

    net, incremental, _full, rng = _setup("isp", LOAD_MODE, seed=seed)
    base = random_weights(net.num_links, rng)
    incremental.evaluate_str(base)
    key = weights_key(np.asarray(base, dtype=np.int64))
    layer = incremental._high_cache.peek(key)
    active = np.flatnonzero(incremental.high_traffic.demands.sum(axis=0) > 0)
    # Find a delta that leaves at least one active destination's row reused,
    # so corrupting the cached rows must surface in the derived layer.
    for candidate in _random_single_deltas(base, net.num_links, rng, 50):
        affected = affected_destinations(net, layer.routing.distance_matrix, candidate)
        reused = np.setdiff1d(active, affected)
        if reused.size > 0:
            return incremental, base, layer, active, reused, candidate
    raise AssertionError("no delta with a reused row found")


def test_verify_flag_detects_corrupted_parent():
    incremental, base, layer, _active, _reused, delta = _reused_row_scenario(8)
    layer.dest_rows = layer.dest_rows * 1.5  # corrupt the cached rows
    with pytest.raises(IncrementalMismatchError):
        incremental.evaluate_str_neighbor(base, delta)


def test_verify_catches_sub_tolerance_row_poison():
    """A poisoned row too small for the loads tolerance still gets caught.

    The old verifier only compared summed loads with ``allclose``; a
    per-row perturbation below its tolerance survived verification and
    resurfaced later through row reuse.  The exact per-destination-row
    comparison closes that blind spot.
    """
    incremental, base, layer, active, reused, delta = _reused_row_scenario(8)
    j = list(int(t) for t in active).index(int(reused[0]))
    poison = layer.dest_rows.copy()
    # 1e-10 is inside the loads allclose band (atol 1e-9): the summed-load
    # check alone would pass.
    poison[j][poison[j] > 0] += 1e-10
    layer.dest_rows = poison
    with pytest.raises(
        IncrementalMismatchError, match="per-destination rows differ"
    ):
        incremental.evaluate_str_neighbor(base, delta)


# ----------------------------------------------------------------------
# Vectorized numeric core vs scalar reference
# ----------------------------------------------------------------------
@pytest.mark.parametrize("topology", TOPOLOGIES)
@pytest.mark.parametrize("mode", (LOAD_MODE, SLA_MODE))
def test_vectorized_evaluator_bitwise_equals_scalar(topology, mode):
    config = ExperimentConfig(topology=topology, mode=mode)
    rng = random.Random(31)
    net = build_network(topology, 31)
    high, low, _meta = build_traffic(net, config, rng)
    vec = DualTopologyEvaluator(net, high, low, mode=mode, vectorized=True)
    ref = DualTopologyEvaluator(net, high, low, mode=mode, vectorized=False)
    for _ in range(3):
        wh = random_weights(net.num_links, rng)
        wl = random_weights(net.num_links, rng)
        _assert_same_evaluation(mode, vec.evaluate(wh, wl), ref.evaluate(wh, wl))
        _assert_same_evaluation(mode, vec.evaluate_str(wh), ref.evaluate_str(wh))


@pytest.mark.parametrize("topology", TOPOLOGIES)
def test_vectorized_incremental_matches_scalar_full(topology):
    """SoA kernels riding the derived path equal a scalar from-scratch build."""
    config = ExperimentConfig(topology=topology, mode=LOAD_MODE)
    rng = random.Random(37)
    net = build_network(topology, 37)
    high, low, _meta = build_traffic(net, config, rng)
    vec_inc = DualTopologyEvaluator(
        net, high, low, incremental=True, verify_incremental=True, vectorized=True
    )
    ref_full = DualTopologyEvaluator(net, high, low, incremental=False, vectorized=False)
    base = random_weights(net.num_links, rng)
    vec_inc.evaluate_str(base)
    for delta in _random_single_deltas(base, net.num_links, rng, 15):
        neighbor, via_delta = vec_inc.evaluate_str_neighbor(base, delta)
        _assert_same_evaluation(LOAD_MODE, via_delta, ref_full.evaluate_str(neighbor))
    assert vec_inc.cache_stats()["high_incremental"] >= 1


def test_vectorized_sla_mode_matches_scalar_full():
    config = ExperimentConfig(topology="isp", mode=SLA_MODE)
    rng = random.Random(41)
    net = build_network("isp", 41)
    high, low, _meta = build_traffic(net, config, rng)
    vec_inc = DualTopologyEvaluator(
        net, high, low, mode=SLA_MODE, incremental=True,
        verify_incremental=True, vectorized=True,
    )
    ref_full = DualTopologyEvaluator(
        net, high, low, mode=SLA_MODE, incremental=False, vectorized=False
    )
    base = random_weights(net.num_links, rng)
    vec_inc.evaluate_str(base)
    for delta in _random_single_deltas(base, net.num_links, rng, 10):
        neighbor, via_delta = vec_inc.evaluate_str_neighbor(base, delta)
        _assert_same_evaluation(SLA_MODE, via_delta, ref_full.evaluate_str(neighbor))


def test_routings_inherit_vectorized_flag():
    net, _inc, full, rng = _setup("isp", LOAD_MODE, seed=2)
    w = random_weights(net.num_links, rng)
    assert full.high_routing(w).vectorized is True
    scalar = DualTopologyEvaluator(
        net, full.high_traffic, full.low_traffic, vectorized=False
    )
    assert scalar.high_routing(w).vectorized is False


# ----------------------------------------------------------------------
# Weight-key validation (truncation regression)
# ----------------------------------------------------------------------
def test_fractional_weights_rejected_on_every_entry_point():
    """Fractional weights raise instead of being truncated into a cache key.

    Regression: a bare ``int64`` cast keyed ``w + 0.5`` as ``floor(w)``,
    so a fractional vector silently resolved to the cached result of a
    *different* weight setting.  Validation must run before keying, so
    the cached entry for the truncated integer vector is never touched.
    """
    net, _inc, full, rng = _setup("isp", LOAD_MODE, seed=7)
    w = random_weights(net.num_links, rng)
    full.evaluate_str(w)  # cache the integer vector the truncation aliased
    before = full.cache_stats()
    frac = np.asarray(w, dtype=float)
    frac[3] += 0.25  # truncates back to `w` under a bare int64 cast
    with pytest.raises(ValueError, match="integer"):
        full.evaluate(frac, frac)
    with pytest.raises(ValueError, match="integer"):
        full.evaluate(w, frac)
    with pytest.raises(ValueError, match="integer"):
        full.high_routing(frac)
    with pytest.raises(ValueError, match="integer"):
        full.low_routing(frac)
    delta = _random_single_deltas(w, net.num_links, rng, 1)[0]
    with pytest.raises(ValueError, match="integer"):
        full.evaluate(delta.apply(w), w, high_base=frac, high_delta=delta)
    with pytest.raises(ValueError, match="integer"):
        full.evaluate(w, delta.apply(w), low_base=frac, low_delta=delta)
    after = full.cache_stats()
    # The truncated key never resolved to the cached integer result.
    assert after["full_hits"] == before["full_hits"]
    assert after["high_hits"] == before["high_hits"]
    assert after["low_hits"] == before["low_hits"]
