"""Equivalence of the evaluator's incremental-SPF path and full recomputation.

The property the incremental engine guarantees: given a cached parent
evaluation, evaluating a weight delta through
``evaluate_high_neighbor`` / ``evaluate_low_neighbor`` /
``evaluate_str_neighbor`` produces *bit-identical* costs and loads to an
evaluator that recomputes every neighbor from scratch
(``incremental=False``).
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.evaluator import (
    LOAD_MODE,
    SLA_MODE,
    DualTopologyEvaluator,
    IncrementalMismatchError,
)
from repro.eval.experiment import ExperimentConfig, build_network, build_traffic
from repro.routing.incremental import WeightDelta
from repro.routing.weights import random_weights

TOPOLOGIES = ("random", "isp", "powerlaw")
NUM_MOVES = 50


def _setup(topology: str, mode: str, seed: int = 5):
    config = ExperimentConfig(topology=topology, mode=mode)
    rng = random.Random(seed)
    net = build_network(topology, seed)
    high, low, _meta = build_traffic(net, config, rng)
    incremental = DualTopologyEvaluator(
        net, high, low, mode=mode, incremental=True, verify_incremental=True
    )
    full = DualTopologyEvaluator(net, high, low, mode=mode, incremental=False)
    return net, incremental, full, rng


def _random_single_deltas(base, num_links, rng, count):
    deltas = []
    while len(deltas) < count:
        link = rng.randrange(num_links)
        new_w = rng.randint(1, 30)
        if new_w != base[link]:
            deltas.append(WeightDelta.single(link, int(base[link]), new_w))
    return deltas


def _assert_same_evaluation(mode, incremental_eval, full_eval):
    assert incremental_eval.objective == full_eval.objective
    assert incremental_eval.phi_low == full_eval.phi_low
    np.testing.assert_array_equal(incremental_eval.high_loads, full_eval.high_loads)
    np.testing.assert_array_equal(incremental_eval.low_loads, full_eval.low_loads)
    np.testing.assert_array_equal(incremental_eval.utilization, full_eval.utilization)
    if mode == SLA_MODE:
        assert incremental_eval.penalty == full_eval.penalty
        assert incremental_eval.violations == full_eval.violations
        assert incremental_eval.pair_delays_ms == full_eval.pair_delays_ms


@pytest.mark.parametrize("topology", TOPOLOGIES)
def test_str_single_weight_moves_match_full(topology):
    net, incremental, full, rng = _setup(topology, LOAD_MODE)
    base = random_weights(net.num_links, rng)
    incremental.evaluate_str(base)
    for delta in _random_single_deltas(base, net.num_links, rng, NUM_MOVES):
        neighbor, via_delta = incremental.evaluate_str_neighbor(base, delta)
        from_scratch = full.evaluate_str(neighbor)
        _assert_same_evaluation(LOAD_MODE, via_delta, from_scratch)
    stats = incremental.cache_stats()
    assert stats["high_incremental"] >= NUM_MOVES
    assert stats["low_incremental"] >= NUM_MOVES


@pytest.mark.parametrize("topology", TOPOLOGIES)
def test_dual_topology_moves_match_full(topology):
    net, incremental, full, rng = _setup(topology, LOAD_MODE, seed=9)
    wh = random_weights(net.num_links, rng)
    wl = random_weights(net.num_links, rng)
    incremental.evaluate(wh, wl)
    for i, delta in enumerate(
        _random_single_deltas(wh, net.num_links, rng, 10)
        + _random_single_deltas(wl, net.num_links, rng, 10)
    ):
        if i < 10:
            neighbor, via_delta = incremental.evaluate_high_neighbor(wh, wl, delta)
            from_scratch = full.evaluate(neighbor, wl)
        else:
            neighbor, via_delta = incremental.evaluate_low_neighbor(wh, wl, delta)
            from_scratch = full.evaluate(wh, neighbor)
        _assert_same_evaluation(LOAD_MODE, via_delta, from_scratch)


def test_sla_mode_moves_match_full():
    net, incremental, full, rng = _setup("isp", SLA_MODE, seed=13)
    base = random_weights(net.num_links, rng)
    incremental.evaluate_str(base)
    for delta in _random_single_deltas(base, net.num_links, rng, 25):
        neighbor, via_delta = incremental.evaluate_str_neighbor(base, delta)
        from_scratch = full.evaluate_str(neighbor)
        _assert_same_evaluation(SLA_MODE, via_delta, from_scratch)


def test_two_link_moves_match_full():
    net, incremental, full, rng = _setup("powerlaw", LOAD_MODE, seed=21)
    base = random_weights(net.num_links, rng)
    incremental.evaluate_str(base)
    for _ in range(25):
        a, b = rng.sample(range(net.num_links), 2)
        candidate = base.copy()
        candidate[a] = rng.randint(1, 30)
        candidate[b] = rng.randint(1, 30)
        delta = WeightDelta.from_weights(base, candidate)
        if delta.num_changes == 0:
            continue
        neighbor, via_delta = incremental.evaluate_str_neighbor(base, delta)
        from_scratch = full.evaluate_str(neighbor)
        _assert_same_evaluation(LOAD_MODE, via_delta, from_scratch)


def test_incremental_disabled_never_derives():
    net, _inc, full, rng = _setup("isp", LOAD_MODE, seed=2)
    base = random_weights(net.num_links, rng)
    full.evaluate_str(base)
    for delta in _random_single_deltas(base, net.num_links, rng, 5):
        full.evaluate_str_neighbor(base, delta)
    stats = full.cache_stats()
    assert stats["high_incremental"] == 0
    assert stats["low_incremental"] == 0
    assert stats["high_full"] >= 1


def test_missing_parent_falls_back_to_full():
    net, incremental, _full, rng = _setup("isp", LOAD_MODE, seed=4)
    base = random_weights(net.num_links, rng)
    # No evaluation of `base` first: the parent layer is not cached, so the
    # delta hint cannot be honored and the layer is rebuilt from scratch.
    delta = _random_single_deltas(base, net.num_links, rng, 1)[0]
    _neighbor, evaluation = incremental.evaluate_str_neighbor(base, delta)
    assert evaluation is not None
    stats = incremental.cache_stats()
    assert stats["high_incremental"] == 0
    assert stats["high_full"] == 1


def test_search_results_identical_with_and_without_incremental():
    from repro.core.search_params import SearchParams
    from repro.core.str_search import optimize_str

    params = SearchParams(
        iterations_high=6, iterations_low=4, iterations_refine=2, neighborhood_size=3
    )
    config = ExperimentConfig(topology="isp", mode=LOAD_MODE)
    rng = random.Random(6)
    net = build_network("isp", 6)
    high, low, _meta = build_traffic(net, config, rng)
    results = []
    for incremental in (True, False):
        evaluator = DualTopologyEvaluator(net, high, low, incremental=incremental)
        result = optimize_str(evaluator, params=params, rng=random.Random(42))
        results.append(result)
    assert results[0].objective == results[1].objective
    np.testing.assert_array_equal(results[0].weights, results[1].weights)


def test_mismatched_hint_rejected():
    net, incremental, _full, rng = _setup("isp", LOAD_MODE, seed=3)
    base = random_weights(net.num_links, rng)
    incremental.evaluate_str(base)
    delta = _random_single_deltas(base, net.num_links, rng, 1)[0]
    other = delta.apply(base)
    other[(delta.links()[0] + 1) % net.num_links] += 1  # not delta.apply(base)
    with pytest.raises(ValueError, match="hint mismatch"):
        incremental.evaluate(
            other, other, high_base=base, high_delta=delta, low_base=base, low_delta=delta
        )


def test_verify_flag_detects_corrupted_parent():
    from repro.routing.incremental import affected_destinations
    from repro.routing.weights import weights_key

    net, incremental, _full, rng = _setup("isp", LOAD_MODE, seed=8)
    base = random_weights(net.num_links, rng)
    incremental.evaluate_str(base)
    key = weights_key(np.asarray(base, dtype=np.int64))
    layer = incremental._high_cache.peek(key)
    active = np.flatnonzero(incremental.high_traffic.demands.sum(axis=0) > 0)
    # Find a delta that leaves at least one active destination's row reused,
    # so corrupting the cached rows must surface in the derived loads.
    delta = None
    for candidate in _random_single_deltas(base, net.num_links, rng, 50):
        affected = affected_destinations(net, layer.routing.distance_matrix, candidate)
        if np.setdiff1d(active, affected).size > 0:
            delta = candidate
            break
    assert delta is not None
    layer.dest_rows = layer.dest_rows * 1.5  # corrupt the cached rows
    with pytest.raises(IncrementalMismatchError):
        incremental.evaluate_str_neighbor(base, delta)
